"""QoS enforcement and usage metering in the UPF-U.

Implements the data-plane side of QERs (gates and MBR policing via a
token bucket) and URRs (volume counting with threshold-triggered usage
reports) — the per-flow treatment the paper's challenge 3 says must be
"tightly integrated into the data plane" to keep performance.

The token bucket is a real algorithm running on simulated time: tokens
refill continuously at the MBR; a packet that cannot draw its size in
tokens is policed (dropped), exactly like a single-rate policer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.packet import Direction, Packet

__all__ = ["TokenBucket", "QerEnforcer", "UsageCounter"]


class TokenBucket:
    """A single-rate token-bucket policer on simulated time.

    Parameters
    ----------
    rate_bps:
        Refill rate in bits/second.
    burst_bytes:
        Bucket depth; defaults to 100 ms worth of the rate.
    """

    def __init__(self, rate_bps: float, burst_bytes: Optional[float] = None):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps!r}")
        self.rate_bps = rate_bps
        self.burst_bytes = (
            burst_bytes if burst_bytes is not None else rate_bps / 8 * 0.1
        )
        if self.burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self._tokens = self.burst_bytes
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + elapsed * self.rate_bps / 8.0,
            )
            self._last_refill = now

    def admit(self, size_bytes: int, now: float) -> bool:
        """True if the packet conforms; draws tokens when it does."""
        self._refill(now)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass
class QerEnforcer:
    """Runtime state of one installed QER."""

    qer_id: int
    qfi: int = 9
    ul_gate_open: bool = True
    dl_gate_open: bool = True
    ul_bucket: Optional[TokenBucket] = None
    dl_bucket: Optional[TokenBucket] = None
    policed_packets: int = 0
    gated_packets: int = 0

    def admit(self, packet: Packet, now: float) -> bool:
        """Gate + MBR check for one packet."""
        if packet.direction is Direction.UPLINK:
            gate_open, bucket = self.ul_gate_open, self.ul_bucket
        else:
            gate_open, bucket = self.dl_gate_open, self.dl_bucket
        if not gate_open:
            self.gated_packets += 1
            return False
        if bucket is not None and not bucket.admit(packet.size, now):
            self.policed_packets += 1
            return False
        return True


@dataclass
class UsageCounter:
    """Runtime state of one installed URR (volume measurement)."""

    urr_id: int
    volume_threshold_bytes: Optional[int] = None
    uplink_bytes: int = 0
    downlink_bytes: int = 0
    reports_raised: int = 0
    #: Bytes at the time of the last raised report.  Internal
    #: bookkeeping: kept out of ``__init__``/``repr``/equality so two
    #: counters with the same configured rule and public totals compare
    #: equal regardless of report timing.
    _reported_at_bytes: int = field(
        init=False, repr=False, compare=False, default=0
    )

    @property
    def total_bytes(self) -> int:
        return self.uplink_bytes + self.downlink_bytes

    def account(self, packet: Packet) -> bool:
        """Count a packet; True when a usage report is due.

        A report is due each time the volume since the previous report
        crosses the threshold (TS 29.244 volume-threshold trigger).
        """
        if packet.direction is Direction.UPLINK:
            self.uplink_bytes += packet.size
        else:
            self.downlink_bytes += packet.size
        if self.volume_threshold_bytes is None:
            return False
        if (
            self.total_bytes - self._reported_at_bytes
            >= self.volume_threshold_bytes
        ):
            self._reported_at_bytes = self.total_bytes
            self.reports_raised += 1
            return True
        return False
