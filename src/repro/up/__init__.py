"""User plane: PDR/FAR state, session tables, smart buffer, UPF-C/UPF-U."""

from .buffer import DEFAULT_UPF_BUFFER_PACKETS, SmartBuffer
from .qos import QerEnforcer, TokenBucket, UsageCounter
from .rules import FAR, FARAction, PDR, QER, far_from_ie, pdr_from_create_ie
from .session import SessionTable, UPFSession
from .upf_c import UPFControlPlane
from .upf_u import ForwardingStats, UPFUserPlane

__all__ = [
    "DEFAULT_UPF_BUFFER_PACKETS",
    "QerEnforcer",
    "TokenBucket",
    "UsageCounter",
    "SmartBuffer",
    "FAR",
    "FARAction",
    "PDR",
    "QER",
    "far_from_ie",
    "pdr_from_create_ie",
    "SessionTable",
    "UPFSession",
    "UPFControlPlane",
    "ForwardingStats",
    "UPFUserPlane",
]
