"""User plane: PDR/FAR state, session tables, smart buffer, UPF-C/UPF-U."""

from .buffer import DEFAULT_UPF_BUFFER_PACKETS, SmartBuffer
from .flow_cache import (
    DEFAULT_FLOW_CACHE_CAPACITY,
    FlowCache,
    FlowCacheEntry,
    RuleEpoch,
)
from .qos import QerEnforcer, TokenBucket, UsageCounter
from .rules import FAR, FARAction, PDR, QER, far_from_ie, pdr_from_create_ie
from .session import (
    SessionTable,
    SessionTableView,
    UPFSession,
    packet_key,
    packet_keys,
)
from .upf_c import UPFControlPlane
from .upf_u import ForwardingStats, UPFUserPlane

__all__ = [
    "DEFAULT_UPF_BUFFER_PACKETS",
    "DEFAULT_FLOW_CACHE_CAPACITY",
    "FlowCache",
    "FlowCacheEntry",
    "RuleEpoch",
    "packet_key",
    "packet_keys",
    "QerEnforcer",
    "TokenBucket",
    "UsageCounter",
    "SmartBuffer",
    "FAR",
    "FARAction",
    "PDR",
    "QER",
    "far_from_ie",
    "pdr_from_create_ie",
    "SessionTable",
    "SessionTableView",
    "UPFSession",
    "UPFControlPlane",
    "ForwardingStats",
    "UPFUserPlane",
]
