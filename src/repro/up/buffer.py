"""Smart buffering at the UPF (§3.3).

The UPF already buffers downlink packets for paging; L25GC reuses that
machinery for handover.  The buffer is session-scoped ("to avoid
interference from other sessions, L25GC implements a 3GPP compliant
session-based buffering") and guarantees in-order release.

The default capacity of 3000 packets matches the paper's §5.4.2 setup;
overflow is tail-drop and counted, which the failure/handover
experiments compare against the gNB's smaller 1300-packet buffer.
"""

from __future__ import annotations

from typing import List

from ..analysis import races as _races  # repro: noqa[W004] -- race-detector hooks, no-ops unless a detector is installed
from ..net.packet import Packet

__all__ = ["SmartBuffer", "DEFAULT_UPF_BUFFER_PACKETS"]

#: The paper's experiments use a 3K-packet buffer at the UPF.
DEFAULT_UPF_BUFFER_PACKETS = 3000


class SmartBuffer:
    """A bounded in-order packet buffer for one PDU session."""

    def __init__(self, capacity: int = DEFAULT_UPF_BUFFER_PACKETS):
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive: {capacity}")
        self.capacity = capacity
        self._packets: List[Packet] = []
        self.buffered_total = 0
        self.dropped = 0
        self.drained_total = 0

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def is_empty(self) -> bool:
        return not self._packets

    def push(self, packet: Packet) -> bool:
        """Buffer a packet; False (and counted) when full.

        The race-detector hook fires only *after* the capacity check
        admits the packet: a tail-drop mutates drop accounting, not
        ``packets``, and recording a phantom ``packets`` write would
        make a full-buffer storm look like a cross-role data race.
        """
        if len(self._packets) >= self.capacity:
            self.dropped += 1
            return False
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "packets", value=len(self._packets) + 1, detail="push"
            )
        self._packets.append(packet)
        self.buffered_total += 1
        return True

    def drain(self) -> List[Packet]:
        """Release all packets in arrival order."""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(self, "packets", value=0, detail="drain")
        released = self._packets
        self._packets = []
        self.drained_total += len(released)
        return released

    def peek_all(self) -> List[Packet]:
        """Read-only snapshot in arrival order."""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self, "packets")
        return list(self._packets)
