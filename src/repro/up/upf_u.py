"""UPF-U: the user-plane forwarding pipeline.

The data-plane half of the factored UPF (§3.2).  For every packet it
performs the session lookup (TEID for uplink, UE IP for downlink), the
PDR classification, and the FAR action: forward (with GTP-U
encapsulation towards the RAN or decapsulation towards the DN), buffer
(paging / smart handover), or drop.  A FAR with NOCP raises a downlink
data notification towards the UPF-C exactly once per buffering episode.

The pipeline is usable in two ways:

* *direct*: ``process(packet)`` — used by the throughput/latency
  experiments, which account CPU time via the cost model;
* *platform*: as a :class:`~repro.core.nf.NetworkFunction` on the NF
  manager's rings, for end-to-end integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, Optional

from ..analysis import races as _races  # repro: noqa[W004] -- race-detector hooks, no-ops unless a detector is installed
from ..core.costs import DEFAULT_COSTS, CostModel
from ..core.nf import NetworkFunction
from ..core.pool import Descriptor
from ..net.packet import Direction, Packet
from ..obs import spans as _tracing  # repro: noqa[W004] -- tracing is off-path: span emission is gated on tracer is None
from ..obs.metrics import MetricsRegistry  # repro: noqa[W004] -- counters only; registry import has no per-packet cost
from ..pfcp import ies as pfcp_ies
from .flow_cache import (
    DEFAULT_FLOW_CACHE_CAPACITY,
    FlowCache,
    FlowCacheEntry,
)
from .qos import QerEnforcer, UsageCounter
from .rules import FAR, PDR
from .session import SessionTable, UPFSession, packet_key, packet_keys

__all__ = ["ForwardingStats", "UPFUserPlane"]


@dataclass
class ForwardingStats:
    """Counters the experiments read."""

    forwarded_ul: int = 0
    forwarded_dl: int = 0
    buffered: int = 0
    dropped_no_session: int = 0
    dropped_no_pdr: int = 0
    dropped_action: int = 0
    dropped_buffer_full: int = 0
    dropped_qos: int = 0
    notifications: int = 0
    usage_reports: int = 0

    @property
    def forwarded(self) -> int:
        return self.forwarded_ul + self.forwarded_dl

    @property
    def dropped(self) -> int:
        return (
            self.dropped_no_session
            + self.dropped_no_pdr
            + self.dropped_action
            + self.dropped_buffer_full
            + self.dropped_qos
        )

    def register_into(
        self, registry: MetricsRegistry, prefix: str = "upf_u"
    ) -> None:
        """Export every counter (and the derived sums) as live gauges.

        Callback-backed gauges keep this dataclass the storage and the
        registry a view — the experiments keep reading plain ints.
        """
        for spec in fields(self):
            registry.gauge(f"{prefix}.{spec.name}").set_function(
                lambda name=spec.name: getattr(self, name)
            )
        registry.gauge(f"{prefix}.forwarded").set_function(
            lambda: self.forwarded
        )
        registry.gauge(f"{prefix}.dropped").set_function(lambda: self.dropped)


class UPFUserPlane(NetworkFunction):
    """The forwarding NF.

    Parameters
    ----------
    sessions:
        The shared session table (also visible to the UPF-C — that is
        the zero-cost state update of §3.2).
    uplink_sink:
        Called with each decapsulated UL packet headed to the DN.
    downlink_sink:
        Called with ``(packet, teid, gnb_address)`` for each DL packet
        after GTP-U encapsulation towards a gNB.
    notify_cp:
        Called with the session when a buffered DL packet requires a
        downlink data report (paging trigger).
    fast_path:
        True for L25GC's DPDK pipeline, False for the kernel baseline —
        selects the per-packet cost in :meth:`processing_time`.
    flow_cache:
        True enables the exact-match flow cache: the first packet of a
        flow runs the full match pipeline and memoizes the decision;
        steady-state packets resolve with one probe.  QER policing and
        URR accounting still run per packet, so cache-on and cache-off
        produce identical stats and outcomes.
    flow_cache_capacity:
        LRU bound on cached flows (see :mod:`repro.up.flow_cache`).
    burst_size:
        Packets processed per burst.  1 (the default) keeps the
        one-packet-per-call pipeline; >1 enables :meth:`process_burst`
        on the platform path (``handle_burst``) and sets the ring
        drain size.  Burst and sequential processing are
        property-tested equivalent, so the knob trades Python-level
        per-packet overhead, not semantics.
    """

    #: Kernel skb backlog other active sessions pin in the shared
    #: buffer memory when buffering is not session-scoped (free5GC).
    #: With four 10 Kpps sessions this shrinks the 3K buffer below the
    #: ~2 K packets a handover accumulates, reproducing Table 2's
    #: expt-ii drops (43 in the paper, zero for L25GC).
    SHARED_BACKLOG_PER_SESSION = 335

    def __init__(
        self,
        env,
        sessions: SessionTable,
        service_id: int = 2,
        name: str = "upf-u",
        instance_id: int = 0,
        uplink_sink: Optional[Callable[[Packet], None]] = None,
        downlink_sink: Optional[Callable[[Packet, int, int], None]] = None,
        notify_cp: Optional[Callable[[UPFSession], None]] = None,
        fast_path: bool = True,
        session_scoped_buffering: bool = True,
        costs: CostModel = DEFAULT_COSTS,
        flow_cache: bool = False,
        flow_cache_capacity: int = DEFAULT_FLOW_CACHE_CAPACITY,
        burst_size: int = 1,
    ):
        if burst_size < 1:
            raise ValueError(f"burst_size must be >= 1: {burst_size!r}")
        super().__init__(
            env, name, service_id, instance_id=instance_id, costs=costs
        )
        self.sessions = sessions
        #: The compact hot-record slab the steady-state pipeline
        #: resolves against (hot/cold split): probes return
        #: :class:`~repro.up.hot_store.HotSessionRecord` and the cold
        #: session object is dereferenced only on reports and
        #: lifecycle transitions.
        self.hot_sessions = sessions.hot_store
        #: Exact-match microflow cache (None when disabled).
        self.flow_cache: Optional[FlowCache] = (
            FlowCache(sessions.epoch, capacity=flow_cache_capacity)
            if flow_cache
            else None
        )
        sessions.add_removal_listener(self._on_session_removed)
        self.uplink_sink = uplink_sink or (lambda packet: None)
        self.downlink_sink = downlink_sink or (
            lambda packet, teid, address: None
        )
        self.notify_cp = notify_cp or (lambda session: None)
        #: Called with (session, usage counter) when a URR volume
        #: threshold trips; the UPF-C turns it into a usage report.
        self.usage_report_sink: Callable = lambda session, counter: None
        self.fast_path = fast_path
        #: L25GC buffers per session (§3.3); free5GC's buffering shares
        #: memory with the per-session kernel backlog, so concurrent
        #: sessions shrink the capacity available to a handover.
        self.session_scoped_buffering = session_scoped_buffering
        #: Packets drained and processed per platform poll; >1 routes
        #: polled batches through :meth:`handle_burst`.
        self.burst_size = burst_size
        if burst_size > 1:
            self.burst_mode = True
            self.burst = burst_size
        self.stats = ForwardingStats()
        #: Absolute time each session's drain completes (serial
        #: re-injection of buffered packets); packets arriving before
        #: then queue behind the drain.
        self._drain_until: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Direct API
    # ------------------------------------------------------------------
    def process(self, packet: Packet) -> str:
        """Run the full match-action pipeline on one packet.

        Returns the outcome label (``forwarded-ul``, ``drop-qos``, ...)
        so harnesses can compare per-packet behaviour across
        configurations.

        With tracing on, the packet gets a ``upf-u.pipeline`` span with
        per-stage instants (flow-cache probe, session lookup, PDR
        match, FAR apply) and a final ``outcome`` attribute — the
        per-stage attribution the 5GC²ache-style analyses need.  With
        tracing off the pipeline runs the exact same statements.
        """
        detector = _races._ACTIVE
        if detector is None:
            return self._process_packet(packet)
        with detector.role("upf-u"):
            return self._process_packet(packet)

    def _process_packet(self, packet: Packet) -> str:
        tracer = _tracing.active()
        if tracer is None:
            return self._pipeline(packet, None, None)
        span = tracer.start_span(
            "upf-u.pipeline",
            category="packet",
            parent=tracer.context_of(packet) or tracer.current,
            direction=packet.direction.name.lower(),
            size=packet.size,
        )
        outcome = self._pipeline(packet, tracer, span)
        span.end = self.env.now
        span.attrs["outcome"] = outcome
        return outcome

    def _pipeline(
        self,
        packet: Packet,
        tracer: Optional["_tracing.Tracer"],
        span: Optional["_tracing.Span"],
    ) -> str:
        stats = self.stats
        cache = self.flow_cache
        key = None
        if cache is not None and (
            packet.direction is not Direction.UPLINK
            or packet.teid is not None
        ):
            # Fast path: one exact-match probe replaces session lookup,
            # key build (reused below on miss), classifier walk, and
            # the FAR/QER/URR dict resolution.  A TEID-less UL packet
            # bypasses the cache: its key would alias TEID 0.
            key = packet_key(packet)
            entry = cache.lookup(key)
            if tracer is not None:
                tracer.instant(
                    "flow-cache", parent=span, hit=entry is not None
                )
            if entry is not None:
                outcome = self._apply(
                    packet,
                    entry.hot,
                    entry.pdr,
                    entry.far,
                    entry.enforcer,
                    entry.counter,
                )
                if tracer is not None:
                    tracer.instant("far-apply", parent=span, outcome=outcome)
                return outcome
        hot = self._lookup_hot(packet)
        if tracer is not None:
            tracer.instant(
                "session-lookup", parent=span, hit=hot is not None
            )
        if hot is None:
            stats.dropped_no_session += 1
            return "drop-no-session"
        pdr = hot.match_pdr(packet, key=key)
        if tracer is not None:
            tracer.instant("pdr-match", parent=span, matched=pdr is not None)
        if pdr is None:
            stats.dropped_no_pdr += 1
            return "drop-no-pdr"
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(hot.cold, "fars")
        far = hot.fars.get(pdr.far_id)
        if far is None:
            stats.dropped_no_pdr += 1
            return "drop-no-far"
        enforcer = (
            hot.qer_enforcers.get(pdr.qer_id)
            if pdr.qer_id is not None
            else None
        )
        counter = (
            hot.usage_counters.get(pdr.urr_id)
            if pdr.urr_id is not None
            else None
        )
        if key is not None:
            # Memoize the decision only — never the QER/URR verdicts,
            # which are per-packet by nature.  The entry pins the hot
            # record, keeping cache hits inside the compact slab.
            cache.insert(key, hot, pdr, far, enforcer, counter)
        outcome = self._apply(packet, hot, pdr, far, enforcer, counter)
        if tracer is not None:
            tracer.instant("far-apply", parent=span, outcome=outcome)
        return outcome

    # ------------------------------------------------------------------
    # Burst API
    # ------------------------------------------------------------------
    def process_burst(self, packets) -> list:
        """Run the pipeline over a whole burst, amortizing per-packet work.

        Semantically equivalent to ``[self.process(p) for p in
        packets]`` (property-tested: same outcomes, bit-identical
        stats, identical flow-cache contents) but structured the way a
        DPDK fast path is: all classification keys are built up front,
        the flow cache is probed once per distinct key under a single
        epoch read, misses are grouped so each distinct flow costs one
        session + classifier lookup per burst, and FAR/QER/URR apply
        in a tight loop whose stat deltas fold into
        :class:`ForwardingStats` once per burst.

        Epoch semantics: a burst executes as one or more *runs*.  All
        probing and resolution for a run happens under one epoch
        snapshot; rule applications then replay in arrival order with
        an epoch check after each applied packet.  When an application
        bumps the epoch mid-burst (a notify-CP or usage-report callback
        mutating rules), the remaining pre-resolved decisions are
        abandoned and the burst resumes as a fresh run from the next
        packet — so every packet is applied with a decision no staler
        than one-at-a-time processing would have used.  Cache *contents*
        stay sequential-identical; only the hit/miss accounting may
        differ in the (rare) mid-burst-bump case, because aborted-run
        commits are re-observed as stale entries by the re-run.

        Each element of ``packets`` must be a distinct packet object;
        processing the same object twice in one burst is unsupported
        (keys are built once, before any application mutates
        ``packet.teid``).
        """
        detector = _races._ACTIVE
        if detector is None:
            return self._process_burst(packets)
        with detector.role("upf-u"):
            return self._process_burst(packets)

    def _process_burst(self, packets) -> list:
        if _tracing.active() is not None:
            # Tracing wants a span per packet: fall back to the
            # classic pipeline, which emits per-stage instants.
            return [self._process_packet(packet) for packet in packets]
        n = len(packets)
        if n == 0:
            return []
        keys = packet_keys(packets)
        outcomes = [None] * n
        start = 0
        while start < n:
            start = self._burst_run(packets, keys, outcomes, start)
        return outcomes

    def _burst_run(self, packets, keys, outcomes, start: int) -> int:
        """One epoch-coherent run; returns the index to resume from.

        Probes + resolves every distinct key from ``start`` on under
        the current epoch, commits the cache effects, then applies
        decisions in arrival order until the burst ends or the epoch
        moves (in which case the caller starts a fresh run at the
        returned index).
        """
        n = len(packets)
        cache = self.flow_cache
        epoch = self.sessions.epoch
        epoch_value = epoch.value
        detector = _races._ACTIVE
        # Distinct keys in first-occurrence order; every packet gets a
        # slot index into the per-key plan list so the apply loop
        # resolves its plan with a list index, not a 20-field hash.
        distinct_index = {}
        order_keys = []
        order_packets = []
        slots = []
        index_of = distinct_index.get
        add_slot = slots.append
        for i in range(start, n):
            key = keys[i]
            if key is None:
                add_slot(-1)
                continue
            slot = index_of(key)
            if slot is None:
                slot = len(order_keys)
                distinct_index[key] = slot
                order_keys.append(key)
                order_packets.append(packets[i])
            add_slot(slot)
        plans = [None] * len(order_keys)
        resolved = {}
        committed = cache is None or not order_keys
        if not committed:
            found, stale_keys = cache.lookup_many(order_keys)
            for key, entry in found.items():
                plans[distinct_index[key]] = entry
                resolved[key] = entry
            if not stale_keys and len(found) == len(order_keys):
                # All-hit steady state: nothing is stale or to be
                # inserted, so the per-packet replay is pure LRU
                # touches and each key ends at its *last* occurrence's
                # position.  One touch per distinct key in
                # last-occurrence order is observably identical and
                # hashes slots (ints), not 20-field keys.
                seen = set()
                mark = seen.add
                order = []
                for slot in reversed(slots):
                    if slot >= 0 and slot not in seen:
                        mark(slot)
                        order.append(slot)
                order.reverse()
                cache.touch_burst(
                    [order_keys[slot] for slot in order],
                    len(slots) - slots.count(-1),
                )
                committed = True
        # Slow-path resolution: once per distinct flow, not per packet.
        # Resolution runs entirely against the hot slab; the cold
        # session object is never touched here.
        for slot, key in enumerate(order_keys):
            if plans[slot] is not None:
                continue
            packet = order_packets[slot]
            hot = self._lookup_hot(packet)
            if hot is None:
                plans[slot] = "drop-no-session"
                continue
            pdr = hot.match_pdr(packet, key=key)
            if pdr is None:
                plans[slot] = "drop-no-pdr"
                continue
            if detector is not None:
                detector.on_read(hot.cold, "fars")
            far = hot.fars.get(pdr.far_id)
            if far is None:
                plans[slot] = "drop-no-far"
                continue
            entry = FlowCacheEntry(
                epoch_value,
                hot,
                pdr,
                far,
                (
                    hot.qer_enforcers.get(pdr.qer_id)
                    if pdr.qer_id is not None
                    else None
                ),
                (
                    hot.usage_counters.get(pdr.urr_id)
                    if pdr.urr_id is not None
                    else None
                ),
            )
            plans[slot] = entry
            resolved[key] = entry
        if not committed:
            # Replay per-packet cache effects (LRU touches, stale
            # deletions, fills, evictions) in arrival order so the
            # cache state matches one-at-a-time processing.
            cache.commit_burst(keys, resolved, start)
        # Tight apply loop: stat deltas accumulate in locals and fold
        # once per run; the epoch is re-checked after every applied
        # packet so a mid-burst rule mutation aborts the run.
        now = self.env.now
        drain = self._drain_until
        access = pfcp_ies.ACCESS
        notify_cp = self.notify_cp
        usage_report_sink = self.usage_report_sink
        uplink_sink = self.uplink_sink
        downlink_sink = self.downlink_sink
        f_ul = f_dl = n_buffered = d_action = d_qos = d_buffer = 0
        d_no_session = d_no_pdr = n_notify = n_usage = 0
        i = start
        while i < n:
            packet = packets[i]
            slot = slots[i - start]
            if slot < 0:
                # TEID-less uplink: no cacheable key — run the classic
                # per-packet pipeline at this packet's position.
                outcomes[i] = self._pipeline(packet, None, None)
                i += 1
                if epoch.value != epoch_value:
                    break
                continue
            plan = plans[slot]
            if type(plan) is str:
                outcomes[i] = plan
                if plan == "drop-no-session":
                    d_no_session += 1
                else:
                    d_no_pdr += 1
                i += 1
                continue
            hot = plan.hot
            far = plan.far
            action = far.action
            if action.drop:
                d_action += 1
                outcomes[i] = "drop-action"
                i += 1
                continue
            enforcer = plan.enforcer
            if enforcer is not None and not enforcer.admit(packet, now):
                d_qos += 1
                outcomes[i] = "drop-qos"
                i += 1
                continue
            counter = plan.counter
            if counter is not None and counter.account(packet):
                n_usage += 1
                # Report path: the one place the steady loop needs the
                # cold session (the CP callback takes it).
                usage_report_sink(hot.cold, counter)
            if action.buffer:
                # Buffering is a lifecycle transition: dereference the
                # cold half for the smart buffer and report flag.
                session = hot.cold
                buffer = session.buffer
                if len(buffer) >= self._effective_capacity(session):
                    buffer.dropped += 1
                    d_buffer += 1
                    outcomes[i] = "drop-buffer-full"
                elif buffer.push(packet):
                    n_buffered += 1
                    outcomes[i] = "buffered"
                else:
                    d_buffer += 1
                    outcomes[i] = "drop-buffer-full"
                if action.notify_cp and not session.report_pending:
                    session.report_pending = True
                    n_notify += 1
                    notify_cp(session)
            elif not action.forward:
                d_action += 1
                outcomes[i] = "drop-action"
            elif action.destination_interface == access:
                # Downlink: encapsulate towards the gNB.
                if action.outer_teid is None or action.outer_address is None:
                    d_action += 1
                    outcomes[i] = "drop-action"
                elif drain and not self._admit_behind_drain(packet, hot):
                    outcomes[i] = "drop-buffer-full"
                else:
                    packet.teid = action.outer_teid
                    f_dl += 1
                    downlink_sink(
                        packet, action.outer_teid, action.outer_address
                    )
                    outcomes[i] = "forwarded-dl"
            else:
                # Uplink: outer header removed by the PDR; to the DN.
                if plan.pdr.outer_header_removal:
                    packet.teid = None
                f_ul += 1
                uplink_sink(packet)
                outcomes[i] = "forwarded-ul"
            i += 1
            if epoch.value != epoch_value:
                break
        stats = self.stats
        stats.forwarded_ul += f_ul
        stats.forwarded_dl += f_dl
        stats.buffered += n_buffered
        stats.dropped_no_session += d_no_session
        stats.dropped_no_pdr += d_no_pdr
        stats.dropped_action += d_action
        stats.dropped_buffer_full += d_buffer
        stats.dropped_qos += d_qos
        stats.notifications += n_notify
        stats.usage_reports += n_usage
        return i

    def _on_session_removed(self, session: UPFSession) -> None:
        """SessionTable removal hook: drop per-session pipeline state.

        Without this, ``_drain_until`` entries (and cached flow
        decisions pinning the session context) leaked for every
        session the UPF-C deleted.  The purge runs logically in the
        UPF-U (the listener models the removal signal it receives), so
        it executes under the "upf-u" role.
        """
        self._drain_until.pop(session.seid, None)
        if self.flow_cache is not None:
            detector = _races._ACTIVE
            if detector is None:
                self.flow_cache.purge_session(session)
            else:
                with detector.role("upf-u"):
                    self.flow_cache.purge_session(session)

    def _lookup_session(self, packet: Packet) -> Optional[UPFSession]:
        """Cold-session resolve (control-plane / compat callers)."""
        if packet.direction is Direction.UPLINK:
            if packet.teid is None:
                return None
            return self.sessions.by_teid(packet.teid)
        return self.sessions.by_ue_ip(packet.flow.dst_ip)

    def _lookup_hot(self, packet: Packet):
        """Hot-record resolve: the data-path session lookup.

        Probes the compact slab directly (§3.2's dual hash keys live
        there since the hot/cold split).  The race-detector read is
        recorded against the session table — the registered owner of
        membership — exactly as the pre-split ``by_teid``/``by_ue_ip``
        lookups did.
        """
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self.sessions, "sessions")
        if packet.direction is Direction.UPLINK:
            if packet.teid is None:
                return None
            return self.hot_sessions.by_teid(packet.teid)
        return self.hot_sessions.by_ue_ip(packet.flow.dst_ip)

    def _apply(
        self,
        packet: Packet,
        hot,
        pdr: PDR,
        far: FAR,
        enforcer: Optional[QerEnforcer] = None,
        counter: Optional[UsageCounter] = None,
    ) -> str:
        """Apply one pre-resolved decision (``hot`` is the session's
        :class:`~repro.up.hot_store.HotSessionRecord`; the cold session
        is dereferenced only on report/buffer transitions)."""
        action = far.action
        stats = self.stats
        if action.drop:
            stats.dropped_action += 1
            return "drop-action"
        # QoS enforcement (QER): gate + MBR token-bucket policing runs
        # before any forwarding/buffering decision.  The enforcer and
        # counter arrive pre-resolved (by the slow path or a cache
        # hit); their verdicts are per-packet and never cached.
        if enforcer is not None and not enforcer.admit(packet, self.env.now):
            stats.dropped_qos += 1
            return "drop-qos"
        # Usage metering (URR): count the packet; raise a usage report
        # when the volume threshold trips.
        if counter is not None and counter.account(packet):
            stats.usage_reports += 1
            self.usage_report_sink(hot.cold, counter)
        if action.buffer:
            session = hot.cold
            if len(session.buffer) >= self._effective_capacity(session):
                session.buffer.dropped += 1
                stats.dropped_buffer_full += 1
                outcome = "drop-buffer-full"
            elif session.buffer.push(packet):
                stats.buffered += 1
                outcome = "buffered"
            else:
                stats.dropped_buffer_full += 1
                outcome = "drop-buffer-full"
            if action.notify_cp and not session.report_pending:
                session.report_pending = True
                stats.notifications += 1
                self.notify_cp(session)
            return outcome
        if not action.forward:
            stats.dropped_action += 1
            return "drop-action"
        return self._forward(packet, pdr, far, hot)

    def _forward(
        self,
        packet: Packet,
        pdr: PDR,
        far: FAR,
        hot=None,
    ) -> str:
        action = far.action
        if action.destination_interface == pfcp_ies.ACCESS:
            # Downlink: encapsulate towards the gNB.
            if action.outer_teid is None or action.outer_address is None:
                self.stats.dropped_action += 1
                return "drop-action"
            if hot is not None and not self._admit_behind_drain(
                packet, hot
            ):
                return "drop-buffer-full"
            packet.teid = action.outer_teid
            self.stats.forwarded_dl += 1
            self.downlink_sink(packet, action.outer_teid, action.outer_address)
            return "forwarded-dl"
        # Uplink: outer header already removed by the PDR; to DN.
        if pdr.outer_header_removal:
            packet.teid = None
        self.stats.forwarded_ul += 1
        self.uplink_sink(packet)
        return "forwarded-ul"

    # ------------------------------------------------------------------
    # Buffer release (invoked by the UPF-C on FAR transitions)
    # ------------------------------------------------------------------
    def _reinject_cost(self) -> float:
        return self.costs.buffer_reinject(
            self.fast_path, max(1, len(self.sessions))
        )

    def _effective_capacity(self, session: UPFSession) -> int:
        """Buffer slots available to this session's drain queue.

        Session-scoped buffering (L25GC) gets the full capacity; the
        shared free5GC buffer loses a backlog share to every other
        active session — the cross-session interference §3.3 calls out.
        """
        capacity = session.buffer.capacity
        if self.session_scoped_buffering:
            return capacity
        others = max(0, len(self.sessions) - 1)
        return max(0, capacity - others * self.SHARED_BACKLOG_PER_SESSION)

    def _admit_behind_drain(self, packet: Packet, hot) -> bool:
        """Queue a forwarded packet behind an in-progress drain.

        Buffered packets re-inject serially; packets arriving before
        the drain completes wait their turn (extending it).  Returns
        False (and counts a drop) when the drain queue exceeds the
        effective buffer capacity.

        Takes the hot record: the common no-drain case resolves on
        ``hot.seid`` alone, and the cold session (for buffer capacity
        and drop accounting) is dereferenced only while a drain is
        actually in progress.
        """
        drain_until = self._drain_until.get(hot.seid)
        now = self.env.now
        if drain_until is None or drain_until <= now:
            return True
        session = hot.cold
        reinject = self._reinject_cost()
        backlog = (drain_until - now) / reinject
        if backlog >= self._effective_capacity(session):
            self.stats.dropped_buffer_full += 1
            session.buffer.dropped += 1
            return False
        self._drain_until[hot.seid] = drain_until + reinject
        packet.meta["extra_delay"] = drain_until + reinject - now
        return True

    def flush_session(self, session: UPFSession) -> int:
        """Forward a session's buffered DL packets in order.

        Returns the number of packets released.  Called when a FAR
        flips from BUFF to FORW (paging complete, handover complete).
        Draining is not free: each buffered packet is re-injected
        serially (see :meth:`CostModel.buffer_reinject`), and traffic
        arriving during the drain queues behind it.

        The UPF-C triggers the flush, but the drain itself is UPF-U
        work (the real system signals the forwarding process), so it
        executes under the "upf-u" role.
        """
        detector = _races._ACTIVE
        if detector is None:
            return self._flush_session(session)
        with detector.role("upf-u"):
            return self._flush_session(session)

    def _flush_session(self, session: UPFSession) -> int:
        far = self._downlink_far(session)
        released = session.buffer.drain()
        if far is None or far.action.outer_teid is None:
            self.stats.dropped_action += len(released)
            return 0
        reinject = self._reinject_cost()
        now = self.env.now
        start = max(now, self._drain_until.get(session.seid, now))
        for position, packet in enumerate(released):
            packet.teid = far.action.outer_teid
            packet.meta["extra_delay"] = (
                start + (position + 1) * reinject - now
            )
            self.stats.forwarded_dl += 1
            self.downlink_sink(
                packet, far.action.outer_teid, far.action.outer_address
            )
        self._drain_until[session.seid] = start + len(released) * reinject
        session.report_pending = False
        tracer = _tracing.active()
        if tracer is not None:
            # The drain's extent is known analytically (serial
            # re-injection), so the span is recorded post hoc without
            # scheduling any simulation event.
            tracer.add_span(
                "buffer-drain",
                start=now,
                end=start + len(released) * reinject,
                category="drain",
                seid=session.seid,
                released=len(released),
            )
        return len(released)

    def _downlink_far(self, session: UPFSession) -> Optional[FAR]:
        for pdr in session.pdrs.values():
            if pdr.source_interface == pfcp_ies.CORE:
                return session.fars.get(pdr.far_id)
        return None

    # ------------------------------------------------------------------
    # Platform integration
    # ------------------------------------------------------------------
    def processing_time(self, descriptor: Descriptor) -> float:
        packet = descriptor.payload
        size = packet.size if isinstance(packet, Packet) else 64
        return self.costs.per_packet_cost(self.fast_path, size)

    def handle(self, descriptor: Descriptor):
        packet = descriptor.payload
        if isinstance(packet, Packet):
            self.process(packet)
        descriptor.free()
        return ()

    def handle_burst(self, descriptors):
        """Platform burst path: one :meth:`process_burst` per poll.

        The run loop has already charged the batch's summed processing
        time, so the whole burst executes at a single simulation
        instant — no yields inside (the race detector's atomic-section
        check, W003, verifies this stays true).
        """
        packets = [
            descriptor.payload
            for descriptor in descriptors
            if isinstance(descriptor.payload, Packet)
        ]
        if packets:
            self.process_burst(packets)
        for descriptor in descriptors:
            descriptor.free()
        return ()
