"""User-plane rule state: PDRs, FARs, QERs as installed in the UPF.

The UPF-C decodes PFCP IEs into these runtime structures and stores
them in the session context that lives in shared memory (§3.2, "zero
cost state update").  Each PDR carries a
:class:`~repro.classifier.rule.Rule` for the classifier; precedence
follows PFCP semantics (lower value = higher priority), converted to
the classifier's higher-wins priority internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..classifier.rule import Rule, exact, wildcard
from ..classifier.rule import PDI_FIELDS
from ..pfcp import ies as pfcp_ies

__all__ = ["PDR", "FAR", "QER", "FARAction", "pdr_from_create_ie", "far_from_ie"]

_FIELD_INDEX = {spec.name: i for i, spec in enumerate(PDI_FIELDS)}

#: Largest PFCP precedence value we accept; used to invert precedence
#: into the classifier's higher-wins priority.
_MAX_PRECEDENCE = 1 << 16


@dataclass
class FARAction:
    """The decoded Apply Action + forwarding parameters of a FAR."""

    forward: bool = True
    buffer: bool = False
    drop: bool = False
    notify_cp: bool = False
    #: Outer header towards the RAN (None = towards the DN, decap only).
    outer_teid: Optional[int] = None
    outer_address: Optional[int] = None
    destination_interface: int = pfcp_ies.CORE


@dataclass
class FAR:
    """Forwarding Action Rule."""

    far_id: int
    action: FARAction = field(default_factory=FARAction)


@dataclass
class QER:
    """QoS Enforcement Rule (rate limits per QoS flow)."""

    qer_id: int
    qfi: int = 9
    mbr_uplink: Optional[float] = None  # bits/second
    mbr_downlink: Optional[float] = None
    gate_open: bool = True


@dataclass
class PDR:
    """Packet Detection Rule as installed in the data plane."""

    pdr_id: int
    precedence: int
    match: Rule
    far_id: int
    qer_id: Optional[int] = None
    urr_id: Optional[int] = None
    outer_header_removal: bool = False
    source_interface: int = pfcp_ies.ACCESS

    @property
    def priority(self) -> int:
        """Classifier priority (higher wins), from PFCP precedence."""
        return _MAX_PRECEDENCE - self.precedence


def _rule_from_pdi(
    pdi: pfcp_ies.PdiIE, pdr_id: int, far_id: int, precedence: int
) -> Rule:
    """Convert a PDI grouped IE into a 20-dimension classifier rule."""
    ranges = [wildcard(spec) for spec in PDI_FIELDS]
    source = pdi.child(pfcp_ies.SourceInterfaceIE)
    if source is not None:
        ranges[_FIELD_INDEX["source_iface"]] = exact(source.interface)
    fteid = pdi.child(pfcp_ies.FTeidIE)
    if fteid is not None and not fteid.choose:
        ranges[_FIELD_INDEX["teid"]] = exact(fteid.teid)
    ue_ip = pdi.child(pfcp_ies.UeIpAddressIE)
    if ue_ip is not None:
        key = "dst_ip" if ue_ip.source_or_destination else "src_ip"
        ranges[_FIELD_INDEX[key]] = exact(ue_ip.address)
    qfi = pdi.child(pfcp_ies.QfiIE)
    if qfi is not None:
        ranges[_FIELD_INDEX["qfi"]] = exact(qfi.qfi)
    sdf = pdi.child(pfcp_ies.SdfFilterIE)
    if sdf is not None and sdf.tos is not None:
        ranges[_FIELD_INDEX["tos"]] = exact(sdf.tos >> 8)
    if sdf is not None and sdf.spi is not None:
        ranges[_FIELD_INDEX["spi"]] = exact(sdf.spi)
    if sdf is not None and sdf.flow_label is not None:
        ranges[_FIELD_INDEX["flow_label"]] = exact(sdf.flow_label)
    if sdf is not None and sdf.filter_id is not None:
        ranges[_FIELD_INDEX["sdf_filter_id"]] = exact(sdf.filter_id & 0xFFFF)
    return Rule(
        ranges=tuple(ranges),
        priority=_MAX_PRECEDENCE - precedence,
        rule_id=pdr_id,
        far_id=far_id,
    )


def pdr_from_create_ie(create: pfcp_ies.CreatePdrIE) -> PDR:
    """Decode a Create PDR grouped IE into a runtime PDR."""
    pdr_id_ie = create.child(pfcp_ies.PdrIdIE)
    if pdr_id_ie is None:
        raise ValueError("Create PDR without PDR ID")
    precedence_ie = create.child(pfcp_ies.PrecedenceIE)
    precedence = precedence_ie.precedence if precedence_ie else 255
    far_id_ie = create.child(pfcp_ies.FarIdIE)
    far_id = far_id_ie.rule_id if far_id_ie else 0
    pdi = create.child(pfcp_ies.PdiIE)
    if pdi is None:
        raise ValueError("Create PDR without PDI")
    from ..pfcp.qos_ies import UrrIdIE

    qer_ie = create.child(pfcp_ies.QerIdIE)
    urr_ie = create.child(UrrIdIE)
    source = pdi.child(pfcp_ies.SourceInterfaceIE)
    return PDR(
        pdr_id=pdr_id_ie.rule_id,
        precedence=precedence,
        match=_rule_from_pdi(pdi, pdr_id_ie.rule_id, far_id, precedence),
        far_id=far_id,
        qer_id=qer_ie.rule_id if qer_ie else None,
        urr_id=urr_ie.rule_id if urr_ie else None,
        outer_header_removal=create.child(pfcp_ies.OuterHeaderRemovalIE)
        is not None,
        source_interface=source.interface if source else pfcp_ies.ACCESS,
    )


def far_from_ie(create_or_update: "pfcp_ies._GroupedIE") -> FAR:
    """Decode a Create/Update FAR grouped IE into a runtime FAR."""
    far_id_ie = create_or_update.child(pfcp_ies.FarIdIE)
    if far_id_ie is None:
        raise ValueError("FAR IE without FAR ID")
    apply_ie = create_or_update.child(pfcp_ies.ApplyActionIE)
    action = FARAction()
    if apply_ie is not None:
        action.forward = apply_ie.forward
        action.buffer = apply_ie.buffer
        action.drop = apply_ie.drop
        action.notify_cp = apply_ie.notify_cp
    params = create_or_update.child(pfcp_ies.ForwardingParametersIE)
    if params is not None:
        destination = params.child(pfcp_ies.DestinationInterfaceIE)
        if destination is not None:
            action.destination_interface = destination.interface
        outer = params.child(pfcp_ies.OuterHeaderCreationIE)
        if outer is not None:
            action.outer_teid = outer.teid
            action.outer_address = outer.address
    return FAR(far_id=far_id_ie.rule_id, action=action)
