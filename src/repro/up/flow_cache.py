"""Flow cache: the microflow fast path of the UPF-U pipeline.

The per-packet match pipeline — dual-hash session lookup (§3.2), the
20-field key build, the PDR classifier walk (§3.4), and the FAR / QER /
URR dict lookups — is identical for every packet of a flow, yet the
baseline pipeline re-runs all of it per packet.  Real UPFs (5GC²ache)
and software switches (OVS's exact-match microflow cache) memoize the
*decision* instead: the first packet of a flow pays the full pipeline,
and every steady-state packet resolves with a single exact-match probe.

This module provides that cache:

* **Key** — the packet's exact 20-field classification key
  (:func:`repro.up.session.packet_key`).  Because the key embeds the
  session-selecting fields (TEID for UL, UE IP for DL, plus the source
  interface that encodes direction), a key uniquely determines the
  whole decision tuple.
* **Value** — :class:`FlowCacheEntry`: the resolved ``(session, PDR,
  FAR, QER enforcer, usage counter)``.  Only the *match* result is
  cached: QER policing and URR accounting are per-packet actions and
  always execute.
* **Invalidation** — epoch-based, reproducing §3.2's zero-cost state
  update at the cache layer.  Every rule-mutating operation
  (``install_pdr`` / ``remove_pdr`` / ``install_far`` / ``update_far``
  / ``install_qer*`` / ``SessionTable.add``/``remove``) bumps a shared
  :class:`RuleEpoch`; entries record the epoch at fill time and a hit
  whose recorded epoch is stale self-invalidates.  No scan, no
  callback fan-out on the data path — a rule change is one integer
  increment.
* **Capacity** — an LRU bound keeps memory flat under millions of
  distinct flows; evictions are counted so the experiments can see
  thrash.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from ..analysis import races as _races  # repro: noqa[W004] -- race-detector hooks, no-ops unless a detector is installed

__all__ = [
    "DEFAULT_FLOW_CACHE_CAPACITY",
    "RuleEpoch",
    "FlowCacheEntry",
    "FlowCache",
    "SetAssociativeFlowCache",
]

#: Default LRU bound.  Sized like OVS's EMC (8k entries): large enough
#: that a steady working set of flows stays resident, small enough that
#: the table is cache-friendly and memory stays flat under churn.
DEFAULT_FLOW_CACHE_CAPACITY = 8192


class RuleEpoch:
    """A monotonic generation counter shared by rule-mutating state.

    The counter is the entire invalidation protocol: mutators call
    :meth:`bump`, readers compare a remembered ``value`` against the
    current one.  Bumping never touches cached entries, so a PFCP rule
    install costs O(1) regardless of how many flows are cached.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> int:
        """Invalidate every decision derived from the previous epoch."""
        self.value += 1
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_bump()
        return self.value

    def __repr__(self) -> str:
        return f"RuleEpoch({self.value})"


class FlowCacheEntry:
    """One memoized pipeline decision, stamped with its fill epoch.

    Since the hot/cold split the entry pins the *hot* session record
    (:class:`~repro.up.hot_store.HotSessionRecord`), not the cold
    session object — a cache hit stays entirely within the compact
    decision state.  :attr:`session` dereferences to the cold half for
    callers (tests, experiments) that want the full session; arbitrary
    fill values without a ``cold`` backref pass through unchanged.
    """

    __slots__ = ("generation", "hot", "pdr", "far", "enforcer", "counter")

    def __init__(self, generation, hot, pdr, far, enforcer, counter):
        self.generation = generation
        self.hot = hot
        self.pdr = pdr
        self.far = far
        self.enforcer = enforcer
        self.counter = counter

    @property
    def session(self):
        """The cold session behind :attr:`hot` (compat surface)."""
        hot = self.hot
        return getattr(hot, "cold", hot)

    def __repr__(self) -> str:
        return (
            f"FlowCacheEntry(gen={self.generation}, "
            f"seid={getattr(self.hot, 'seid', None)}, "
            f"pdr={getattr(self.pdr, 'pdr_id', self.pdr)})"
        )


class FlowCache:
    """Exact-match LRU cache of pipeline decisions.

    Parameters
    ----------
    epoch:
        The shared :class:`RuleEpoch` bumped by every rule mutation
        (normally ``SessionTable.epoch``).
    capacity:
        LRU bound on resident entries.
    """

    __slots__ = (
        "_epoch",
        "capacity",
        "_entries",
        "hits",
        "misses",
        "stale",
        "evictions",
        "inserts",
        "purged",
    )

    def __init__(
        self,
        epoch: RuleEpoch,
        capacity: int = DEFAULT_FLOW_CACHE_CAPACITY,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity!r}")
        self._epoch = epoch
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, FlowCacheEntry]" = OrderedDict()
        #: Fast-path hits (valid entry, current epoch).
        self.hits = 0
        #: Probes that found nothing usable (absent or stale).
        self.misses = 0
        #: Misses caused specifically by epoch invalidation.
        self.stale = 0
        #: Entries dropped to enforce the LRU capacity bound.
        self.evictions = 0
        #: Entries filled by the slow path.
        self.inserts = 0
        #: Entries dropped eagerly on session removal.
        self.purged = 0
        detector = _races.active()
        if detector is not None:
            # The cache is UPF-U private state: only the forwarding
            # pipeline may fill, probe, or purge it.
            detector.register(self, label="flow-cache", owner="upf-u")

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[FlowCacheEntry]:
        """One exact-match probe; None on miss or stale entry."""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self, "entries")
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.generation != self._epoch.value:
            # Lazy invalidation: the epoch moved since fill time, so
            # the decision may no longer be derivable — drop and re-run
            # the pipeline.
            del entries[key]
            self.stale += 1
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return entry

    def insert(
        self,
        key: Hashable,
        session: Any,
        pdr: Any,
        far: Any,
        enforcer: Any = None,
        counter: Any = None,
    ) -> FlowCacheEntry:
        """Memoize one slow-path decision under the current epoch."""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "entries", value=len(self._entries) + 1,
                detail=f"insert(seid={getattr(session, 'seid', None)})",
            )
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entry = FlowCacheEntry(
            self._epoch.value, session, pdr, far, enforcer, counter
        )
        entries[key] = entry
        self.inserts += 1
        return entry

    # ------------------------------------------------------------------
    # Burst data path
    # ------------------------------------------------------------------
    def lookup_many(self, keys):
        """Bulk exact-match probe over a burst's distinct keys.

        One race-detector read and one epoch load cover the whole
        batch.  Unlike :meth:`lookup` this performs *no* LRU movement,
        counter update, or stale-entry deletion — those effects replay
        per packet in :meth:`commit_burst` so the cache evolves exactly
        as it would under one-at-a-time processing.

        Returns ``(found, stale)``: ``found`` maps each key holding a
        current-epoch entry to that entry; ``stale`` is the set of keys
        whose resident entry predates the epoch (left in place so the
        replay deletes each one at its packet's LRU position).
        """
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self, "entries")
        generation = self._epoch.value
        found = {}
        stale = set()
        get = self._entries.get
        for key in keys:
            entry = get(key)
            if entry is None:
                continue
            if entry.generation != generation:
                stale.add(key)
            else:
                found[key] = entry
        return found, stale

    def touch_burst(self, touch_keys, hits: int) -> None:
        """All-hit fast path: fold one burst's LRU touches and hits.

        Precondition (asserted by the caller's probe): every distinct
        key of the burst is resident at the current epoch, so the
        per-packet replay would be pure ``move_to_end`` touches.
        Replaying touches in arrival order leaves each key at its
        *last* occurrence's position, so one ``move_to_end`` per
        distinct key in last-occurrence order (``touch_keys``)
        produces the identical final LRU order with far fewer
        20-field-tuple hashes; ``hits`` (the burst's cache-keyed
        packet count) folds into the hit counter exactly as the
        per-packet replay would.
        """
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "entries", detail=f"touch_burst({hits} packets)"
            )
        move_to_end = self._entries.move_to_end
        for key in touch_keys:
            move_to_end(key)
        self.hits += hits

    def commit_burst(self, keys, resolved, start: int = 0) -> None:
        """Replay a burst's per-packet cache effects in arrival order.

        ``keys`` is the burst's per-packet key list from index
        ``start`` on (``None`` entries — cache-bypassing packets — are
        skipped); ``resolved`` maps each distinct key with an
        apply-able decision to its :class:`FlowCacheEntry`.  Each
        position performs exactly what the sequential ``lookup`` +
        ``insert`` pair would have: a resident current-epoch entry is
        touched (hit); a stale entry is deleted and, when resolved,
        re-filled; an absent key is a miss, filled when resolved (with
        LRU eviction under capacity pressure).  LRU order, eviction
        victims, and the hit/miss/stale/insert/eviction counters
        therefore match one-at-a-time processing exactly when no
        epoch bump lands mid-burst.  (The all-hit steady state takes
        :meth:`touch_burst` instead.)
        """
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "entries",
                detail=f"commit_burst({len(keys) - start} packets)",
            )
        entries = self._entries
        generation = self._epoch.value
        capacity = self.capacity
        get = entries.get
        hits = misses = stale = inserts = evictions = 0
        for i in range(start, len(keys)):
            key = keys[i]
            if key is None:
                continue
            entry = get(key)
            if entry is not None:
                if entry.generation == generation:
                    entries.move_to_end(key)
                    hits += 1
                    continue
                del entries[key]
                stale += 1
            misses += 1
            decision = resolved.get(key)
            if decision is None:
                continue
            if len(entries) >= capacity:
                entries.popitem(last=False)
                evictions += 1
            entries[key] = decision
            inserts += 1
        self.hits += hits
        self.misses += misses
        self.stale += stale
        self.inserts += inserts
        self.evictions += evictions

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def purge_session(self, session: Any) -> int:
        """Eagerly drop a removed session's entries (frees the refs).

        The epoch bump already guarantees correctness; this exists so a
        deleted session's context is not pinned in memory until LRU
        pressure happens to evict its flows.
        """
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "entries",
                detail=f"purge_session(seid={getattr(session, 'seid', None)})",
            )
        # Entries pin hot records; accept either half as the handle so
        # lifecycle code can purge with whatever it holds.
        hot = getattr(session, "hot", session)
        entries = self._entries
        dead = [
            key
            for key, entry in entries.items()
            if entry.hot is hot or entry.hot is session
        ]
        for key in dead:
            del entries[key]
        self.purged += len(dead)
        return len(dead)

    def clear(self) -> None:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(self, "entries", detail="clear()")
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Hits over all probes (0.0 before any traffic)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_into(self, registry, prefix: str = "flow_cache") -> None:
        """Export the counters as live gauges on a MetricsRegistry."""
        for name in (
            "hits",
            "misses",
            "stale",
            "evictions",
            "inserts",
            "purged",
        ):
            registry.gauge(f"{prefix}.{name}").set_function(
                lambda name=name: getattr(self, name)
            )
        registry.gauge(f"{prefix}.entries").set_function(lambda: len(self))
        registry.gauge(f"{prefix}.hit_rate").set_function(
            lambda: self.hit_rate
        )


class SetAssociativeFlowCache(FlowCache):
    """A set-associative flow cache for the capacity/associativity
    ablation.

    Hardware exact-match caches are not fully associative: a key hashes
    to one of ``capacity // ways`` sets and competes only with the
    ``ways`` entries of that set, so colliding flows can thrash a set
    long before the cache is globally full (conflict misses).  This
    variant reproduces that behavior — per-set LRU over ``ways``
    entries — so the ablation can separate capacity misses (fixed by a
    bigger cache) from conflict misses (fixed by more ways).

    Only the sequential data path (:meth:`lookup` / :meth:`insert`) is
    set-aware; the ablation drives :meth:`UPFUserPlane.process`.  The
    burst bulk paths are refused rather than silently resolved with
    full associativity.
    """

    __slots__ = ("ways", "_sets")

    def __init__(
        self,
        epoch: RuleEpoch,
        capacity: int = DEFAULT_FLOW_CACHE_CAPACITY,
        ways: int = 4,
    ) -> None:
        super().__init__(epoch, capacity)
        if ways <= 0 or capacity % ways != 0:
            raise ValueError(
                f"ways must divide capacity: ways={ways!r}, "
                f"capacity={capacity!r}"
            )
        self.ways = ways
        self._sets: list = [OrderedDict() for _ in range(capacity // ways)]

    def _set_for(self, key: Hashable) -> "OrderedDict":
        return self._sets[hash(key) % len(self._sets)]

    def lookup(self, key: Hashable) -> Optional[FlowCacheEntry]:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self, "entries")
        entries = self._set_for(key)
        entry = entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.generation != self._epoch.value:
            del entries[key]
            self.stale += 1
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return entry

    def insert(
        self,
        key: Hashable,
        session: Any,
        pdr: Any,
        far: Any,
        enforcer: Any = None,
        counter: Any = None,
    ) -> FlowCacheEntry:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "entries", value=len(self) + 1,
                detail=f"insert(seid={getattr(session, 'seid', None)})",
            )
        entries = self._set_for(key)
        if key in entries:
            del entries[key]
        elif len(entries) >= self.ways:
            # Conflict eviction: the set is full even though the cache
            # as a whole may not be.
            entries.popitem(last=False)
            self.evictions += 1
        entry = FlowCacheEntry(
            self._epoch.value, session, pdr, far, enforcer, counter
        )
        entries[key] = entry
        self.inserts += 1
        return entry

    def lookup_many(self, keys):
        raise NotImplementedError(
            "SetAssociativeFlowCache supports the sequential pipeline "
            "only (associativity ablation); use FlowCache for bursts"
        )

    def touch_burst(self, touch_keys, hits: int) -> None:
        raise NotImplementedError(
            "SetAssociativeFlowCache supports the sequential pipeline "
            "only (associativity ablation); use FlowCache for bursts"
        )

    def commit_burst(self, keys, resolved, start: int = 0) -> None:
        raise NotImplementedError(
            "SetAssociativeFlowCache supports the sequential pipeline "
            "only (associativity ablation); use FlowCache for bursts"
        )

    def purge_session(self, session: Any) -> int:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "entries",
                detail=f"purge_session(seid={getattr(session, 'seid', None)})",
            )
        hot = getattr(session, "hot", session)
        purged = 0
        for entries in self._sets:
            dead = [
                key
                for key, entry in entries.items()
                if entry.hot is hot or entry.hot is session
            ]
            for key in dead:
                del entries[key]
            purged += len(dead)
        self.purged += purged
        return purged

    def clear(self) -> None:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(self, "entries", detail="clear()")
        for entries in self._sets:
            entries.clear()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._set_for(key)
