"""Hot/cold session-state split: the compact hot-session slab.

5GC²ache's measurement (PAPERS.md) is that UPF throughput is
cache-residency-bound: per-packet forwarding touches a few decision
fields of the session context, yet the baseline layout drags the whole
context — accounting counters, lifecycle flags, the smart buffer —
through the cache hierarchy on every lookup.  Once the session working
set overflows LLC, ns/packet cliffs.

This module splits one PDU session's state the way a cache-aware UPF
lays out its tables:

* **Hot** — :class:`HotSessionRecord`: exactly what the per-packet
  decision needs.  The dual hash keys (UL TEID / UE IP), the PDR
  classifier and rule dicts (PDI match fields), the FAR actions, the
  QER-enforcer / URR-counter refs, and the rule-epoch stamp.  Records
  are ``__slots__``-compact and live in a dense slab.
* **Cold** — everything else stays on :class:`~repro.up.session.UPFSession`:
  usage accounting history, the smart buffer, the report-pending
  lifecycle flag, raw QER rule records.  The pipeline dereferences the
  cold object only on reports and lifecycle transitions (buffering
  episodes, usage-report trips, drain bookkeeping) — never on the
  steady-state forward path.
* **Slab** — :class:`HotSessionStore`: records keyed by a shard-local
  *dense index*.  The TEID / UE-IP maps hold small integers, the slab
  itself is one contiguous list, and freed indices recycle through a
  free list so the slab stays dense under churn.  This is the Python
  rendering of the paper-style array-of-64B-records layout the
  :class:`~repro.core.costs.CostModel` cache-hierarchy term prices.

Ownership is unchanged: the UPF-C role is the only writer of slab
membership (via ``SessionTable.add/remove``); the UPF-U resolves
against it read-only on the data path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..analysis import races as _races  # repro: noqa[W004] -- race-detector hooks, no-ops unless a detector is installed

__all__ = ["HotSessionRecord", "HotSessionStore"]

#: Slab slot of a record not (currently) adopted by any store.
UNSLABBED = -1


def _packet_key(packet):
    """Late-bound :func:`repro.up.session.packet_key` (session imports
    this module, so the direct import would be circular).  The first
    call rebinds the module global to the real function — later calls
    pay a plain function call, nothing else."""
    from .session import packet_key

    globals()["_packet_key"] = packet_key
    return packet_key(packet)


class HotSessionRecord:
    """One session's per-packet decision state, slab-resident.

    The record is deliberately flat and ``__slots__``-backed: the
    forwarding pipeline reads ``classifier`` / ``fars`` /
    ``qer_enforcers`` / ``usage_counters`` off it with fixed-offset
    attribute loads, and the whole decision surface for one session is
    one compact object instead of a dict-backed context.  ``cold``
    points back at the owning :class:`~repro.up.session.UPFSession`;
    the pipeline follows it only on reports and lifecycle transitions.
    """

    __slots__ = (
        "index",
        "seid",
        "ue_ip",
        "ul_teid",
        "classifier",
        "pdrs",
        "fars",
        "qer_enforcers",
        "usage_counters",
        "epoch",
        "cold",
    )

    def __init__(self, seid, ue_ip, ul_teid, classifier, epoch, cold=None):
        #: Dense slab index while adopted; :data:`UNSLABBED` otherwise.
        self.index = UNSLABBED
        self.seid = seid
        self.ue_ip = ue_ip
        self.ul_teid = ul_teid
        #: The PDR lookup structure (PDI match fields live inside).
        self.classifier = classifier
        self.pdrs: Dict[int, object] = {}
        self.fars: Dict[int, object] = {}
        self.qer_enforcers: Dict[int, object] = {}
        self.usage_counters: Dict[int, object] = {}
        #: Rule-mutation epoch stamp (rebound to the table's shared
        #: epoch when the session is installed).
        self.epoch = epoch
        #: The cold half (accounting, lifecycle, smart buffer).
        self.cold = cold

    def match_pdr(self, packet, key=None):
        """Classify a packet against this session's PDRs.

        ``key`` accepts a pre-built classification key so callers that
        already derived it (the flow-cache miss path) don't pay the
        20-field build twice.  The race-detector read is recorded
        against the cold session object — the registered owner of the
        rule parts — and only when a detector is installed.
        """
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self.cold, "pdrs")
        if key is None:
            key = _packet_key(packet)
        rule = self.classifier.lookup(key)
        if rule is None:
            return None
        return self.pdrs.get(rule.rule_id)

    def __repr__(self) -> str:
        return (
            f"HotSessionRecord(index={self.index}, seid={self.seid}, "
            f"teid={self.ul_teid:#x}, ue_ip={self.ue_ip:#x})"
        )


class HotSessionStore:
    """The per-shard slab of :class:`HotSessionRecord`.

    Lookups are the data-plane hot path: a small-int dict probe
    (TEID or UE IP -> dense index) followed by one slab index.  The
    maps never hold record objects, so the lookup structures stay
    compact regardless of how much cold state each session carries —
    the layout property the working-set sweep measures and the
    cost model's :meth:`~repro.core.costs.CostModel.state_access_latency`
    prices.

    Membership (``adopt`` / ``release``) is control-plane work driven
    by ``SessionTable.add`` / ``remove``; the table records the
    race-detector membership write, so the store itself stays hook-free
    on the read path.
    """

    __slots__ = (
        "_slab",
        "_free",
        "_teid_index",
        "_ue_ip_index",
        "adopted",
        "released",
        "peak_live",
    )

    def __init__(self) -> None:
        self._slab: List[Optional[HotSessionRecord]] = []
        self._free: List[int] = []
        self._teid_index: Dict[int, int] = {}
        self._ue_ip_index: Dict[int, int] = {}
        #: Lifetime adopt / release counts (slab churn accounting).
        self.adopted = 0
        self.released = 0
        #: High-water mark of concurrently live records.
        self.peak_live = 0

    # ------------------------------------------------------------------
    # Membership (UPF-C role, via SessionTable)
    # ------------------------------------------------------------------
    def adopt(self, record: HotSessionRecord) -> int:
        """Install a record, assigning it a dense slab index."""
        if record.index != UNSLABBED:
            raise ValueError(
                f"record seid={record.seid} already slabbed "
                f"at index {record.index}"
            )
        if record.ul_teid in self._teid_index:
            raise ValueError(f"duplicate UL TEID {record.ul_teid}")
        if record.ue_ip in self._ue_ip_index:
            raise ValueError(f"duplicate UE IP {record.ue_ip}")
        if self._free:
            index = self._free.pop()
            self._slab[index] = record
        else:
            index = len(self._slab)
            self._slab.append(record)
        record.index = index
        self._teid_index[record.ul_teid] = index
        self._ue_ip_index[record.ue_ip] = index
        self.adopted += 1
        live = len(self)
        if live > self.peak_live:
            self.peak_live = live
        return index

    def release(self, record: HotSessionRecord) -> None:
        """Remove a record, recycling its slab slot."""
        index = record.index
        if index == UNSLABBED or (
            index >= len(self._slab) or self._slab[index] is not record
        ):
            raise ValueError(
                f"record seid={record.seid} is not resident in this slab"
            )
        self._slab[index] = None
        self._free.append(index)
        del self._teid_index[record.ul_teid]
        del self._ue_ip_index[record.ue_ip]
        record.index = UNSLABBED
        self.released += 1

    # ------------------------------------------------------------------
    # Data path (UPF-U role, read-only)
    # ------------------------------------------------------------------
    def by_teid(self, teid: int) -> Optional[HotSessionRecord]:
        """UL resolve: tunnel endpoint -> hot record (or None)."""
        index = self._teid_index.get(teid)
        if index is None:
            return None
        return self._slab[index]

    def by_ue_ip(self, ue_ip: int) -> Optional[HotSessionRecord]:
        """DL resolve: UE address -> hot record (or None)."""
        index = self._ue_ip_index.get(ue_ip)
        if index is None:
            return None
        return self._slab[index]

    def by_index(self, index: int) -> Optional[HotSessionRecord]:
        """Dense-index resolve (slab-local addressing)."""
        if 0 <= index < len(self._slab):
            return self._slab[index]
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slab) - len(self._free)

    @property
    def slab_size(self) -> int:
        """Total slots (live + free) — the slab's allocated extent."""
        return len(self._slab)

    def records(self) -> Iterator[HotSessionRecord]:
        """Live records in slab order."""
        for record in self._slab:
            if record is not None:
                yield record

    def register_into(self, registry, prefix: str = "hot_store") -> None:
        """Export slab occupancy/churn as live gauges."""
        registry.gauge(f"{prefix}.live").set_function(lambda: len(self))
        registry.gauge(f"{prefix}.slab_size").set_function(
            lambda: self.slab_size
        )
        registry.gauge(f"{prefix}.peak_live").set_function(
            lambda: self.peak_live
        )
        registry.gauge(f"{prefix}.adopted").set_function(lambda: self.adopted)
        registry.gauge(f"{prefix}.released").set_function(
            lambda: self.released
        )
