"""UPF session contexts and the dual-keyed session table.

§3.2: "Using shared Hugepages, we maintain two hash tables for storing
the pointer to a user session context.  The keys for these two tables
are TEID and UE IP to differentiate UL and DL traffic respectively.
Each user session context stores a number of different rule sets in
shared memory, e.g., PDRs and FARs."

The session context owns its PDR classifier (pluggable: linear / TSS /
PartitionSort) and the smart buffer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..classifier.base import Classifier
from ..classifier.partition_sort import PartitionSortClassifier
from ..net.packet import Direction, Packet
from ..pfcp import ies as pfcp_ies
from .buffer import DEFAULT_UPF_BUFFER_PACKETS, SmartBuffer
from .qos import QerEnforcer, UsageCounter
from .rules import FAR, PDR, QER

__all__ = ["UPFSession", "SessionTable"]


class UPFSession:
    """One PDU session's user-plane state.

    Parameters
    ----------
    seid:
        PFCP session endpoint id.
    ue_ip:
        The UE's allocated IPv4 (integer) — the DL hash key.
    ul_teid:
        Uplink tunnel endpoint at the UPF — the UL hash key.
    classifier_class:
        Which PDR lookup structure this session uses (PDR-PS in
        L25GC, PDR-LL in the 3GPP baseline).
    """

    def __init__(
        self,
        seid: int,
        ue_ip: int,
        ul_teid: int,
        classifier_class: Type[Classifier] = PartitionSortClassifier,
        buffer_capacity: int = DEFAULT_UPF_BUFFER_PACKETS,
    ):
        self.seid = seid
        self.ue_ip = ue_ip
        self.ul_teid = ul_teid
        self.pdrs: Dict[int, PDR] = {}
        self.fars: Dict[int, FAR] = {}
        self.qers: Dict[int, QER] = {}
        #: Installed QoS enforcers (gate + MBR policer), by QER id.
        self.qer_enforcers: Dict[int, "QerEnforcer"] = {}
        #: Installed usage counters, by URR id.
        self.usage_counters: Dict[int, "UsageCounter"] = {}
        self.classifier: Classifier = classifier_class()
        self.buffer = SmartBuffer(buffer_capacity)
        #: Set while the CP has been notified of buffered DL data and
        #: paging is in flight (suppresses duplicate reports).
        self.report_pending = False

    # -- rule management ----------------------------------------------------
    def install_pdr(self, pdr: PDR) -> None:
        """Install or replace a PDR (and its classifier rule)."""
        existing = self.pdrs.get(pdr.pdr_id)
        if existing is not None:
            self.classifier.remove(existing.match)
        self.pdrs[pdr.pdr_id] = pdr
        self.classifier.insert(pdr.match)

    def remove_pdr(self, pdr_id: int) -> bool:
        pdr = self.pdrs.pop(pdr_id, None)
        if pdr is None:
            return False
        self.classifier.remove(pdr.match)
        return True

    def install_far(self, far: FAR) -> None:
        self.fars[far.far_id] = far

    def update_far(self, far: FAR) -> None:
        """Merge an Update FAR into the existing rule.

        PFCP updates are partial: an update without forwarding
        parameters keeps the previous outer header (that is how the
        paging re-activation retains the gNB endpoint).
        """
        existing = self.fars.get(far.far_id)
        if existing is None:
            self.fars[far.far_id] = far
            return
        action = existing.action
        new = far.action
        action.forward = new.forward
        action.buffer = new.buffer
        action.drop = new.drop
        action.notify_cp = new.notify_cp
        if new.outer_teid is not None:
            action.outer_teid = new.outer_teid
            action.outer_address = new.outer_address
            action.destination_interface = new.destination_interface

    def install_qer(self, qer: QER) -> None:
        self.qers[qer.qer_id] = qer

    def install_qer_enforcer(self, enforcer: "QerEnforcer") -> None:
        self.qer_enforcers[enforcer.qer_id] = enforcer

    def install_usage_counter(self, counter: "UsageCounter") -> None:
        self.usage_counters[counter.urr_id] = counter

    # -- lookup ---------------------------------------------------------------
    def match_pdr(self, packet: Packet) -> Optional[PDR]:
        """Classify a packet against this session's PDRs."""
        key = self._packet_key(packet)
        rule = self.classifier.lookup(key)
        if rule is None:
            return None
        return self.pdrs.get(rule.rule_id)

    def _packet_key(self, packet: Packet):
        flow = packet.flow
        source_iface = (
            pfcp_ies.ACCESS
            if packet.direction is Direction.UPLINK
            else pfcp_ies.CORE
        )
        # Field order must mirror repro.classifier.rule.PDI_FIELDS.
        return (
            flow.src_ip,
            flow.dst_ip,
            flow.src_port,
            flow.dst_port,
            flow.protocol,
            packet.tos,
            packet.teid or 0,
            packet.qfi or 0,
            packet.meta.get("app_id", 0),
            packet.meta.get("spi", 0),
            packet.meta.get("flow_label", 0),
            packet.meta.get("sdf_filter_id", 0),
            source_iface,
            packet.meta.get("pdu_type", 0),
            packet.meta.get("network_instance", 0),
            packet.tos >> 2,
            packet.meta.get("session_id", 0),
            packet.meta.get("slice_id", 0),
            packet.meta.get("urr_id", 0),
            packet.meta.get("outer_header", 0),
        )


class SessionTable:
    """The UPF's dual hash tables: TEID -> session, UE IP -> session."""

    def __init__(self) -> None:
        self._by_teid: Dict[int, UPFSession] = {}
        self._by_ue_ip: Dict[int, UPFSession] = {}
        self._by_seid: Dict[int, UPFSession] = {}

    def add(self, session: UPFSession) -> None:
        if session.seid in self._by_seid:
            raise ValueError(f"duplicate SEID {session.seid}")
        if session.ul_teid in self._by_teid:
            raise ValueError(f"duplicate UL TEID {session.ul_teid}")
        if session.ue_ip in self._by_ue_ip:
            raise ValueError(f"duplicate UE IP {session.ue_ip}")
        self._by_seid[session.seid] = session
        self._by_teid[session.ul_teid] = session
        self._by_ue_ip[session.ue_ip] = session

    def remove(self, seid: int) -> Optional[UPFSession]:
        session = self._by_seid.pop(seid, None)
        if session is None:
            return None
        self._by_teid.pop(session.ul_teid, None)
        self._by_ue_ip.pop(session.ue_ip, None)
        return session

    def by_teid(self, teid: int) -> Optional[UPFSession]:
        """UL lookup: which session owns this tunnel endpoint?"""
        return self._by_teid.get(teid)

    def by_ue_ip(self, ue_ip: int) -> Optional[UPFSession]:
        """DL lookup: which session owns this UE address?"""
        return self._by_ue_ip.get(ue_ip)

    def by_seid(self, seid: int) -> Optional[UPFSession]:
        return self._by_seid.get(seid)

    def __len__(self) -> int:
        return len(self._by_seid)

    def sessions(self) -> List[UPFSession]:
        return list(self._by_seid.values())
