"""UPF session contexts and the dual-keyed session table.

§3.2: "Using shared Hugepages, we maintain two hash tables for storing
the pointer to a user session context.  The keys for these two tables
are TEID and UE IP to differentiate UL and DL traffic respectively.
Each user session context stores a number of different rule sets in
shared memory, e.g., PDRs and FARs."

The session context owns its PDR classifier (pluggable: linear / TSS /
PartitionSort) and the smart buffer.  Every rule-mutating operation
bumps a :class:`~repro.up.flow_cache.RuleEpoch` so the UPF-U's flow
cache self-invalidates without scanning — the zero-cost state update,
extended to the cache layer.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Type

from ..analysis import races as _races  # repro: noqa[W004] -- race-detector hooks, no-ops unless a detector is installed
from ..classifier.base import Classifier
from ..classifier.partition_sort import PartitionSortClassifier
from ..net.packet import Direction, Packet
from ..pfcp import ies as pfcp_ies
from .buffer import DEFAULT_UPF_BUFFER_PACKETS, SmartBuffer
from .flow_cache import RuleEpoch
from .hot_store import HotSessionRecord, HotSessionStore
from .qos import QerEnforcer, UsageCounter
from .rules import FAR, PDR, QER

__all__ = [
    "packet_key",
    "packet_keys",
    "UPFSession",
    "SessionTable",
    "SessionTableView",
]


def packet_key(packet: Packet):
    """The packet's exact 20-field classification key.

    Built once per packet and shared by the flow cache and the
    classifier — field order must mirror
    ``repro.classifier.rule.PDI_FIELDS``.
    """
    flow = packet.flow
    meta = packet.meta
    get = meta.get
    tos = packet.tos
    return (
        flow.src_ip,
        flow.dst_ip,
        flow.src_port,
        flow.dst_port,
        flow.protocol,
        tos,
        packet.teid or 0,
        packet.qfi or 0,
        get("app_id", 0),
        get("spi", 0),
        get("flow_label", 0),
        get("sdf_filter_id", 0),
        (
            pfcp_ies.ACCESS
            if packet.direction is Direction.UPLINK
            else pfcp_ies.CORE
        ),
        get("pdu_type", 0),
        get("network_instance", 0),
        tos >> 2,
        get("session_id", 0),
        get("slice_id", 0),
        get("urr_id", 0),
        get("outer_header", 0),
    )


def packet_keys(packets):
    """Classification keys for a whole burst, built in one pass.

    The vectorized front half of the burst pipeline: every packet's
    20-field key is derived before any probe or rule application runs,
    so the cache can be consulted in bulk and misses grouped by key.
    A TEID-less uplink packet gets ``None`` — its key would alias
    TEID 0, so the burst path resolves it individually, exactly like
    :meth:`UPFUserPlane.process` bypasses the cache for it.

    Key reuse across a burst assumes each element is a distinct packet
    object; enqueueing the same object twice in one burst is
    unsupported (the descriptor sanitizer flags the double-enqueue).
    """
    uplink = Direction.UPLINK
    access = pfcp_ies.ACCESS
    core = pfcp_ies.CORE
    keys = []
    append = keys.append
    for packet in packets:
        direction = packet.direction
        teid = packet.teid
        if direction is uplink and teid is None:
            append(None)
            continue
        flow = packet.flow
        tos = packet.tos
        meta = packet.meta
        if not meta:
            # Plain data packets carry no meta fields: every meta-
            # derived key element is its default, so the ten dict
            # probes collapse away.  This is the vectorization win —
            # the bulk build touches only real packet state.
            append((
                flow.src_ip,
                flow.dst_ip,
                flow.src_port,
                flow.dst_port,
                flow.protocol,
                tos,
                teid or 0,
                packet.qfi or 0,
                0,
                0,
                0,
                0,
                access if direction is uplink else core,
                0,
                0,
                tos >> 2,
                0,
                0,
                0,
                0,
            ))
            continue
        get = meta.get
        append((
            flow.src_ip,
            flow.dst_ip,
            flow.src_port,
            flow.dst_port,
            flow.protocol,
            tos,
            packet.teid or 0,
            packet.qfi or 0,
            get("app_id", 0),
            get("spi", 0),
            get("flow_label", 0),
            get("sdf_filter_id", 0),
            access if packet.direction is uplink else core,
            get("pdu_type", 0),
            get("network_instance", 0),
            tos >> 2,
            get("session_id", 0),
            get("slice_id", 0),
            get("urr_id", 0),
            get("outer_header", 0),
        ))
    return keys


class UPFSession:
    """One PDU session's user-plane state — the *cold* half.

    The per-packet decision state (PDI match classifier, rule dicts,
    FAR actions, QER/URR refs, epoch stamp) lives on :attr:`hot`, a
    compact :class:`~repro.up.hot_store.HotSessionRecord` the UPF-U
    resolves through the session table's slab.  This object keeps what
    the data path touches only on reports and lifecycle transitions:
    the smart buffer, the report-pending flag, raw QER rule records.
    The rule-management API is unchanged — reads and mutators delegate
    to the hot record, so control-plane code never sees the split.

    Parameters
    ----------
    seid:
        PFCP session endpoint id.
    ue_ip:
        The UE's allocated IPv4 (integer) — the DL hash key.
    ul_teid:
        Uplink tunnel endpoint at the UPF — the UL hash key.
    classifier_class:
        Which PDR lookup structure this session uses (PDR-PS in
        L25GC, PDR-LL in the 3GPP baseline).
    """

    def __init__(
        self,
        seid: int,
        ue_ip: int,
        ul_teid: int,
        classifier_class: Type[Classifier] = PartitionSortClassifier,
        buffer_capacity: int = DEFAULT_UPF_BUFFER_PACKETS,
    ):
        self.seid = seid
        #: The hot decision record; standalone (index -1) until
        #: :meth:`SessionTable.add` adopts it into the shard's slab.
        #: A fresh epoch is rebound to the table's shared one on add.
        self.hot = HotSessionRecord(
            seid, ue_ip, ul_teid, classifier_class(), RuleEpoch(), cold=self
        )
        #: Raw QER rule records (control-plane state; the data path
        #: reads the derived enforcers off the hot record instead).
        self.qers: Dict[int, QER] = {}
        self.buffer = SmartBuffer(buffer_capacity)
        #: Set while the CP has been notified of buffered DL data and
        #: paging is in flight (suppresses duplicate reports).
        self._report_pending = False
        detector = _races.active()
        if detector is not None:
            # §3.2 single-writer split: the UPF-C owns the rule sets,
            # the UPF-U owns the runtime state (buffer, report flag).
            detector.register(
                self,
                label=f"session(seid={seid})",
                owner="upf-c",
                parts={"report_pending": "upf-u"},
                rule_parts=(
                    "pdrs",
                    "fars",
                    "qers",
                    "qer_enforcers",
                    "usage_counters",
                ),
            )
            detector.register(
                self.buffer,
                label=f"session(seid={seid}).buffer",
                owner="upf-u",
            )

    @property
    def report_pending(self) -> bool:
        return self._report_pending

    @report_pending.setter
    def report_pending(self, value: bool) -> None:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self,
                "report_pending",
                value=value,
                detail=f"report_pending = {value}",
            )
        self._report_pending = value

    # -- hot-record delegation ---------------------------------------------
    # The decision state moved to the compact hot record; these keep
    # the pre-split read surface (control plane, tests, experiments)
    # byte-for-byte compatible.
    @property
    def ue_ip(self) -> int:
        return self.hot.ue_ip

    @property
    def ul_teid(self) -> int:
        return self.hot.ul_teid

    @property
    def pdrs(self) -> Dict[int, PDR]:
        return self.hot.pdrs

    @property
    def fars(self) -> Dict[int, FAR]:
        return self.hot.fars

    @property
    def qer_enforcers(self) -> Dict[int, "QerEnforcer"]:
        """Installed QoS enforcers (gate + MBR policer), by QER id."""
        return self.hot.qer_enforcers

    @property
    def usage_counters(self) -> Dict[int, "UsageCounter"]:
        """Installed usage counters, by URR id."""
        return self.hot.usage_counters

    @property
    def classifier(self) -> Classifier:
        return self.hot.classifier

    @property
    def epoch(self) -> RuleEpoch:
        """Rule-mutation epoch; rebound to the table's shared epoch by
        :meth:`SessionTable.add` so one counter covers all sessions."""
        return self.hot.epoch

    @epoch.setter
    def epoch(self, value: RuleEpoch) -> None:
        self.hot.epoch = value

    # -- rule management ----------------------------------------------------
    def install_pdr(self, pdr: PDR) -> None:
        """Install or replace a PDR (and its classifier rule)."""
        existing = self.pdrs.get(pdr.pdr_id)
        if existing is not None:
            self.classifier.remove_by_id(existing.match.rule_id)
        self.pdrs[pdr.pdr_id] = pdr
        self.classifier.insert(pdr.match)
        self._note_rule_write("pdrs", self.pdrs, f"install_pdr({pdr.pdr_id})")
        self.epoch.bump()

    def remove_pdr(self, pdr_id: int) -> bool:
        # Check membership before mutating: the pop must be
        # post-dominated by the epoch bump (W002), and popping a
        # missing id would take the no-bump early return with the
        # container already touched.
        if pdr_id not in self.pdrs:
            return False
        pdr = self.pdrs.pop(pdr_id)
        self.classifier.remove_by_id(pdr.match.rule_id)
        self._note_rule_write("pdrs", self.pdrs, f"remove_pdr({pdr_id})")
        self.epoch.bump()
        return True

    def install_far(self, far: FAR) -> None:
        self.fars[far.far_id] = far
        self._note_rule_write("fars", self.fars, f"install_far({far.far_id})")
        self.epoch.bump()

    def update_far(self, far: FAR) -> None:
        """Merge an Update FAR into the existing rule.

        PFCP updates are partial: an update without forwarding
        parameters keeps the previous outer header (that is how the
        paging re-activation retains the gNB endpoint).
        """
        existing = self.fars.get(far.far_id)
        if existing is None:
            self.fars[far.far_id] = far
            self._note_rule_write(
                "fars", self.fars, f"update_far({far.far_id})"
            )
            self.epoch.bump()
            return
        action = existing.action
        new = far.action
        action.forward = new.forward
        action.buffer = new.buffer
        action.drop = new.drop
        action.notify_cp = new.notify_cp
        if new.outer_teid is not None:
            action.outer_teid = new.outer_teid
            action.outer_address = new.outer_address
            action.destination_interface = new.destination_interface
        self._note_rule_write("fars", self.fars, f"update_far({far.far_id})")
        self.epoch.bump()

    def install_qer(self, qer: QER) -> None:
        self.qers[qer.qer_id] = qer
        self._note_rule_write("qers", self.qers, f"install_qer({qer.qer_id})")
        self.epoch.bump()

    def install_qer_enforcer(self, enforcer: "QerEnforcer") -> None:
        self.qer_enforcers[enforcer.qer_id] = enforcer
        self._note_rule_write(
            "qer_enforcers",
            sorted(self.qer_enforcers),
            f"install_qer_enforcer({enforcer.qer_id})",
        )
        self.epoch.bump()

    def install_usage_counter(self, counter: "UsageCounter") -> None:
        self.usage_counters[counter.urr_id] = counter
        self._note_rule_write(
            "usage_counters",
            sorted(self.usage_counters),
            f"install_usage_counter({counter.urr_id})",
        )
        self.epoch.bump()

    def _note_rule_write(self, part: str, value, detail: str) -> None:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, part, value=value, rule_mutation=True, detail=detail
            )

    # -- lookup ---------------------------------------------------------------
    def match_pdr(self, packet: Packet, key=None) -> Optional[PDR]:
        """Classify a packet against this session's PDRs.

        ``key`` accepts a pre-built classification key so callers that
        already derived it (the flow-cache miss path) don't pay the
        20-field build twice.  Delegates to the hot record — the same
        code path the UPF-U pipeline runs against the slab.
        """
        return self.hot.match_pdr(packet, key)

    def _packet_key(self, packet: Packet):
        return packet_key(packet)


class SessionTableView(abc.ABC):
    """What the UPF-C needs from a session store.

    The single-UPF deployment hands the control plane a plain
    :class:`SessionTable`; the sharded deployment hands it a router
    that places each session on the shard its RSS bucket maps to.  The
    PFCP handlers are written against this interface, so establish /
    modify / delete are shard-agnostic.
    """

    @abc.abstractmethod
    def add(self, session: UPFSession) -> None:
        """Install a new session (duplicate keys raise ValueError)."""

    @abc.abstractmethod
    def remove(self, seid: int) -> Optional[UPFSession]:
        """Remove and return a session, or None if unknown."""

    @abc.abstractmethod
    def by_seid(self, seid: int) -> Optional[UPFSession]:
        """N4 lookup: PFCP messages address sessions by SEID."""

    @abc.abstractmethod
    def by_teid(self, teid: int) -> Optional[UPFSession]:
        """UL lookup: which session owns this tunnel endpoint?"""

    @abc.abstractmethod
    def by_ue_ip(self, ue_ip: int) -> Optional[UPFSession]:
        """DL lookup: which session owns this UE address?"""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Active session count."""

    @abc.abstractmethod
    def sessions(self) -> List[UPFSession]:
        """All active sessions (snapshot list)."""

    @abc.abstractmethod
    def add_removal_listener(
        self, listener: Callable[[UPFSession], None]
    ) -> None:
        """Register a callback invoked with each removed session."""


class SessionTable(SessionTableView):
    """The UPF's dual hash tables: TEID -> session, UE IP -> session.

    Since the hot/cold split, the dual data-path keys live in the
    :class:`~repro.up.hot_store.HotSessionStore` slab (small-int
    indices, compact records); the table keeps only the SEID map for
    N4 addressing.  :meth:`by_teid` / :meth:`by_ue_ip` resolve through
    the slab and return the cold session for control-plane callers —
    the UPF-U pipeline probes :attr:`hot_store` directly and never
    touches the cold object on the steady-state path.

    The table owns the shared rule-mutation :attr:`epoch` consulted by
    the UPF-U's flow cache; membership changes bump it, and sessions
    adopt it on :meth:`add` so their rule mutations bump it too.
    """

    def __init__(self) -> None:
        #: The compact hot-record slab holding the TEID / UE-IP keys.
        self.hot_store = HotSessionStore()
        self._by_seid: Dict[int, UPFSession] = {}
        #: Shared generation counter for epoch-based cache invalidation.
        self.epoch = RuleEpoch()
        self._removal_listeners: List[Callable[[UPFSession], None]] = []
        detector = _races.active()
        if detector is not None:
            # Membership is control-plane state: only the UPF-C adds
            # or removes sessions; the UPF-U performs lookups.
            detector.register(
                self,
                label="session-table",
                owner="upf-c",
                rule_parts=("sessions",),
            )

    def add_removal_listener(
        self, listener: Callable[[UPFSession], None]
    ) -> None:
        """Register a callback invoked with each removed session."""
        self._removal_listeners.append(listener)

    def add(self, session: UPFSession) -> None:
        if session.seid in self._by_seid:
            raise ValueError(f"duplicate SEID {session.seid}")
        # adopt() raises the duplicate-TEID / duplicate-UE-IP errors
        # before any map is touched, so a failed add leaves the table
        # unchanged.
        self.hot_store.adopt(session.hot)
        self._by_seid[session.seid] = session
        # Adopt the shared epoch: any later rule change on this session
        # invalidates the whole cache with one integer bump.
        session.epoch = self.epoch
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self,
                "sessions",
                value=sorted(self._by_seid),
                detail=f"add(seid={session.seid})",
            )
        self.epoch.bump()

    def remove(self, seid: int) -> Optional[UPFSession]:
        session = self._by_seid.pop(seid, None)
        if session is None:
            return None
        self.hot_store.release(session.hot)
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self,
                "sessions",
                value=sorted(self._by_seid),
                detail=f"remove(seid={seid})",
            )
        self.epoch.bump()
        for listener in self._removal_listeners:
            listener(session)
        return session

    def by_teid(self, teid: int) -> Optional[UPFSession]:
        """UL lookup: which session owns this tunnel endpoint?"""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self, "sessions")
        record = self.hot_store.by_teid(teid)
        return None if record is None else record.cold

    def by_ue_ip(self, ue_ip: int) -> Optional[UPFSession]:
        """DL lookup: which session owns this UE address?"""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self, "sessions")
        record = self.hot_store.by_ue_ip(ue_ip)
        return None if record is None else record.cold

    def by_seid(self, seid: int) -> Optional[UPFSession]:
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_read(self, "sessions")
        return self._by_seid.get(seid)

    def __len__(self) -> int:
        return len(self._by_seid)

    def sessions(self) -> List[UPFSession]:
        return list(self._by_seid.values())
