"""UPF-C: the control-plane half of the factored UPF.

Terminates the N4 (PFCP) association with the SMF, decodes session
messages into the runtime rule state shared with the UPF-U, allocates
tunnel endpoints for F-TEIDs carrying the CHOOSE flag, and emits
downlink data reports when the UPF-U signals buffered data for an idle
UE.  Splitting the UPF this way isolates control-plane churn from the
forwarding path (§3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, List, Optional, Type

from ..analysis import races as _races  # repro: noqa[W004] -- race-detector hooks, no-ops unless a detector is installed
from ..classifier.base import Classifier
from ..classifier.partition_sort import PartitionSortClassifier
from ..pfcp import ies as pfcp_ies
from ..pfcp import qos_ies
from ..pfcp.builder import build_downlink_report
from ..pfcp.messages import (
    PFCPMessage,
    SessionDeletionRequest,
    SessionDeletionResponse,
    SessionEstablishmentRequest,
    SessionEstablishmentResponse,
    SessionModificationRequest,
    SessionModificationResponse,
    SessionReportRequest,
)
from .qos import QerEnforcer, TokenBucket, UsageCounter
from .rules import far_from_ie, pdr_from_create_ie
from .session import SessionTableView, UPFSession
from .upf_u import UPFUserPlane

__all__ = ["UPFControlPlane"]


class UPFControlPlane:
    """The N4 endpoint of the UPF.

    Parameters
    ----------
    sessions:
        Session table shared with the UPF-U (same objects — no state
        propagation cost, §3.2's "zero cost state update").
    upf_u:
        The forwarding pipeline, needed to flush smart buffers on FAR
        transitions.
    address:
        The UPF's N3 IPv4 address used for allocated F-TEIDs.
    classifier_class:
        PDR lookup structure for new sessions.
    send_report:
        Callback delivering a :class:`SessionReportRequest` to the SMF
        (transport chosen by the deployment: UDP socket vs shm).
    """

    def __init__(
        self,
        sessions: SessionTableView,
        upf_u: Optional[UPFUserPlane] = None,
        address: int = 0xC0A80102,
        classifier_class: Type[Classifier] = PartitionSortClassifier,
        send_report: Optional[Callable[[SessionReportRequest], None]] = None,
        buffer_capacity: int = 3000,
    ):
        self.sessions = sessions
        self.upf_u = upf_u
        self.address = address
        self.classifier_class = classifier_class
        self.send_report = send_report or (lambda message: None)
        self.buffer_capacity = buffer_capacity
        self._teid_counter = itertools.count(0x1000)
        self._report_seq = itertools.count(1)
        self.messages_handled = 0

    # ------------------------------------------------------------------
    def allocate_teid(self, ue_ip: int = 0) -> int:
        """A node-unique uplink/forwarding TEID.

        ``ue_ip`` is the session's DL hash key, when known.  The base
        implementation ignores it; the sharded UPF-C overrides this to
        steer the TEID into the same RSS bucket as the UE IP so a
        session's UL and DL traffic land on the same shard.
        """
        return next(self._teid_counter)

    # ------------------------------------------------------------------
    def handle(self, message: PFCPMessage) -> PFCPMessage:
        """Dispatch one PFCP session message, returning the response.

        All rule-state writes happen under the "upf-c" role: this is
        the single writer of the shared session rules (§3.2).
        """
        detector = _races.active()
        if detector is None:
            return self._dispatch(message)
        with detector.role("upf-c"):
            return self._dispatch(message)

    def _dispatch(self, message: PFCPMessage) -> PFCPMessage:
        self.messages_handled += 1
        if isinstance(message, SessionEstablishmentRequest):
            return self._establish(message)
        if isinstance(message, SessionModificationRequest):
            return self._modify(message)
        if isinstance(message, SessionDeletionRequest):
            return self._delete(message)
        raise ValueError(f"UPF-C cannot handle {message.name}")

    # ------------------------------------------------------------------
    def _establish(
        self, message: SessionEstablishmentRequest
    ) -> SessionEstablishmentResponse:
        creates = message.find_all(pfcp_ies.CreatePdrIE)
        fars = message.find_all(pfcp_ies.CreateFarIE)
        # Pre-scan the UE IP: a CHOOSE F-TEID allocation needs the DL
        # hash key up front (shard steering), and the UE IP IE may
        # arrive in a later Create PDR than the F-TEID.
        ue_ip = 0
        for create in creates:
            pdi = create.child(pfcp_ies.PdiIE)
            ue_ip_ie = pdi.child(pfcp_ies.UeIpAddressIE) if pdi else None
            if ue_ip_ie is not None:
                ue_ip = ue_ip_ie.address
        ul_teid = 0
        allocated: List[pfcp_ies.IE] = []
        pdrs = []
        for create in creates:
            pdr = pdr_from_create_ie(create)
            pdi = create.child(pfcp_ies.PdiIE)
            fteid = pdi.child(pfcp_ies.FTeidIE) if pdi else None
            if fteid is not None:
                if fteid.choose:
                    teid = self.allocate_teid(ue_ip=ue_ip)
                    # Swap in the allocated endpoint (IEs are frozen)
                    # and re-decode the PDR with it.
                    fteid = replace(fteid, teid=teid, choose=False)
                    pdi.children[
                        pdi.children.index(pdi.child(pfcp_ies.FTeidIE))
                    ] = fteid
                    pdr = pdr_from_create_ie(create)
                    allocated.append(
                        pfcp_ies.FTeidIE(teid=teid, address=self.address)
                    )
                ul_teid = fteid.teid
            pdrs.append(pdr)
        session = UPFSession(
            seid=message.seid,
            ue_ip=ue_ip,
            ul_teid=ul_teid,
            classifier_class=self.classifier_class,
            buffer_capacity=self.buffer_capacity,
        )
        for pdr in pdrs:
            session.install_pdr(pdr)
        for far_ie in fars:
            session.install_far(far_from_ie(far_ie))
        for qer_ie in message.find_all(qos_ies.CreateQerIE):
            session.install_qer_enforcer(self._decode_qer(qer_ie))
        for urr_ie in message.find_all(qos_ies.CreateUrrIE):
            session.install_usage_counter(self._decode_urr(urr_ie))
        self.sessions.add(session)
        return SessionEstablishmentResponse(
            seid=message.seid,
            sequence=message.sequence,
            ies=[pfcp_ies.CauseIE(cause=pfcp_ies.CAUSE_ACCEPTED)] + allocated,
        )

    def _modify(
        self, message: SessionModificationRequest
    ) -> SessionModificationResponse:
        session = self.sessions.by_seid(message.seid)
        if session is None:
            return SessionModificationResponse(
                seid=message.seid,
                sequence=message.sequence,
                ies=[
                    pfcp_ies.CauseIE(cause=pfcp_ies.CAUSE_SESSION_NOT_FOUND)
                ],
            )
        response_ies: List[pfcp_ies.IE] = [
            pfcp_ies.CauseIE(cause=pfcp_ies.CAUSE_ACCEPTED)
        ]
        # F-TEID with CHOOSE: allocate a fresh endpoint (handover prep).
        for fteid in message.find_all(pfcp_ies.FTeidIE):
            if fteid.choose:
                response_ies.append(
                    pfcp_ies.FTeidIE(
                        teid=self.allocate_teid(ue_ip=session.ue_ip),
                        address=self.address,
                    )
                )
        released = 0
        for update in message.find_all(pfcp_ies.UpdateFarIE):
            far = far_from_ie(update)
            was_buffering = self._is_buffering(session, far.far_id)
            session.update_far(far)
            now_forwarding = far.action.forward and not far.action.buffer
            if was_buffering and now_forwarding and self.upf_u is not None:
                released += self.upf_u.flush_session(session)
        for create in message.find_all(pfcp_ies.CreatePdrIE):
            session.install_pdr(pdr_from_create_ie(create))
        for create in message.find_all(pfcp_ies.CreateFarIE):
            session.install_far(far_from_ie(create))
        for qer_ie in message.find_all(qos_ies.CreateQerIE):
            session.install_qer_enforcer(self._decode_qer(qer_ie))
        for urr_ie in message.find_all(qos_ies.CreateUrrIE):
            session.install_usage_counter(self._decode_urr(urr_ie))
        # Note: ``report_pending`` is UPF-U state; the flush above
        # already cleared it (flush_session runs under the "upf-u"
        # role).  The UPF-C must not write it — the race detector
        # flags that as a non-owner write.
        return SessionModificationResponse(
            seid=message.seid, sequence=message.sequence, ies=response_ies
        )

    def _delete(
        self, message: SessionDeletionRequest
    ) -> SessionDeletionResponse:
        removed = self.sessions.remove(message.seid)
        cause = (
            pfcp_ies.CAUSE_ACCEPTED
            if removed is not None
            else pfcp_ies.CAUSE_SESSION_NOT_FOUND
        )
        return SessionDeletionResponse(
            seid=message.seid,
            sequence=message.sequence,
            ies=[pfcp_ies.CauseIE(cause=cause)],
        )

    def _is_buffering(self, session: UPFSession, far_id: int) -> bool:
        far = session.fars.get(far_id)
        return far is not None and far.action.buffer

    # ------------------------------------------------------------------
    # QER / URR decoding
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_qer(qer_ie: qos_ies.CreateQerIE) -> QerEnforcer:
        qer_id_ie = qer_ie.child(pfcp_ies.QerIdIE)
        if qer_id_ie is None:
            raise ValueError("Create QER without QER ID")
        enforcer = QerEnforcer(qer_id=qer_id_ie.rule_id)
        qfi = qer_ie.child(pfcp_ies.QfiIE)
        if qfi is not None:
            enforcer.qfi = qfi.qfi
        gate = qer_ie.child(qos_ies.GateStatusIE)
        if gate is not None:
            enforcer.ul_gate_open = gate.ul_open
            enforcer.dl_gate_open = gate.dl_open
        mbr = qer_ie.child(qos_ies.MbrIE)
        if mbr is not None:
            if mbr.ul_kbps:
                enforcer.ul_bucket = TokenBucket(mbr.ul_kbps * 1000.0)
            if mbr.dl_kbps:
                enforcer.dl_bucket = TokenBucket(mbr.dl_kbps * 1000.0)
        return enforcer

    @staticmethod
    def _decode_urr(urr_ie: qos_ies.CreateUrrIE) -> UsageCounter:
        urr_id_ie = urr_ie.child(qos_ies.UrrIdIE)
        if urr_id_ie is None:
            raise ValueError("Create URR without URR ID")
        threshold = urr_ie.child(qos_ies.VolumeThresholdIE)
        return UsageCounter(
            urr_id=urr_id_ie.rule_id,
            volume_threshold_bytes=(
                threshold.total_bytes if threshold else None
            ),
        )

    # ------------------------------------------------------------------
    # Usage reporting (URR volume-threshold trigger)
    # ------------------------------------------------------------------
    def on_usage_threshold(
        self, session: UPFSession, counter: UsageCounter
    ) -> None:
        """UPF-U callback: a URR's volume threshold tripped."""
        report = SessionReportRequest(
            seid=session.seid,
            sequence=next(self._report_seq),
            ies=[
                pfcp_ies.ReportTypeIE(dldr=False, usar=True),
                qos_ies.UsageReportIE(
                    children=[
                        qos_ies.UrrIdIE(rule_id=counter.urr_id),
                        qos_ies.VolumeMeasurementIE(
                            total_bytes=counter.total_bytes,
                            uplink_bytes=counter.uplink_bytes,
                            downlink_bytes=counter.downlink_bytes,
                        ),
                    ]
                ),
            ],
        )
        self.send_report(report)

    # ------------------------------------------------------------------
    # Downlink data notification (paging trigger)
    # ------------------------------------------------------------------
    def on_buffered_data(self, session: UPFSession) -> None:
        """UPF-U callback: first DL packet buffered for an idle UE."""
        report = build_downlink_report(
            seid=session.seid, sequence=next(self._report_seq)
        )
        self.send_report(report)
