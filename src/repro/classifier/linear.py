"""PDR-LL: the 3GPP-recommended linear search over a priority list.

TS 29.244 §5.2.1 instructs the UPF to keep PDRs "in a list in
descending order of their precedence" and scan until the first match.
This is the baseline the paper shows does not scale (Fig 11), and it is
also the reference oracle for the other classifiers' correctness tests
(first match in descending priority order == highest-priority match).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence

from .base import Classifier
from .rule import Rule

__all__ = ["LinearClassifier"]


class LinearClassifier(Classifier):
    """A priority-descending list of rules, scanned linearly."""

    name = "PDR-LL"

    def __init__(self) -> None:
        self._rules: List[Rule] = []  # descending priority
        self._sort_keys: List[int] = []  # ascending -priority for bisect

    def insert(self, rule: Rule) -> None:
        """Insert keeping descending-priority order (stable for ties)."""
        position = bisect.bisect_right(self._sort_keys, -rule.priority)
        self._rules.insert(position, rule)
        self._sort_keys.insert(position, -rule.priority)

    def remove(self, rule: Rule) -> bool:
        return self.remove_by_id(rule.rule_id)

    def remove_by_id(self, rule_id: int) -> bool:
        """In-place scan by id — no :meth:`rules` snapshot copy."""
        for index, existing in enumerate(self._rules):
            if existing.rule_id == rule_id:
                del self._rules[index]
                del self._sort_keys[index]
                return True
        return False

    def lookup(self, key: Sequence[int]) -> Optional[Rule]:
        for rule in self._rules:
            if rule.matches(key):
                return rule
        return None

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[Rule]:
        return list(self._rules)
