"""A ClassBench-style PDR generator.

The paper extends ClassBench (Taylor & Turner) to emit PDRs with 20 PDI
IEs for the Fig 11 evaluation.  Real ClassBench derives rules from seed
filter sets; lacking those, this generator reproduces the structural
properties that matter to the classifiers:

* IP prefixes drawn from a realistic length distribution (heavy at /24
  and /32, a spread of shorter prefixes, some wildcards);
* port ranges that are prefix-expressible (wildcard, exact, or
  power-of-two blocks like [1024, 2047]) so TSS signatures are well
  defined;
* exact-or-wildcard matches on the 5G-specific IEs (TEID, QFI,
  application id, SPI, flow label, slice id, ...);
* distinct priorities (PFCP precedence values are unique per session).

Three profiles control tuple-space diversity, matching the paper's
scenarios:

* ``best`` — every rule shares one signature: PDR-TSS probes a single
  sub-table (PDR-TSS_Best);
* ``worst`` — every rule gets a unique signature: PDR-TSS degenerates
  to N probes (PDR-TSS_Worst, the DoS pattern);
* ``mixed`` — a realistic blend (default).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from .rule import NUM_FIELDS, PDI_FIELDS, PacketKey, Rule, exact, prefix, wildcard

__all__ = ["ClassBenchGenerator", "PROFILE_BEST", "PROFILE_WORST", "PROFILE_MIXED"]

PROFILE_BEST = "best"
PROFILE_WORST = "worst"
PROFILE_MIXED = "mixed"

#: (prefix length, weight) for IPv4 fields, loosely after ClassBench's
#: ACL seed distributions.
_IP_PREFIX_WEIGHTS: Sequence[Tuple[int, float]] = (
    (0, 0.05),
    (8, 0.02),
    (16, 0.08),
    (20, 0.05),
    (24, 0.35),
    (28, 0.10),
    (32, 0.35),
)

_FIELD_INDEX = {spec.name: i for i, spec in enumerate(PDI_FIELDS)}


class ClassBenchGenerator:
    """Generates PDR rule sets and matching packet traces.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds give identical rule sets.
    profile:
        One of ``best`` / ``worst`` / ``mixed`` (see module docstring).
    """

    def __init__(
        self,
        seed: int = 1,
        profile: str = PROFILE_MIXED,
        num_templates: int = 16,
    ):
        if profile not in (PROFILE_BEST, PROFILE_WORST, PROFILE_MIXED):
            raise ValueError(f"unknown profile: {profile!r}")
        if num_templates <= 0:
            raise ValueError("num_templates must be positive")
        self.profile = profile
        self._rng = random.Random(seed)
        # Real filter sets cluster into a handful of structural
        # templates (which is why TSS works at all); the mixed profile
        # draws each rule from one of ``num_templates`` templates.
        self._templates = [
            self._make_template() for _ in range(num_templates)
        ]

    # ------------------------------------------------------------------
    def rules(self, count: int) -> List[Rule]:
        """Generate ``count`` rules with unique priorities."""
        out: List[Rule] = []
        priorities = list(range(1, count + 1))
        self._rng.shuffle(priorities)
        for index in range(count):
            out.append(self._rule(index, priorities[index], count))
        return out

    def matching_keys(self, rules: Sequence[Rule], count: int) -> List[PacketKey]:
        """Packet keys, each guaranteed to match at least one rule.

        This is ClassBench's trace generator: headers are derived from
        the filters so lookups exercise real matches rather than
        default misses.
        """
        out: List[PacketKey] = []
        for _ in range(count):
            rule = self._rng.choice(list(rules))
            out.append(self._key_within(rule))
        return out

    def random_keys(self, count: int) -> List[PacketKey]:
        """Uniform random keys (mostly misses) for negative testing."""
        return [
            tuple(
                self._rng.randint(0, spec.max_value) for spec in PDI_FIELDS
            )
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    def _rule(self, index: int, priority: int, total: int) -> Rule:
        if self.profile == PROFILE_BEST:
            ranges = self._best_case_ranges(index)
        elif self.profile == PROFILE_WORST:
            ranges = self._worst_case_ranges(index, total)
        else:
            ranges = self._mixed_ranges()
        return Rule(
            ranges=tuple(ranges), priority=priority, rule_id=index + 1
        )

    def _best_case_ranges(self, index: int) -> List[Tuple[int, int]]:
        """All rules exact in the same fields: one TSS signature."""
        rng = self._rng
        ranges = [wildcard(spec) for spec in PDI_FIELDS]
        ranges[_FIELD_INDEX["src_ip"]] = exact(rng.randint(0, 2**32 - 1))
        ranges[_FIELD_INDEX["dst_ip"]] = exact(rng.randint(0, 2**32 - 1))
        ranges[_FIELD_INDEX["src_port"]] = exact(rng.randint(0, 65535))
        ranges[_FIELD_INDEX["dst_port"]] = exact(rng.randint(0, 65535))
        ranges[_FIELD_INDEX["protocol"]] = exact(
            rng.choice((6, 17))
        )
        ranges[_FIELD_INDEX["teid"]] = exact(index + 1)
        return ranges

    def _worst_case_ranges(self, index: int, total: int) -> List[Tuple[int, int]]:
        """A distinct prefix-length vector per rule: N TSS sub-tables.

        We vary the src_ip/dst_ip prefix lengths systematically so each
        rule lands in its own tuple — the tuple-space-explosion shape.
        """
        rng = self._rng
        ranges = [wildcard(spec) for spec in PDI_FIELDS]
        # 33 x 33 combinations of (src, dst) prefix lengths, extended by
        # the teid prefix when more are needed.
        src_len = index % 33
        dst_len = (index // 33) % 33
        extra = index // (33 * 33)
        ranges[_FIELD_INDEX["src_ip"]] = prefix(
            PDI_FIELDS[_FIELD_INDEX["src_ip"]],
            rng.randint(0, 2**32 - 1),
            src_len,
        )
        ranges[_FIELD_INDEX["dst_ip"]] = prefix(
            PDI_FIELDS[_FIELD_INDEX["dst_ip"]],
            rng.randint(0, 2**32 - 1),
            dst_len,
        )
        if extra:
            ranges[_FIELD_INDEX["teid"]] = prefix(
                PDI_FIELDS[_FIELD_INDEX["teid"]],
                rng.randint(0, 2**32 - 1),
                extra % 33,
            )
        return ranges

    def _make_template(self) -> Tuple[int, ...]:
        """One structural template: a prefix length per field.

        0 means wildcard; a field's full width means exact-match.  All
        rules drawn from the same template share a TSS signature.
        """
        rng = self._rng
        lengths = [0] * NUM_FIELDS
        lengths[_FIELD_INDEX["src_ip"]] = self._weighted_prefix_length()
        lengths[_FIELD_INDEX["dst_ip"]] = self._weighted_prefix_length()
        lengths[_FIELD_INDEX["src_port"]] = rng.choice((0, 0, 16, 16, 6))
        lengths[_FIELD_INDEX["dst_port"]] = rng.choice((0, 16, 16, 6, 10))
        lengths[_FIELD_INDEX["protocol"]] = rng.choice((0, 8, 8))
        # 5G-specific IEs: exact-or-wildcard, with realistic odds.
        for name, probability in (
            ("teid", 0.4),
            ("qfi", 0.5),
            ("app_id", 0.25),
            ("spi", 0.1),
            ("flow_label", 0.15),
            ("sdf_filter_id", 0.2),
            ("source_iface", 0.5),
            ("pdu_type", 0.2),
            ("network_instance", 0.3),
            ("dscp", 0.3),
            ("session_id", 0.2),
            ("slice_id", 0.3),
            ("urr_id", 0.1),
            ("outer_header", 0.2),
        ):
            if rng.random() < probability:
                index = _FIELD_INDEX[name]
                lengths[index] = PDI_FIELDS[index].bits
        if rng.random() < 0.3:
            lengths[_FIELD_INDEX["tos"]] = 5  # QoS class prefix
        return tuple(lengths)

    def _mixed_ranges(self) -> List[Tuple[int, int]]:
        """A realistic 5GC blend: random values over a shared template."""
        rng = self._rng
        template = rng.choice(self._templates)
        ranges: List[Tuple[int, int]] = []
        for spec, length in zip(PDI_FIELDS, template):
            if length == 0:
                ranges.append(wildcard(spec))
            else:
                ranges.append(
                    prefix(spec, rng.randint(0, spec.max_value), length)
                )
        return ranges

    def _weighted_prefix_length(self) -> int:
        roll = self._rng.random()
        cumulative = 0.0
        for length, weight in _IP_PREFIX_WEIGHTS:
            cumulative += weight
            if roll <= cumulative:
                return length
        return 32

    def _port_range(self) -> Tuple[int, int]:
        """Wildcard, exact, or a power-of-two block."""
        rng = self._rng
        spec = PDI_FIELDS[_FIELD_INDEX["src_port"]]
        roll = rng.random()
        if roll < 0.45:
            return wildcard(spec)
        if roll < 0.80:
            return exact(rng.randint(0, 65535))
        # Power-of-two aligned block: e.g. [1024, 2047].
        length = rng.choice((2, 4, 5, 6, 8, 10))
        return prefix(spec, rng.randint(0, 65535), length)

    def _key_within(self, rule: Rule) -> PacketKey:
        return tuple(
            self._rng.randint(lo, hi) for lo, hi in rule.ranges
        )
