"""PDR-TSS: Tuple Space Search (Srinivasan et al., SIGCOMM'99).

Rules are partitioned into sub-tables by their *tuple*: the vector of
per-field prefix lengths.  Within a sub-table every rule constrains the
same bits, so a hash of the packet's masked field values finds the rule
in O(1).  A lookup probes every sub-table and keeps the best-priority
match, hence the cost is O(#tuples) hash probes:

* best case — all rules share one tuple: a single probe (the flat
  ~0.26 us line of Fig 11a);
* worst case — every rule its own tuple: N probes, which is why
  PDR-TSS_Worst exits Fig 11a's range by 100 rules, and the basis of
  the Tuple Space Explosion DoS attack the paper cites (§3.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .base import Classifier
from .rule import NUM_FIELDS, PDI_FIELDS, Rule

__all__ = ["TupleSpaceClassifier"]

_Signature = Tuple[int, ...]
_MaskedKey = Tuple[int, ...]


class _SubTable:
    """One tuple's hash table: masked key -> rules (priority desc)."""

    __slots__ = ("signature", "shifts", "buckets", "max_priority")

    def __init__(self, signature: _Signature):
        self.signature = signature
        # Pre-compute per-field shift amounts; masking a value is then
        # (value >> shift) << shift, avoiding re-deriving masks per probe.
        self.shifts = tuple(
            spec.bits - length
            for spec, length in zip(PDI_FIELDS, signature)
        )
        self.buckets: Dict[_MaskedKey, List[Rule]] = {}
        self.max_priority = -(2**63)

    def mask_key(self, key: Sequence[int]) -> _MaskedKey:
        shifts = self.shifts
        return tuple(
            (key[i] >> shifts[i]) << shifts[i] for i in range(NUM_FIELDS)
        )

    def insert(self, rule: Rule) -> None:
        masked = tuple(lo for lo, _hi in rule.ranges)
        bucket = self.buckets.setdefault(masked, [])
        bucket.append(rule)
        bucket.sort(key=lambda r: -r.priority)
        if rule.priority > self.max_priority:
            self.max_priority = rule.priority

    def remove(self, rule: Rule) -> bool:
        masked = tuple(lo for lo, _hi in rule.ranges)
        bucket = self.buckets.get(masked)
        if not bucket:
            return False
        for index, existing in enumerate(bucket):
            if existing.rule_id == rule.rule_id:
                del bucket[index]
                if not bucket:
                    del self.buckets[masked]
                self._recompute_max()
                return True
        return False

    def _recompute_max(self) -> None:
        self.max_priority = max(
            (rule.priority for bucket in self.buckets.values() for rule in bucket),
            default=-(2**63),
        )

    def lookup(self, key: Sequence[int]) -> Optional[Rule]:
        bucket = self.buckets.get(self.mask_key(key))
        if bucket:
            return bucket[0]
        return None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())


class TupleSpaceClassifier(Classifier):
    """The tuple-space-search classifier."""

    name = "PDR-TSS"

    def __init__(self) -> None:
        self._tables: Dict[_Signature, _SubTable] = {}
        self._count = 0
        #: rule_id -> stored rule, so removals by id skip the full
        #: rules() snapshot and go straight to the owning sub-table.
        self._by_id: Dict[int, Rule] = {}

    @property
    def num_subtables(self) -> int:
        """Sub-table count — N probes per lookup in the worst case."""
        return len(self._tables)

    def insert(self, rule: Rule) -> None:
        signature = rule.tuple_signature()
        if any(length is None for length in signature):
            raise ValueError(
                "TSS requires prefix-expressible ranges; "
                "expand arbitrary ranges to prefixes first"
            )
        table = self._tables.get(signature)
        if table is None:
            table = _SubTable(signature)  # type: ignore[arg-type]
            self._tables[signature] = table  # type: ignore[index]
        table.insert(rule)
        self._count += 1
        self._by_id[rule.rule_id] = rule

    def remove(self, rule: Rule) -> bool:
        signature = rule.tuple_signature()
        table = self._tables.get(signature)  # type: ignore[arg-type]
        if table is None:
            return False
        if table.remove(rule):
            self._count -= 1
            if len(table) == 0:
                del self._tables[signature]  # type: ignore[arg-type]
            self._by_id.pop(rule.rule_id, None)
            return True
        return False

    def remove_by_id(self, rule_id: int) -> bool:
        """Id-indexed removal: one dict probe to the stored rule."""
        rule = self._by_id.get(rule_id)
        if rule is None:
            return False
        return self.remove(rule)

    def lookup(self, key: Sequence[int]) -> Optional[Rule]:
        best: Optional[Rule] = None
        best_priority = -(2**63)
        for table in self._tables.values():
            # Pruning: a sub-table whose best rule cannot beat the
            # current winner need not be probed.
            if table.max_priority <= best_priority:
                continue
            candidate = table.lookup(key)
            if candidate is not None and candidate.priority > best_priority:
                best = candidate
                best_priority = candidate.priority
        return best

    def __len__(self) -> int:
        return self._count

    def rules(self) -> List[Rule]:
        return [
            rule
            for table in self._tables.values()
            for bucket in table.buckets.values()
            for rule in bucket
        ]
