"""The classifier interface shared by PDR-LL, PDR-TSS and PDR-PS."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .rule import Rule

__all__ = ["Classifier"]


class Classifier:
    """Interface: insert/remove rules, look up the best match.

    ``lookup`` returns the matching rule with the highest priority, or
    None.  All three implementations must return identical results for
    identical rule sets — the property tests enforce this equivalence
    against :class:`~repro.classifier.linear.LinearClassifier` as the
    reference oracle.
    """

    name = "abstract"

    def insert(self, rule: Rule) -> None:
        raise NotImplementedError

    def remove(self, rule: Rule) -> bool:
        """Remove a rule (matched by rule_id); True if it was present."""
        raise NotImplementedError

    def lookup(self, key: Sequence[int]) -> Optional[Rule]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def extend(self, rules: Iterable[Rule]) -> None:
        """Bulk insert."""
        for rule in rules:
            self.insert(rule)

    def remove_by_id(self, rule_id: int) -> bool:
        """Remove the stored rule carrying ``rule_id``; True if found.

        Subclasses override this with an id-indexed fast path — the
        default falls back to :meth:`rules`, which snapshots the whole
        rule set and is O(n) regardless of structure.
        """
        for existing in self.rules():
            if existing.rule_id == rule_id:
                return self.remove(existing)
        return False

    def update(self, rule: Rule) -> None:
        """Replace the rule with the same rule_id (PDR update path).

        The stored rule may have different match ranges, so it is
        located by id rather than by position.
        """
        self.remove_by_id(rule.rule_id)
        self.insert(rule)

    def rules(self) -> List[Rule]:
        """Snapshot of all stored rules (order unspecified)."""
        raise NotImplementedError
