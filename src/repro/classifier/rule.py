"""Packet detection rules as multi-dimensional range matches.

3GPP's PDR carries up to ~20 packet detection information IEs (paper
Appendix A, Table 3): tunnel endpoint, UE IP, the SDF filter's five
tuple, QFI, ToS, SPI, flow label and friends.  A PDR is therefore a
point in the classical packet-classification problem: each field is an
inclusive integer range ``[lo, hi]`` and a packet is a vector of field
values; the matching rule with the highest precedence wins.

This module defines the 20-field layout used throughout the classifier
subsystem, the :class:`Rule` and helpers to express exact / prefix /
wildcard matches per field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "FieldSpec",
    "PDI_FIELDS",
    "NUM_FIELDS",
    "Rule",
    "exact",
    "wildcard",
    "prefix",
    "PacketKey",
]


@dataclass(frozen=True)
class FieldSpec:
    """One PDI dimension: a name and a bit width."""

    name: str
    bits: int

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1


#: The 20 PDI IE dimensions of the paper's evaluation (§3.4: "we employ
#: a number of PDI IEs (up to 20) in the PDR").
PDI_FIELDS: Tuple[FieldSpec, ...] = (
    FieldSpec("src_ip", 32),
    FieldSpec("dst_ip", 32),
    FieldSpec("src_port", 16),
    FieldSpec("dst_port", 16),
    FieldSpec("protocol", 8),
    FieldSpec("tos", 8),
    FieldSpec("teid", 32),
    FieldSpec("qfi", 6),
    FieldSpec("app_id", 16),
    FieldSpec("spi", 32),
    FieldSpec("flow_label", 20),
    FieldSpec("sdf_filter_id", 16),
    FieldSpec("source_iface", 4),
    FieldSpec("pdu_type", 4),
    FieldSpec("network_instance", 12),
    FieldSpec("dscp", 6),
    FieldSpec("session_id", 32),
    FieldSpec("slice_id", 8),
    FieldSpec("urr_id", 16),
    FieldSpec("outer_header", 4),
)

NUM_FIELDS = len(PDI_FIELDS)

#: A packet, for classification purposes: one value per PDI field.
PacketKey = Tuple[int, ...]


def exact(value: int) -> Tuple[int, int]:
    """A range matching exactly ``value``."""
    return (value, value)


def wildcard(spec: FieldSpec) -> Tuple[int, int]:
    """The full range of a field (match anything)."""
    return (0, spec.max_value)


def prefix(spec: FieldSpec, value: int, length: int) -> Tuple[int, int]:
    """The range covered by the ``length``-bit prefix of ``value``.

    ``length == 0`` is the wildcard; ``length == spec.bits`` is exact.
    """
    if not 0 <= length <= spec.bits:
        raise ValueError(
            f"prefix length {length} out of range for {spec.name}"
        )
    shift = spec.bits - length
    lo = (value >> shift) << shift
    hi = lo | ((1 << shift) - 1)
    return (lo, hi)


def _prefix_length(spec: FieldSpec, lo: int, hi: int) -> Optional[int]:
    """The prefix length expressing ``[lo, hi]``, or None if not a prefix."""
    span = hi - lo + 1
    if span & (span - 1):
        return None  # not a power of two
    if lo & (span - 1):
        return None  # not aligned
    return spec.bits - span.bit_length() + 1


@dataclass
class Rule:
    """A PDR viewed as a classifier rule.

    Attributes
    ----------
    ranges:
        One inclusive ``(lo, hi)`` pair per field in :data:`PDI_FIELDS`
        order.
    priority:
        Higher wins (this is the inverse of PFCP precedence, where the
        *lowest* precedence value has the highest priority; the
        conversion happens in :mod:`repro.up.rules`).
    rule_id / far_id:
        Back references into the PFCP session state.
    """

    ranges: Tuple[Tuple[int, int], ...]
    priority: int = 0
    rule_id: int = 0
    far_id: int = 0

    def __post_init__(self) -> None:
        if len(self.ranges) != NUM_FIELDS:
            raise ValueError(
                f"rule needs {NUM_FIELDS} ranges, got {len(self.ranges)}"
            )
        for spec, (lo, hi) in zip(PDI_FIELDS, self.ranges):
            if not 0 <= lo <= hi <= spec.max_value:
                raise ValueError(
                    f"bad range for {spec.name}: [{lo}, {hi}]"
                )

    def matches(self, key: Sequence[int]) -> bool:
        """True if every field value falls inside the rule's range."""
        for (lo, hi), value in zip(self.ranges, key):
            if value < lo or value > hi:
                return False
        return True

    def tuple_signature(self) -> Tuple[Optional[int], ...]:
        """Per-field prefix lengths — the TSS sub-table signature.

        Fields whose range is not prefix-expressible yield ``None``
        (TSS implementations expand those to prefixes; our generator
        emits prefix-expressible ranges, see
        :mod:`repro.classifier.classbench`).
        """
        return tuple(
            _prefix_length(spec, lo, hi)
            for spec, (lo, hi) in zip(PDI_FIELDS, self.ranges)
        )

    def is_wildcard(self, field_index: int) -> bool:
        lo, hi = self.ranges[field_index]
        return lo == 0 and hi == PDI_FIELDS[field_index].max_value

    def specificity(self) -> int:
        """Total matched-prefix bits; used as a default priority."""
        total = 0
        for spec, (lo, hi) in zip(PDI_FIELDS, self.ranges):
            span = hi - lo + 1
            total += spec.bits - (span.bit_length() - 1)
        return total

    @classmethod
    def from_fields(
        cls,
        priority: int = 0,
        rule_id: int = 0,
        far_id: int = 0,
        **field_ranges: Tuple[int, int],
    ) -> "Rule":
        """Build a rule naming only the constrained fields.

        >>> r = Rule.from_fields(dst_ip=exact(0x0A3C0001), protocol=exact(17))
        """
        by_name = {spec.name: i for i, spec in enumerate(PDI_FIELDS)}
        ranges: List[Tuple[int, int]] = [
            wildcard(spec) for spec in PDI_FIELDS
        ]
        for name, value_range in field_ranges.items():
            if name not in by_name:
                raise ValueError(f"unknown PDI field: {name}")
            ranges[by_name[name]] = value_range
        return cls(
            ranges=tuple(ranges),
            priority=priority,
            rule_id=rule_id,
            far_id=far_id,
        )

    @staticmethod
    def key_from_fields(**field_values: int) -> PacketKey:
        """A packet key naming only the non-zero fields."""
        by_name = {spec.name: i for i, spec in enumerate(PDI_FIELDS)}
        key = [0] * NUM_FIELDS
        for name, value in field_values.items():
            if name not in by_name:
                raise ValueError(f"unknown PDI field: {name}")
            key[by_name[name]] = value
        return tuple(key)
