"""PDR-PS: PartitionSort (Yingchareonthawornchai et al., ICNP'16).

PartitionSort partitions the rule set online into a small number of
*sortable rulesets*.  A ruleset is sortable when, for every pair of
rules and every field, the two rules' intervals are either identical or
completely disjoint.  Under that invariant the rules admit a total
lexicographic order (compare interval by interval along a field order),
so each ruleset supports:

* lookup by multi-dimensional binary search — O(d + log n) comparisons,
  with **no hashing** (unlike TSS, which is also why it resists the
  tuple-space-explosion DoS attack);
* logarithmic insert/remove, keeping updates fast (the paper measures
  6.14 us per update vs 0.38 us for the linear list — slower, but
  "the difference is not substantial" §5.3).

A query probes partitions in decreasing max-priority order and stops as
soon as the current best match out-prioritizes every remaining
partition, mirroring the original algorithm's priority pruning.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .base import Classifier
from .rule import NUM_FIELDS, Rule

__all__ = ["PartitionSortClassifier"]


class _Unsortable(Exception):
    """Raised when a rule cannot join a partition."""


def _compare_rule(rule_a: Rule, rule_b: Rule, field_order: Sequence[int]) -> int:
    """Lexicographic interval comparison along ``field_order``.

    Returns -1 / 0 / +1.  Raises :class:`_Unsortable` when a pair of
    intervals overlaps without being identical — the pair cannot
    coexist in a sortable ruleset.
    """
    for dim in field_order:
        a_lo, a_hi = rule_a.ranges[dim]
        b_lo, b_hi = rule_b.ranges[dim]
        if a_lo == b_lo and a_hi == b_hi:
            continue
        if a_hi < b_lo:
            return -1
        if b_hi < a_lo:
            return 1
        raise _Unsortable(
            f"overlapping intervals in dim {dim}: "
            f"[{a_lo},{a_hi}] vs [{b_lo},{b_hi}]"
        )
    return 0


def _compare_key(key: Sequence[int], rule: Rule, field_order: Sequence[int]) -> int:
    """Compare a packet to a rule: -1 left, +1 right, 0 contained."""
    for dim in field_order:
        lo, hi = rule.ranges[dim]
        value = key[dim]
        if value < lo:
            return -1
        if value > hi:
            return 1
    return 0


class _SortableRuleset:
    """One partition: rules kept in ascending lexicographic order.

    The sortedness invariant means at most one *distinct* match region
    can contain a packet; rules with exactly identical ranges share a
    slot, kept in descending priority.
    """

    __slots__ = ("field_order", "slots", "max_priority")

    def __init__(self, field_order: Tuple[int, ...]):
        self.field_order = field_order
        self.slots: List[List[Rule]] = []
        self.max_priority = -(2**63)

    def __len__(self) -> int:
        return sum(len(slot) for slot in self.slots)

    def _locate(self, rule: Rule) -> Tuple[int, bool]:
        """Binary-search the slot index for ``rule``.

        Returns ``(index, found)``; raises :class:`_Unsortable` if the
        rule overlaps-without-equality with any probed rule.  Because
        the stored set is totally ordered and pairwise disjoint-or-
        equal, a clean comparison against the probe path plus the two
        neighbors guarantees global sortability.
        """
        low, high = 0, len(self.slots)
        while low < high:
            mid = (low + high) // 2
            order = _compare_rule(rule, self.slots[mid][0], self.field_order)
            if order == 0:
                return mid, True
            if order < 0:
                high = mid
            else:
                low = mid + 1
        # Verify the immediate neighbors as well (the probe path may
        # not have touched them).
        if low > 0:
            _compare_rule(rule, self.slots[low - 1][0], self.field_order)
        if low < len(self.slots):
            _compare_rule(rule, self.slots[low][0], self.field_order)
        return low, False

    def try_insert(self, rule: Rule) -> bool:
        """Insert if sortable here; False otherwise."""
        try:
            index, found = self._locate(rule)
        except _Unsortable:
            return False
        if found:
            slot = self.slots[index]
            slot.append(rule)
            slot.sort(key=lambda r: -r.priority)
        else:
            self.slots.insert(index, [rule])
        if rule.priority > self.max_priority:
            self.max_priority = rule.priority
        return True

    def remove(self, rule: Rule) -> bool:
        try:
            index, found = self._locate(rule)
        except _Unsortable:
            return False
        if not found:
            return False
        slot = self.slots[index]
        for position, existing in enumerate(slot):
            if existing.rule_id == rule.rule_id:
                del slot[position]
                if not slot:
                    del self.slots[index]
                self._recompute_max()
                return True
        return False

    def _recompute_max(self) -> None:
        self.max_priority = max(
            (slot[0].priority for slot in self.slots),
            default=-(2**63),
        )

    def lookup(self, key: Sequence[int]) -> Optional[Rule]:
        """Multi-dimensional binary search for the containing rule."""
        slots = self.slots
        low, high = 0, len(slots)
        order = self.field_order
        while low < high:
            mid = (low + high) // 2
            position = _compare_key(key, slots[mid][0], order)
            if position == 0:
                return slots[mid][0]
            if position < 0:
                high = mid
            else:
                low = mid + 1
        return None

    def rules(self) -> List[Rule]:
        return [rule for slot in self.slots for rule in slot]


class PartitionSortClassifier(Classifier):
    """The PartitionSort classifier with online partitioning."""

    name = "PDR-PS"

    def __init__(self, field_order: Optional[Sequence[int]] = None):
        self._field_order: Tuple[int, ...] = tuple(
            field_order if field_order is not None else range(NUM_FIELDS)
        )
        self._partitions: List[_SortableRuleset] = []
        self._count = 0
        #: rule_id -> stored rule: removals by id locate the rule with
        #: one dict probe, then binary-search only its partition.
        self._by_id: Dict[int, Rule] = {}

    @property
    def num_partitions(self) -> int:
        """Sortable ruleset count — typically far below TSS's tuple
        count for the same rules (the paper's 'fewer partitioned rule
        sets, yielding more consistent performance')."""
        return len(self._partitions)

    def insert(self, rule: Rule) -> None:
        # Try existing partitions, largest first — the original
        # heuristic, which keeps the partition count low.
        for partition in sorted(self._partitions, key=len, reverse=True):
            if partition.try_insert(rule):
                self._count += 1
                self._by_id[rule.rule_id] = rule
                self._resort()
                return
        fresh = _SortableRuleset(self._field_order)
        fresh.try_insert(rule)
        self._partitions.append(fresh)
        self._count += 1
        self._by_id[rule.rule_id] = rule
        self._resort()

    def _resort(self) -> None:
        # Keep partitions in descending max-priority order so lookups
        # can stop early.
        self._partitions.sort(key=lambda p: -p.max_priority)

    def remove(self, rule: Rule) -> bool:
        for partition in self._partitions:
            if partition.remove(rule):
                self._count -= 1
                if len(partition) == 0:
                    self._partitions.remove(partition)
                self._by_id.pop(rule.rule_id, None)
                self._resort()
                return True
        return False

    def remove_by_id(self, rule_id: int) -> bool:
        """Id-indexed removal avoiding the rules() snapshot."""
        rule = self._by_id.get(rule_id)
        if rule is None:
            return False
        return self.remove(rule)

    def lookup(self, key: Sequence[int]) -> Optional[Rule]:
        best: Optional[Rule] = None
        best_priority = -(2**63)
        for partition in self._partitions:
            if partition.max_priority <= best_priority:
                break  # partitions are sorted: nothing better remains
            candidate = partition.lookup(key)
            if candidate is not None and candidate.priority > best_priority:
                best = candidate
                best_priority = candidate.priority
        return best

    def __len__(self) -> int:
        return self._count

    def rules(self) -> List[Rule]:
        return [rule for partition in self._partitions for rule in partition.rules()]
