"""PDR lookup structures: linear list, Tuple Space Search, PartitionSort.

The three classifiers implement one interface
(:class:`~repro.classifier.base.Classifier`) and return identical
results for identical rule sets; they differ only in complexity —
exactly the comparison of the paper's Fig 11.  The
:class:`~repro.classifier.classbench.ClassBenchGenerator` produces the
synthetic PDR sets (20 PDI IEs) used for evaluation.
"""

from .base import Classifier
from .classbench import (
    PROFILE_BEST,
    PROFILE_MIXED,
    PROFILE_WORST,
    ClassBenchGenerator,
)
from .linear import LinearClassifier
from .partition_sort import PartitionSortClassifier
from .rule import (
    NUM_FIELDS,
    PDI_FIELDS,
    FieldSpec,
    PacketKey,
    Rule,
    exact,
    prefix,
    wildcard,
)
from .tss import TupleSpaceClassifier

__all__ = [
    "Classifier",
    "PROFILE_BEST",
    "PROFILE_MIXED",
    "PROFILE_WORST",
    "ClassBenchGenerator",
    "LinearClassifier",
    "PartitionSortClassifier",
    "NUM_FIELDS",
    "PDI_FIELDS",
    "FieldSpec",
    "PacketKey",
    "Rule",
    "exact",
    "prefix",
    "wildcard",
    "TupleSpaceClassifier",
]
