"""repro — a Python reproduction of L25GC (SIGCOMM 2022).

L25GC is a low-latency 5G core built on a shared-memory NFV platform.
This package re-implements the full system as a calibrated
discrete-event simulation plus real-algorithm components (packet
classifiers, TLV/GTP codecs, serialization formats) whose relative
performance is measured directly.

Subpackages
-----------
``repro.sim``         discrete-event simulation engine
``repro.net``         packets, headers, GTP-U
``repro.core``        shared-memory NFV platform and cost model
``repro.sbi``         service-based interface: messages, codecs, transports
``repro.pfcp``        N4 interface: 3GPP TS 29.244 TLV messages
``repro.classifier``  PDR lookup: linear, TSS, PartitionSort, ClassBench
``repro.cp``          control-plane NFs and 3GPP procedures
``repro.up``          user plane: PDR/FAR pipeline, smart buffering
``repro.ran``         UE / gNB simulator (N1/N2)
``repro.resiliency``  replication, packet logger, failover
``repro.deploy``      5GC units, UE-aware LB, canary rollout
``repro.baselines``   free5GC and ONVM-UPF comparison systems
``repro.tcpmodel``    TCP dynamics and page-load-time model
``repro.traffic``     generators and measurement tooling
``repro.experiments`` one module per paper figure/table
"""

__version__ = "1.0.0"
