"""A round-based TCP Reno model over an interruptible path.

Figs 12 and 15-17 of the paper study how control-plane events (handover
buffering, 5GC failure) disturb TCP: inflated RTTs, spurious
retransmission timeouts (Linux min RTO = 200 ms), congestion-window
collapse and goodput dips.  This model reproduces those dynamics:

* slow start / congestion avoidance / ssthresh per RFC 5681;
* a shared bottleneck (:class:`PathModel`) imposing fair-share rate and
  queueing delay;
* *interruptions*: windows during which downlink delivery stalls.
  ``BUFFERED`` interruptions (handover smart buffering) release data at
  the end — if the stall exceeds the RTO the sender *spuriously*
  retransmits and collapses cwnd even though nothing was lost, exactly
  the free5GC pathology of §5.4.1;
  ``DROPPED`` interruptions (3GPP reattach, §5.5) lose the data
  outright, forcing genuine recovery.

The model is round-based (one simulated event per congestion window
flight), which matches the granularity of the paper's cwnd/goodput
plots while remaining fast enough for property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..sim.engine import MS, Environment

__all__ = [
    "InterruptionKind",
    "Interruption",
    "PathModel",
    "TCPConnection",
    "TCPStats",
    "MSS",
    "MIN_RTO",
]

#: Maximum segment size (bytes) — Ethernet MTU minus headers.
MSS = 1448
#: Linux's minimum retransmission timeout.
MIN_RTO = 200 * MS


class InterruptionKind(Enum):
    """What happens to downlink data sent into the interruption."""

    #: Held at the 5GC/gNB and delivered when the window ends.
    BUFFERED = "buffered"
    #: Discarded (3GPP reattach: state lost, packets dropped).
    DROPPED = "dropped"


@dataclass
class Interruption:
    """A delivery stall in [start, end)."""

    start: float
    end: float
    kind: InterruptionKind = InterruptionKind.BUFFERED

    def covers(self, when: float) -> bool:
        return self.start <= when < self.end


@dataclass
class PathModel:
    """The shared bottleneck path between server (DN) and UE.

    Parameters
    ----------
    bandwidth_bps:
        Aggregate bottleneck bandwidth.
    base_rtt:
        Round-trip propagation + forwarding time (no queueing).
    connections:
        Number of TCP connections sharing the bottleneck (fair share).
    queue_capacity_bytes:
        Per-connection share of the bottleneck buffer; in-flight data
        beyond the BDP queues here, adding delay.  Kept shallow
        (~32 KB) so steady-state RTT stays well under the 200 ms
        minimum RTO — with it, a 96 ms handover stall (L25GC) never
        trips the RTO while a 463 ms stall (free5GC) always does,
        matching §5.4.1.
    """

    bandwidth_bps: float = 30e6
    base_rtt: float = 20 * MS
    connections: int = 1
    queue_capacity_bytes: float = 32 * 1024
    interruptions: List[Interruption] = field(default_factory=list)

    def add_interruption(
        self,
        start: float,
        duration: float,
        kind: InterruptionKind = InterruptionKind.BUFFERED,
    ) -> Interruption:
        event = Interruption(start=start, end=start + duration, kind=kind)
        self.interruptions.append(event)
        return event

    @property
    def share_bps(self) -> float:
        """Fair per-connection share of the bottleneck."""
        return self.bandwidth_bps / max(1, self.connections)

    @property
    def bdp_bytes(self) -> float:
        """Per-connection bandwidth-delay product."""
        return self.share_bps * self.base_rtt / 8.0

    def interruption_at(self, when: float) -> Optional[Interruption]:
        for event in self.interruptions:
            if event.covers(when):
                return event
        return None

    def queue_delay(self, flight_bytes: float) -> float:
        """Standing-queue delay for a given in-flight volume."""
        excess = min(
            max(0.0, flight_bytes - self.bdp_bytes),
            self.queue_capacity_bytes,
        )
        return 8.0 * excess / self.share_bps


@dataclass
class TCPStats:
    """Everything the figures need from one connection."""

    bytes_acked: int = 0
    retransmissions: int = 0
    spurious_timeouts: int = 0
    genuine_timeouts: int = 0
    completed_at: Optional[float] = None
    #: (send time, observed RTT) samples.
    rtt_series: List[Tuple[float, float]] = field(default_factory=list)
    #: (time, cwnd bytes) samples.
    cwnd_series: List[Tuple[float, float]] = field(default_factory=list)
    #: (delivery time, bytes delivered) — integrate for goodput.
    delivery_series: List[Tuple[float, int]] = field(default_factory=list)

    def goodput_bps(self, start: float, end: float) -> float:
        """Mean goodput over [start, end)."""
        if end <= start:
            raise ValueError("empty goodput window")
        delivered = sum(
            size for when, size in self.delivery_series if start <= when < end
        )
        return 8.0 * delivered / (end - start)

    def goodput_timeline(self, bucket: float = 0.1) -> List[Tuple[float, float]]:
        """(bucket start, goodput bps) series for the goodput plots."""
        if not self.delivery_series:
            return []
        buckets: dict = {}
        for when, size in self.delivery_series:
            key = int(when / bucket)
            buckets[key] = buckets.get(key, 0) + size
        return [
            (key * bucket, 8.0 * total / bucket)
            for key, total in sorted(buckets.items())
        ]


class TCPConnection:
    """One Reno sender transferring ``total_bytes`` downlink.

    Run it as a process::

        conn = TCPConnection(env, path, total_bytes=15 << 20)
        env.process(conn.run())
        env.run()
        conn.stats.completed_at
    """

    def __init__(
        self,
        env: Environment,
        path: PathModel,
        total_bytes: int,
        start_time: float = 0.0,
        initial_cwnd_segments: int = 10,
    ):
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.env = env
        self.path = path
        self.total_bytes = total_bytes
        self.start_time = start_time
        self.cwnd = float(initial_cwnd_segments * MSS)
        self.ssthresh = float("inf")
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.stats = TCPStats()

    # ------------------------------------------------------------------
    @property
    def rto(self) -> float:
        """RFC 6298 with the Linux 200 ms floor."""
        if self.srtt is None:
            return max(MIN_RTO, 1.0)
        return max(MIN_RTO, self.srtt + 4 * self.rttvar)

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    def _on_timeout(self, flight: float) -> None:
        self.ssthresh = max(2 * MSS, flight / 2)
        self.cwnd = float(MSS)

    def _grow_cwnd(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd *= 2  # slow start: double per RTT round
        else:
            self.cwnd += MSS  # congestion avoidance: +1 MSS per RTT
        # Cap at what path buffering can hold.
        cap = self.path.bdp_bytes + self.path.queue_capacity_bytes
        self.cwnd = min(self.cwnd, cap)

    # ------------------------------------------------------------------
    def run(self):
        """The sender process; one iteration per window flight."""
        env, path, stats = self.env, self.path, self.stats
        if self.start_time > env.now:
            yield env.timeout(self.start_time - env.now)
        remaining = self.total_bytes
        while remaining > 0:
            flight = min(self.cwnd, float(remaining))
            sent_at = env.now
            stats.cwnd_series.append((sent_at, self.cwnd))

            serialization = 8.0 * flight / path.share_bps
            nominal_rtt = path.base_rtt + path.queue_delay(flight)
            # Window-limited rounds last one RTT; rate-limited rounds
            # last the serialization time (ACK clocking pipelines the
            # next window behind the first returning ACK).
            round_time = max(nominal_rtt, serialization)
            arrival = sent_at + path.base_rtt / 2 + serialization / 2

            # Does the flight land inside an interruption?
            interruption = path.interruption_at(arrival)
            if interruption is None:
                ack_at = sent_at + round_time
                lost = False
            elif interruption.kind is InterruptionKind.BUFFERED:
                # Held at the core; delivered when the stall ends.
                ack_at = interruption.end + nominal_rtt / 2
                lost = False
            else:
                ack_at = None
                lost = True

            if lost:
                # Genuine loss: wait out the RTO, then retransmit; the
                # retransmission itself may land in the same stall, so
                # it completes only after the interruption ends.
                timeout_at = sent_at + self.rto
                yield env.timeout(timeout_at - env.now)
                stats.genuine_timeouts += 1
                stats.retransmissions += int(flight // MSS) or 1
                self._on_timeout(flight)
                resume = max(env.now, interruption.end)
                yield env.timeout(resume - env.now)
                continue  # retransmit the same data in the next round

            if interruption is None:
                rtt_observed = nominal_rtt
            else:
                rtt_observed = ack_at - sent_at
            stats.rtt_series.append((sent_at, rtt_observed))

            if rtt_observed > self.rto:
                # Spurious timeout: the data is merely delayed, but the
                # sender cannot know.  It retransmits and collapses
                # cwnd at RTO expiry, then the original ACK arrives.
                timeout_at = sent_at + self.rto
                yield env.timeout(timeout_at - env.now)
                stats.spurious_timeouts += 1
                stats.retransmissions += int(flight // MSS) or 1
                self._on_timeout(flight)
                yield env.timeout(max(0.0, ack_at - env.now))
            else:
                yield env.timeout(max(0.0, ack_at - env.now))
                self._update_rtt(rtt_observed)
                self._grow_cwnd()

            delivered = int(flight)
            stats.bytes_acked += delivered
            stats.delivery_series.append((ack_at - path.base_rtt / 2, delivered))
            remaining -= delivered
        stats.completed_at = env.now
