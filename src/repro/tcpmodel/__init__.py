"""TCP dynamics and the page-load-time model."""

from .tcp import (
    MIN_RTO,
    MSS,
    Interruption,
    InterruptionKind,
    PathModel,
    TCPConnection,
    TCPStats,
)
from .web import PageLoad, PageLoadResult, Resource, default_page

__all__ = [
    "MIN_RTO",
    "MSS",
    "Interruption",
    "InterruptionKind",
    "PathModel",
    "TCPConnection",
    "TCPStats",
    "PageLoad",
    "PageLoadResult",
    "Resource",
    "default_page",
]
