"""Page-load-time model (§5.4.1, Fig 12).

The paper loads a webpage of a few ~15 MB images, JS and CSS over six
parallel Firefox TCP connections through a 30 Mbps / 20 ms-RTT
bottleneck, while handovers interrupt the downlink.  The PLT is the
completion time of the slowest resource.  free5GC's ~463 ms stalls
exceed the 200 ms minimum RTO, causing ~1500 spurious retransmissions
and cwnd collapse; L25GC's ≤96 ms stalls do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim.engine import Environment
from .tcp import PathModel, TCPConnection

__all__ = ["Resource", "PageLoad", "default_page", "PageLoadResult"]


@dataclass
class Resource:
    """One fetchable page resource."""

    name: str
    size_bytes: int


def default_page() -> List[Resource]:
    """The paper's page: HTML, JS/CSS, and six ~15 MB images."""
    page = [
        Resource("index.html", 120 * 1024),
        Resource("app.js", 900 * 1024),
        Resource("style.css", 300 * 1024),
    ]
    page.extend(
        Resource(f"image-{i}.jpg", 15 * 1024 * 1024) for i in range(1, 7)
    )
    return page


@dataclass
class PageLoadResult:
    """PLT plus the TCP pathology counters."""

    plt: float
    spurious_timeouts: int
    retransmissions: int
    bytes_transferred: int
    per_connection: List[float] = field(default_factory=list)


class PageLoad:
    """Fetch a page over N parallel connections through one path.

    Resources are assigned to connections round-robin (Firefox opens
    six connections per origin); each connection fetches its resources
    sequentially, as HTTP/1.1 without pipelining would.
    """

    def __init__(
        self,
        env: Environment,
        path: PathModel,
        resources: Optional[Sequence[Resource]] = None,
        parallel_connections: int = 6,
    ):
        self.env = env
        self.path = path
        self.resources = list(resources or default_page())
        self.parallel_connections = parallel_connections
        path.connections = parallel_connections

    def run(self) -> PageLoadResult:
        """Run the page load to completion; returns the result."""
        env = self.env
        queues: List[List[Resource]] = [
            [] for _ in range(self.parallel_connections)
        ]
        for index, resource in enumerate(self.resources):
            queues[index % self.parallel_connections].append(resource)

        connections: List[TCPConnection] = []
        processes = []
        for queue in queues:
            total = sum(resource.size_bytes for resource in queue)
            if total == 0:
                continue
            connection = TCPConnection(env, self.path, total_bytes=total)
            connections.append(connection)
            processes.append(env.process(connection.run()))
        start = env.now
        env.run()
        completion_times = [
            connection.stats.completed_at
            for connection in connections
            if connection.stats.completed_at is not None
        ]
        if len(completion_times) != len(connections):
            raise RuntimeError("a connection failed to complete")
        return PageLoadResult(
            plt=max(completion_times) - start,
            spurious_timeouts=sum(
                connection.stats.spurious_timeouts
                for connection in connections
            ),
            retransmissions=sum(
                connection.stats.retransmissions for connection in connections
            ),
            bytes_transferred=sum(
                connection.stats.bytes_acked for connection in connections
            ),
            per_connection=[when - start for when in completion_times],
        )
