"""Control-plane message schemas for the Service Based Interface.

These are faithful (if trimmed) Python counterparts of the OpenAPI
datatypes 3GPP specifies for the 5GC SBI (TS 29.502, 29.509, 29.518,
29.507...).  free5GC generates Go structs from the same specifications;
we define dataclasses with ``to_dict``/``from_dict`` so the codecs in
:mod:`repro.sbi.codecs` can serialize genuinely representative payloads.

The message registry maps each message name to its class so transports
can reconstruct typed objects after decoding.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional, Type

__all__ = [
    "SBIMessage",
    "PostSmContextsRequest",
    "PostSmContextsResponse",
    "UpdateSmContextRequest",
    "UpdateSmContextResponse",
    "UEAuthenticationRequest",
    "UEAuthenticationResponse",
    "AuthConfirmationRequest",
    "N1N2MessageTransfer",
    "N1N2MessageTransferResponse",
    "AmPolicyCreateRequest",
    "SmPolicyCreateRequest",
    "SubscriptionDataRequest",
    "SubscriptionDataResponse",
    "NFDiscoveryRequest",
    "NFDiscoveryResponse",
    "MESSAGE_REGISTRY",
    "register_message",
    "sample_messages",
]

MESSAGE_REGISTRY: Dict[str, Type["SBIMessage"]] = {}


def register_message(cls: Type["SBIMessage"]) -> Type["SBIMessage"]:
    """Class decorator adding a message type to the registry."""
    MESSAGE_REGISTRY[cls.__name__] = cls
    return cls


@dataclass(frozen=True)
class SBIMessage:
    """Base class for all SBI messages."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form consumed by the codecs."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SBIMessage":
        """Rebuild a message, ignoring unknown keys (forward compat)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@register_message
@dataclass(frozen=True)
class PostSmContextsRequest(SBIMessage):
    """AMF -> SMF: create an SM context (TS 29.502 SmContextCreateData).

    This is the exact message the paper uses for Fig 6's serialization
    study.
    """

    supi: str = "imsi-208930000000003"
    pei: str = "imeisv-4370816125816151"
    pdu_session_id: int = 1
    dnn: str = "internet"
    s_nssai: Dict[str, Any] = field(
        default_factory=lambda: {"sst": 1, "sd": "010203"}
    )
    serving_nf_id: str = "0ca2dd1c-4b0c-4a29-88ad-6ba40b2f13d1"
    serving_network: Dict[str, str] = field(
        default_factory=lambda: {"mcc": "208", "mnc": "93"}
    )
    guami: Dict[str, Any] = field(
        default_factory=lambda: {
            "plmnId": {"mcc": "208", "mnc": "93"},
            "amfId": "cafe00",
        }
    )
    an_type: str = "3GPP_ACCESS"
    rat_type: str = "NR"
    ue_location: Dict[str, Any] = field(
        default_factory=lambda: {
            "nrLocation": {
                "tai": {"plmnId": {"mcc": "208", "mnc": "93"}, "tac": "000001"},
                "ncgi": {
                    "plmnId": {"mcc": "208", "mnc": "93"},
                    "nrCellId": "000000010",
                },
            }
        }
    )
    ue_time_zone: str = "+08:00"
    sm_context_status_uri: str = (
        "http://amf.5gc.mnc093.mcc208:8000/namf-callback/v1/"
        "smContextStatus/imsi-208930000000003/1"
    )
    n1_sm_msg: str = "2e0101c1ffff91a12801007b000780000a00000d00"
    pcf_id: str = "6a0e1e4e-5f26-4b3b-9b4d-c9e2f1a7b310"


@register_message
@dataclass(frozen=True)
class PostSmContextsResponse(SBIMessage):
    """SMF -> AMF: SM context created."""

    sm_context_ref: str = "urn:uuid:9e1b2c3d-1"
    status: int = 201
    allocated_ue_ip: str = "10.60.0.1"
    n2_sm_info: str = "88000a0f0e0a2e0501"
    n2_sm_info_type: str = "PDU_RES_SETUP_REQ"


@register_message
@dataclass(frozen=True)
class UpdateSmContextRequest(SBIMessage):
    """AMF -> SMF: update an SM context (handover, service request)."""

    sm_context_ref: str = "urn:uuid:9e1b2c3d-1"
    up_cnx_state: str = "ACTIVATING"
    ho_state: Optional[str] = None
    target_id: Optional[Dict[str, Any]] = None
    n2_sm_info: Optional[str] = None
    n2_sm_info_type: Optional[str] = None
    cause: Optional[str] = None
    an_type_can_be_changed: bool = False


@register_message
@dataclass(frozen=True)
class UpdateSmContextResponse(SBIMessage):
    """SMF -> AMF: SM context updated."""

    status: int = 200
    up_cnx_state: str = "ACTIVATED"
    ho_state: Optional[str] = None
    n2_sm_info: Optional[str] = None


@register_message
@dataclass(frozen=True)
class UEAuthenticationRequest(SBIMessage):
    """AMF -> AUSF: initiate 5G-AKA (TS 29.509)."""

    supi_or_suci: str = (
        "suci-0-208-93-0000-0-0-0000000003"
    )
    serving_network_name: str = "5G:mnc093.mcc208.3gppnetwork.org"
    resynchronization_info: Optional[Dict[str, str]] = None


@register_message
@dataclass(frozen=True)
class UEAuthenticationResponse(SBIMessage):
    """AUSF -> AMF: authentication context with the 5G-AKA challenge."""

    auth_type: str = "5G_AKA"
    rand: str = "a2e1f8d90b4c6e1735fa0d2246c8b9e1"
    autn: str = "bb2c61d3f8e0800032f9c04dd7b8a1c5"
    hxres_star: str = "c4a1d0e9b36f2278a5d4e8f1903b7c62"
    auth_ctx_id: str = "authctx-0001"
    links: Dict[str, Any] = field(
        default_factory=lambda: {
            "5g-aka": {
                "href": "http://ausf.5gc.mnc093.mcc208:8000/"
                "nausf-auth/v1/ue-authentications/authctx-0001/5g-aka-confirmation"
            }
        }
    )


@register_message
@dataclass(frozen=True)
class AuthConfirmationRequest(SBIMessage):
    """AMF -> AUSF: RES* confirmation."""

    res_star: str = "d1e2f3a4b5c6d7e8f90a1b2c3d4e5f60"
    auth_ctx_id: str = "authctx-0001"


@register_message
@dataclass(frozen=True)
class N1N2MessageTransfer(SBIMessage):
    """SMF -> AMF: deliver N1 (NAS) / N2 (NGAP) payloads to the RAN.

    Used for paging (DL data notification) and session setup.
    """

    n1_message_container: Optional[Dict[str, str]] = None
    n2_info_container: Dict[str, Any] = field(
        default_factory=lambda: {
            "n2InformationClass": "SM",
            "smInfo": {
                "pduSessionId": 1,
                "n2InfoContent": {
                    "ngapIeType": "PDU_RES_SETUP_REQ",
                    "ngapData": {"contentId": "N2SmInformation"},
                },
            },
        }
    )
    pdu_session_id: int = 1
    skip_ind: bool = False
    last_msg_indication: bool = False


@register_message
@dataclass(frozen=True)
class N1N2MessageTransferResponse(SBIMessage):
    """AMF -> SMF: transfer outcome (may indicate 'attempting to reach UE')."""

    cause: str = "N1_N2_TRANSFER_INITIATED"
    status: int = 200


@register_message
@dataclass(frozen=True)
class AmPolicyCreateRequest(SBIMessage):
    """AMF -> PCF: create the AM policy association (TS 29.507)."""

    notification_uri: str = (
        "http://amf.5gc.mnc093.mcc208:8000/namf-callback/v1/am-policy/1"
    )
    supi: str = "imsi-208930000000003"
    access_type: str = "3GPP_ACCESS"
    pei: str = "imeisv-4370816125816151"
    user_loc: Dict[str, Any] = field(
        default_factory=lambda: {
            "nrLocation": {
                "tai": {"plmnId": {"mcc": "208", "mnc": "93"}, "tac": "000001"}
            }
        }
    )
    rat_type: str = "NR"


@register_message
@dataclass(frozen=True)
class SmPolicyCreateRequest(SBIMessage):
    """SMF -> PCF: create the SM policy association (TS 29.512)."""

    supi: str = "imsi-208930000000003"
    pdu_session_id: int = 1
    dnn: str = "internet"
    pdu_session_type: str = "IPV4"
    notification_uri: str = (
        "http://smf.5gc.mnc093.mcc208:8000/nsmf-callback/v1/sm-policy/1"
    )
    sl_nssai: Dict[str, Any] = field(
        default_factory=lambda: {"sst": 1, "sd": "010203"}
    )
    ipv4_address: str = "10.60.0.1"


@register_message
@dataclass(frozen=True)
class SubscriptionDataRequest(SBIMessage):
    """AMF/SMF -> UDM: fetch subscription data (TS 29.503)."""

    supi: str = "imsi-208930000000003"
    dataset_names: List[str] = field(
        default_factory=lambda: ["AM", "SMF_SEL", "UEC_SMF"]
    )
    plmn_id: Dict[str, str] = field(
        default_factory=lambda: {"mcc": "208", "mnc": "93"}
    )


@register_message
@dataclass(frozen=True)
class SubscriptionDataResponse(SBIMessage):
    """UDM -> AMF/SMF: the subscription profile."""

    am_data: Dict[str, Any] = field(
        default_factory=lambda: {
            "gpsis": ["msisdn-886912345678"],
            "subscribedUeAmbr": {"uplink": "1 Gbps", "downlink": "2 Gbps"},
            "nssai": {
                "defaultSingleNssais": [{"sst": 1, "sd": "010203"}],
            },
        }
    )
    smf_sel_data: Dict[str, Any] = field(
        default_factory=lambda: {
            "subscribedSnssaiInfos": {
                "01010203": {"dnnInfos": [{"dnn": "internet"}]}
            }
        }
    )


@register_message
@dataclass(frozen=True)
class NFDiscoveryRequest(SBIMessage):
    """Any NF -> NRF: discover instances of a target NF type."""

    target_nf_type: str = "SMF"
    requester_nf_type: str = "AMF"
    service_names: List[str] = field(
        default_factory=lambda: ["nsmf-pdusession"]
    )
    snssais: List[Dict[str, Any]] = field(
        default_factory=lambda: [{"sst": 1, "sd": "010203"}]
    )


@register_message
@dataclass(frozen=True)
class NFDiscoveryResponse(SBIMessage):
    """NRF -> requester: matching NF profiles."""

    validity_period: int = 100
    nf_instances: List[Dict[str, Any]] = field(
        default_factory=lambda: [
            {
                "nfInstanceId": "9e1b2c3d-4f5a-6b7c-8d9e-0f1a2b3c4d5e",
                "nfType": "SMF",
                "nfStatus": "REGISTERED",
                "ipv4Addresses": ["127.0.0.2"],
                "nfServices": [
                    {
                        "serviceInstanceId": "nsmf-pdusession",
                        "serviceName": "nsmf-pdusession",
                        "versions": [
                            {"apiVersionInUri": "v1", "apiFullVersion": "1.0.0"}
                        ],
                        "scheme": "http",
                        "ipEndPoints": [
                            {"ipv4Address": "127.0.0.2", "port": 8000}
                        ],
                    }
                ],
            }
        ]
    )


def sample_messages() -> List[SBIMessage]:
    """One default-valued instance of every registered message type.

    Used by the serialization benchmarks (Figs 6 and 9) and by codec
    round-trip property tests.
    """
    return [cls() for cls in MESSAGE_REGISTRY.values()]
