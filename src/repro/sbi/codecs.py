"""Real serialization codecs for SBI messages.

The paper's Fig 6 compares the serialization/deserialization/protocol
cost of exchanging a ``PostSmContextsRequest`` using JSON (free5GC),
Protobuf (Buyakar et al.), FlatBuffers (Neutrino) and L25GC's
shared-memory descriptor passing.  These codecs are genuine
implementations, not cost constants — the benchmarks measure them:

* :class:`JsonCodec` — the stdlib ``json`` round trip.
* :class:`ProtoCodec` — a protobuf-style compact binary format with
  varint-tagged fields and length-delimited submessages.
* :class:`FlatCodec` — a FlatBuffers-style format: encode builds an
  offset table; *decode is O(1)* and field access reads directly from
  the buffer (:class:`FlatView`), which is exactly why FlatBuffers'
  deserialization cost in Fig 6 is near zero.
* :class:`DescriptorCodec` — L25GC: the message object itself is the
  shared-memory payload; encode/decode pass a reference.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from .messages import MESSAGE_REGISTRY, SBIMessage

__all__ = [
    "Codec",
    "JsonCodec",
    "ProtoCodec",
    "FlatCodec",
    "FlatView",
    "DescriptorCodec",
    "all_codecs",
]


class Codec:
    """Interface: ``encode`` a message, ``decode`` it back."""

    name = "abstract"

    def encode(self, message: SBIMessage) -> Any:
        raise NotImplementedError

    def decode(self, data: Any) -> Any:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# JSON (free5GC's REST bodies)
# ---------------------------------------------------------------------------
class JsonCodec(Codec):
    """UTF-8 JSON with a type-name envelope, as REST/OpenAPI would."""

    name = "json"

    def encode(self, message: SBIMessage) -> bytes:
        envelope = {"@type": message.name, "body": message.to_dict()}
        return json.dumps(envelope, separators=(",", ":")).encode("utf-8")

    def decode(self, data: bytes) -> SBIMessage:
        envelope = json.loads(data.decode("utf-8"))
        cls = MESSAGE_REGISTRY[envelope["@type"]]
        return cls.from_dict(envelope["body"])


# ---------------------------------------------------------------------------
# Protobuf-style compact binary
# ---------------------------------------------------------------------------
_WT_VARINT = 0
_WT_LEN = 2
_WT_F64 = 1

_T_NONE = 0
_T_BOOL_FALSE = 1
_T_BOOL_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_LIST = 6
_T_DICT = 7
_T_BYTES = 8


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        # zigzag for negatives
        value = (-value << 1) | 1
    else:
        value = value << 1
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    result = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    if result & 1:
        return -(result >> 1), pos
    return result >> 1, pos


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_BOOL_TRUE)
    elif value is False:
        out.append(_T_BOOL_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_varint(out, value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack("!d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _write_varint(out, len(value))
        out.extend(value)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            raw = str(key).encode("utf-8")
            _write_varint(out, len(raw))
            out.extend(raw)
            _encode_value(out, item)
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")


def _decode_value(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_BOOL_TRUE:
        return True, pos
    if tag == _T_BOOL_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_varint(data, pos)
    if tag == _T_FLOAT:
        return struct.unpack("!d", data[pos : pos + 8])[0], pos + 8
    if tag == _T_STR:
        length, pos = _read_varint(data, pos)
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == _T_BYTES:
        length, pos = _read_varint(data, pos)
        return bytes(data[pos : pos + length]), pos + length
    if tag == _T_LIST:
        count, pos = _read_varint(data, pos)
        items: List[Any] = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        count, pos = _read_varint(data, pos)
        result: Dict[str, Any] = {}
        for _ in range(count):
            klen, pos = _read_varint(data, pos)
            key = data[pos : pos + klen].decode("utf-8")
            pos += klen
            value, pos = _decode_value(data, pos)
            result[key] = value
        return result, pos
    raise ValueError(f"unknown type tag: {tag}")


class ProtoCodec(Codec):
    """A protobuf-like length-delimited binary format.

    Roughly 2-3x smaller and several times faster than JSON for the
    SBI message shapes, matching the relative ordering in Fig 6.
    """

    name = "protobuf"

    def encode(self, message: SBIMessage) -> bytes:
        out = bytearray()
        name = message.name.encode("utf-8")
        _write_varint(out, len(name))
        out.extend(name)
        _encode_value(out, message.to_dict())
        return bytes(out)

    def decode(self, data: bytes) -> SBIMessage:
        name_len, pos = _read_varint(data, 0)
        name = data[pos : pos + name_len].decode("utf-8")
        pos += name_len
        body, _ = _decode_value(data, pos)
        return MESSAGE_REGISTRY[name].from_dict(body)


# ---------------------------------------------------------------------------
# FlatBuffers-style zero-parse format
# ---------------------------------------------------------------------------
class FlatView:
    """Lazy field access over a flat-encoded buffer.

    Construction (the 'deserialization' step) only reads the 8-byte
    header — O(1) regardless of message size.  Individual fields decode
    on demand, and the vtable itself parses lazily on first access.
    """

    __slots__ = ("_data", "_vtable_offset", "_vtable", "_type_name")

    def __init__(self, data: bytes):
        if len(data) < 8:
            raise ValueError("truncated flat buffer")
        (self._vtable_offset,) = struct.unpack_from("!I", data, 0)
        self._data = data
        self._vtable: Optional[Dict[str, int]] = None
        self._type_name: Optional[str] = None

    def _load_vtable(self) -> Dict[str, int]:
        if self._vtable is None:
            pos = self._vtable_offset
            data = self._data
            (name_len,) = struct.unpack_from("!H", data, pos)
            pos += 2
            self._type_name = data[pos : pos + name_len].decode("utf-8")
            pos += name_len
            (count,) = struct.unpack_from("!H", data, pos)
            pos += 2
            table: Dict[str, int] = {}
            for _ in range(count):
                (klen,) = struct.unpack_from("!H", data, pos)
                pos += 2
                key = data[pos : pos + klen].decode("utf-8")
                pos += klen
                (offset,) = struct.unpack_from("!I", data, pos)
                pos += 4
                table[key] = offset
            self._vtable = table
        return self._vtable

    @property
    def type_name(self) -> str:
        self._load_vtable()
        assert self._type_name is not None
        return self._type_name

    def keys(self) -> List[str]:
        return list(self._load_vtable().keys())

    def __contains__(self, key: str) -> bool:
        return key in self._load_vtable()

    def __getitem__(self, key: str) -> Any:
        offset = self._load_vtable()[key]
        value, _ = _decode_value(self._data, offset)
        return value

    def get(self, key: str, default: Any = None) -> Any:
        if key in self:
            return self[key]
        return default

    def to_message(self) -> SBIMessage:
        """Fully materialize the typed message (eager path)."""
        body = {key: self[key] for key in self.keys()}
        return MESSAGE_REGISTRY[self.type_name].from_dict(body)


class FlatCodec(Codec):
    """FlatBuffers-style encoding: offset table + in-place values."""

    name = "flatbuffers"

    def encode(self, message: SBIMessage) -> bytes:
        body = message.to_dict()
        out = bytearray(b"\x00" * 8)  # header: vtable offset + reserved
        offsets: Dict[str, int] = {}
        for key, value in body.items():
            offsets[key] = len(out)
            _encode_value(out, value)
        vtable_offset = len(out)
        name = message.name.encode("utf-8")
        out.extend(struct.pack("!H", len(name)))
        out.extend(name)
        out.extend(struct.pack("!H", len(offsets)))
        for key, offset in offsets.items():
            raw = key.encode("utf-8")
            out.extend(struct.pack("!H", len(raw)))
            out.extend(raw)
            out.extend(struct.pack("!I", offset))
        struct.pack_into("!I", out, 0, vtable_offset)
        return bytes(out)

    def decode(self, data: bytes) -> FlatView:
        return FlatView(data)


# ---------------------------------------------------------------------------
# Shared-memory descriptor passing (L25GC)
# ---------------------------------------------------------------------------
class DescriptorCodec(Codec):
    """L25GC's approach: no serialization at all.

    The message lives in the shared hugepage pool; NFs exchange a
    descriptor pointing at it.  ``encode``/``decode`` are identity
    functions — the benchmark measures exactly that.
    """

    name = "shm-descriptor"

    def encode(self, message: SBIMessage) -> SBIMessage:
        return message

    def decode(self, data: SBIMessage) -> SBIMessage:
        return data


def all_codecs() -> List[Codec]:
    """The four codecs of Fig 6, in the paper's order."""
    return [JsonCodec(), ProtoCodec(), FlatCodec(), DescriptorCodec()]
