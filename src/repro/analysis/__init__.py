"""Static and dynamic correctness analysis for the reproduction.

Two coordinated halves guard the shared-memory core:

* :mod:`repro.analysis.lint` — a project-specific AST lint pass
  (``python -m repro.analysis.lint src tests``) enforcing determinism
  invariants: no wall-clock time or unseeded randomness in simulation
  code, no blocking sleeps, frozen message dataclasses, no float
  equality against ``env.now``, no mutable default arguments.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime descriptor
  sanitizer wired into :class:`~repro.core.transport.MessageBus` and
  :class:`~repro.core.rings.Ring` that stamps each descriptor with an
  owner and content fingerprint and flags mutate-after-send,
  double-enqueue, use-after-dequeue, and (at teardown) leaked
  descriptors with the offending send site.
* :mod:`repro.analysis.races` — an opt-in shared-state race detector
  enforcing the single-writer ownership model of the UPF-C/UPF-U
  split (§3.2): registered structures (session table, rule maps, flow
  cache, smart buffers, replica checkpoints) declare an owner role
  and every access is checked for cross-role same-instant conflicts,
  non-owner writes, and rule mutations missing a ``RuleEpoch.bump()``.
  Its static half lives in :mod:`repro.analysis.rules` as R008/R009.
* :mod:`repro.analysis.dataflow` — a worklist-based typestate engine
  (``python -m repro.analysis.dataflow src/repro``) that statically
  verifies the descriptor, session, and resource lifecycles the
  sanitizer checks at run time: mutate-after-send / double-enqueue on
  every path (W005), session/rule lifecycle ordering and dangling FAR
  references (W006), resources leaked on raising paths (W007), and
  dead configuration nothing observes (W008).  The state names and
  violation kinds it cites come from :mod:`repro.analysis.lifecycle`,
  shared verbatim with the sanitizer.

``python -m repro.analysis all`` runs lint + program + dataflow in one
command against the committed baselines.  Every analyzer CLI exits 0
when clean, 1 on findings, and 2 on a stale baseline or budget.

Every perf or scale PR is expected to keep all three static gates
clean against the committed baselines and the tier-1 suite green under
both ``pytest --sanitize`` and ``pytest --race``.
"""

from __future__ import annotations

__all__ = [
    "dataflow",
    "lifecycle",
    "lint",
    "races",
    "report",
    "rules",
    "sanitizer",
]
