"""Static and dynamic correctness analysis for the reproduction.

Two coordinated halves guard the shared-memory core:

* :mod:`repro.analysis.lint` — a project-specific AST lint pass
  (``python -m repro.analysis.lint src tests``) enforcing determinism
  invariants: no wall-clock time or unseeded randomness in simulation
  code, no blocking sleeps, frozen message dataclasses, no float
  equality against ``env.now``, no mutable default arguments.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime descriptor
  sanitizer wired into :class:`~repro.core.transport.MessageBus` and
  :class:`~repro.core.rings.Ring` that stamps each descriptor with an
  owner and content fingerprint and flags mutate-after-send,
  double-enqueue, and use-after-dequeue violations with the offending
  send site.

Every perf or scale PR is expected to keep ``lint`` clean and the
tier-1 suite green under ``pytest --sanitize``.
"""

from __future__ import annotations

__all__ = ["lint", "rules", "sanitizer"]
