"""Runtime descriptor sanitizer for the zero-copy shared-memory core.

The L25GC transports never copy: :class:`~repro.core.transport.MessageBus`
passes live message references and :class:`~repro.core.rings.Ring`
passes descriptor pointers.  That is the whole performance story — and
a hazard class the kernel used to absorb: a writer that keeps mutating
an object *after* handing it over corrupts the reader silently, and an
object enqueued twice aliases two owners.

When enabled (it is off by default and costs nothing on the hot path
beyond one ``is None`` check), the sanitizer stamps every handed-over
object with its current owner and a content fingerprint, then checks:

* **mutate-after-send** — the fingerprint at delivery/dequeue differs
  from the one at send/enqueue.  The report names the offending send
  site and a field-level diff.
* **double-enqueue** — an object is sent/enqueued again while still in
  flight, aliasing two owners.
* **use-after-dequeue** — an object surfaces from a ring after another
  consumer already took ownership (the downstream symptom of a
  double-enqueue).
* **leaked descriptors** — at teardown, :meth:`~DescriptorSanitizer.leaks`
  lists every object still in flight or sitting in a ring: enqueued but
  never dequeued/delivered, i.e. a descriptor the platform lost track
  of.  Each leak carries the send site that originated it.

Usage::

    from repro.analysis import sanitizer

    with sanitizer.sanitized() as san:
        run_simulation()
    assert not san.violations, san.report()

or run the whole test suite under it: ``pytest --sanitize``.
"""

from __future__ import annotations

import enum
import sys
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

# Violation kinds and ownership-state names are the shared lifecycle
# vocabulary: the static typestate checks (repro.analysis.dataflow,
# W005) cite the same strings, so static and dynamic reports correlate.
from .lifecycle import (
    DOUBLE_ENQUEUE,
    MUTATE_AFTER_SEND,
    TRANSPORT_CHECKED_OUT,
    TRANSPORT_IN_FLIGHT,
    TRANSPORT_IN_RING,
    USE_AFTER_DEQUEUE,
)

__all__ = [
    "SanitizerError",
    "Violation",
    "Leak",
    "DescriptorSanitizer",
    "enable",
    "disable",
    "active",
    "sanitized",
]

#: Maximum recursion depth for content fingerprints; beyond it the
#: structure is summarized, which can only cause false negatives.
_MAX_DEPTH = 10

#: Types exempt from tracking: they cannot be mutated, and CPython
#: interns/caches many of them, so identity-based ownership tracking
#: would report spurious aliasing (e.g. the int 2 enqueued twice).
_UNTRACKED_TYPES = (
    type(None),
    bool,
    int,
    float,
    complex,
    str,
    bytes,
    tuple,
    frozenset,
)


class SanitizerError(AssertionError):
    """Raised in strict mode the moment a violation is detected."""


class _State(enum.Enum):
    IN_FLIGHT = TRANSPORT_IN_FLIGHT  # handed to a MessageBus, not yet delivered
    IN_RING = TRANSPORT_IN_RING  # sitting in a descriptor ring
    CHECKED_OUT = TRANSPORT_CHECKED_OUT  # dequeued; consumer owns it


@dataclass
class Violation:
    """One detected ownership/aliasing violation."""

    kind: str  # "mutate-after-send" | "double-enqueue" | "use-after-dequeue"
    obj_repr: str
    channel: str  # bus destination or ring name of the original handoff
    send_site: str  # file:line of the original send/enqueue
    detect_site: str  # file:line where the violation surfaced
    diff: List[Tuple[str, str, str]]  # (field path, before, after)
    detail: str = ""

    def report(self) -> str:
        lines = [
            f"{self.kind}: {self.obj_repr}",
            f"  handed over at {self.send_site} (via {self.channel})",
            f"  detected at    {self.detect_site}",
        ]
        if self.detail:
            lines.append(f"  {self.detail}")
        for path, before, after in self.diff:
            lines.append(f"  field {path}: {before} -> {after}")
        return "\n".join(lines)


@dataclass
class Leak:
    """A descriptor still owned by a transport at teardown.

    The object was handed over (``in-flight`` on a bus, or ``in-ring``)
    and never delivered, dequeued, dropped, or released — on the real
    platform this is a leaked mbuf that eventually exhausts the pool.
    """

    obj_repr: str
    state: str  # "in-flight" | "in-ring"
    channel: str  # bus destination / ring name holding the object
    send_site: str  # file:line of the send/enqueue that leaked it

    def report(self) -> str:
        return (
            f"leaked descriptor ({self.state}): {self.obj_repr}\n"
            f"  handed over at {self.send_site} (via {self.channel}), "
            "never dequeued or delivered"
        )


@dataclass
class _Entry:
    obj: Any
    state: _State
    channel: str
    site: str
    snapshot: Any


# ---------------------------------------------------------------------------
# Content fingerprinting
# ---------------------------------------------------------------------------
def _canon(obj: Any, depth: int = 0) -> Any:
    """A deep, immutable canonical form of ``obj`` for comparison.

    Dataclasses contribute their compare-relevant fields; containers
    recurse; unknown objects contribute only their identity, so
    mutations inside them go unflagged rather than causing spurious
    reports.
    """
    if depth > _MAX_DEPTH:
        return "<max-depth>"
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, enum.Enum):
        return f"<enum {type(obj).__name__}.{obj.name}>"
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            "<dc>",
            type(obj).__name__,
            tuple(
                (f.name, _canon(getattr(obj, f.name), depth + 1))
                for f in dataclass_fields(obj)
                if f.compare
            ),
        )
    if isinstance(obj, dict):
        return (
            "<dict>",
            tuple(
                (repr(k), _canon(v, depth + 1))
                for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
            ),
        )
    if isinstance(obj, (list, tuple)):
        return ("<seq>", tuple(_canon(v, depth + 1) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("<set>", tuple(sorted(repr(v) for v in obj)))
    return f"<{type(obj).__name__}#{id(obj):x}>"


def _diff(before: Any, after: Any, path: str = "") -> List[Tuple[str, str, str]]:
    """Field-level differences between two canonical forms."""
    if before == after:
        return []
    if (
        isinstance(before, tuple)
        and isinstance(after, tuple)
        and before[:1] == after[:1]
        and before
        and before[0] in ("<dc>", "<dict>", "<seq>", "<set>")
    ):
        tag = before[0]
        if tag == "<dc>" and before[1] == after[1]:
            out: List[Tuple[str, str, str]] = []
            b_fields, a_fields = dict(before[2]), dict(after[2])
            for name in b_fields:
                sub = f"{path}.{name}" if path else name
                out.extend(_diff(b_fields[name], a_fields.get(name), sub))
            return out
        if tag == "<dict>":
            out = []
            b_items, a_items = dict(before[1]), dict(after[1])
            for key in sorted(set(b_items) | set(a_items)):
                sub = f"{path}[{key}]" if path else f"[{key}]"
                if b_items.get(key) != a_items.get(key):
                    out.extend(
                        _diff(b_items.get(key), a_items.get(key), sub)
                    )
            return out
        if tag == "<seq>" and len(before[1]) == len(after[1]):
            out = []
            for index, (b, a) in enumerate(zip(before[1], after[1])):
                sub = f"{path}[{index}]" if path else f"[{index}]"
                out.extend(_diff(b, a, sub))
            return out
    return [(path or "<value>", _short(before), _short(after))]


def _short(value: Any, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


#: Basenames of the instrumented core modules, skipped when walking the
#: stack for the user-level call site.  Matched on the exact basename so
#: that e.g. ``test_analysis_sanitizer.py`` is not skipped too.
_SKIP_FILES = frozenset({"sanitizer.py", "transport.py", "rings.py"})


def _call_site() -> str:
    """``file:line`` of the nearest frame outside the instrumented core."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename.rpartition("/")[2] not in _SKIP_FILES:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


# ---------------------------------------------------------------------------
# The sanitizer
# ---------------------------------------------------------------------------
class DescriptorSanitizer:
    """Tracks ownership and content of zero-copy handoffs.

    Parameters
    ----------
    strict:
        When True, raise :class:`SanitizerError` at the moment a
        violation is detected instead of only recording it.
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: List[Violation] = []
        self._tracked: Dict[int, _Entry] = {}
        self.handoffs = 0

    # -- reporting -------------------------------------------------------
    def report(self) -> str:
        if not self.violations:
            return "descriptor sanitizer: no violations"
        blocks = [v.report() for v in self.violations]
        header = (
            f"descriptor sanitizer: {len(self.violations)} violation(s)\n"
        )
        return header + "\n\n".join(blocks)

    def reset(self) -> None:
        self.violations.clear()
        self._tracked.clear()
        self.handoffs = 0

    def _record(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation.report())

    # -- MessageBus hooks ------------------------------------------------
    def on_send(self, source: str, destination: str, message: Any) -> None:
        """A message was handed to the bus; the sender loses ownership."""
        if isinstance(message, _UNTRACKED_TYPES):
            return
        self.handoffs += 1
        entry = self._tracked.get(id(message))
        site = _call_site()
        if entry is not None and entry.state is _State.IN_FLIGHT:
            self._record(
                Violation(
                    kind=DOUBLE_ENQUEUE,
                    obj_repr=_short(message),
                    channel=entry.channel,
                    send_site=entry.site,
                    detect_site=site,
                    diff=[],
                    detail=(
                        f"message re-sent ({source} -> {destination}) while "
                        "still in flight; two receivers now alias one object"
                    ),
                )
            )
            return
        self._tracked[id(message)] = _Entry(
            obj=message,
            state=_State.IN_FLIGHT,
            channel=f"{source} -> {destination}",
            site=site,
            snapshot=_canon(message),
        )

    def on_deliver(self, destination: str, message: Any) -> None:
        """The bus is about to invoke the receiver's handler."""
        entry = self._tracked.pop(id(message), None)
        if entry is None or entry.state is not _State.IN_FLIGHT:
            return
        current = _canon(message)
        if current != entry.snapshot:
            self._record(
                Violation(
                    kind=MUTATE_AFTER_SEND,
                    obj_repr=_short(message),
                    channel=entry.channel,
                    send_site=entry.site,
                    detect_site=_call_site(),
                    diff=_diff(entry.snapshot, current),
                    detail=(
                        f"content changed between send and delivery to "
                        f"{destination!r}; the sender kept writing through "
                        "its reference"
                    ),
                )
            )

    def on_drop(self, message: Any) -> None:
        """The bus dropped the message (dead endpoint); stop tracking."""
        self._tracked.pop(id(message), None)

    # -- Ring hooks ------------------------------------------------------
    def on_enqueue(self, ring_name: str, descriptor: Any) -> None:
        if isinstance(descriptor, _UNTRACKED_TYPES):
            return
        self.handoffs += 1
        entry = self._tracked.get(id(descriptor))
        site = _call_site()
        if entry is not None and entry.state is _State.IN_RING:
            self._record(
                Violation(
                    kind=DOUBLE_ENQUEUE,
                    obj_repr=_short(descriptor),
                    channel=entry.channel,
                    send_site=entry.site,
                    detect_site=site,
                    diff=[],
                    detail=(
                        f"descriptor enqueued on {ring_name!r} while still "
                        f"queued on {entry.channel!r}; two consumers now "
                        "alias one descriptor"
                    ),
                )
            )
            return
        self._tracked[id(descriptor)] = _Entry(
            obj=descriptor,
            state=_State.IN_RING,
            channel=ring_name,
            site=site,
            snapshot=_canon(descriptor),
        )

    def on_dequeue(self, ring_name: str, descriptor: Any) -> None:
        if isinstance(descriptor, _UNTRACKED_TYPES):
            return
        entry = self._tracked.get(id(descriptor))
        if entry is None:
            return  # enqueued before the sanitizer was enabled
        site = _call_site()
        if entry.state is _State.CHECKED_OUT:
            self._record(
                Violation(
                    kind=USE_AFTER_DEQUEUE,
                    obj_repr=_short(descriptor),
                    channel=ring_name,
                    send_site=entry.site,
                    detect_site=site,
                    diff=[],
                    detail=(
                        "descriptor surfaced from a ring after ownership "
                        f"already moved to the consumer at {entry.site}; "
                        "a stale alias is circulating"
                    ),
                )
            )
            return
        if entry.state is _State.IN_RING:
            current = _canon(descriptor)
            if current != entry.snapshot:
                self._record(
                    Violation(
                        kind=MUTATE_AFTER_SEND,
                        obj_repr=_short(descriptor),
                        channel=entry.channel,
                        send_site=entry.site,
                        detect_site=site,
                        diff=_diff(entry.snapshot, current),
                        detail=(
                            "content changed while queued on "
                            f"{entry.channel!r}; the producer kept writing "
                            "through its reference"
                        ),
                    )
                )
        entry.state = _State.CHECKED_OUT
        entry.site = site
        entry.snapshot = None

    def on_clear(self, ring_name: str, descriptors: Iterable[Any]) -> None:
        """A ring dropped its contents; the descriptors become free."""
        for descriptor in descriptors:
            self._tracked.pop(id(descriptor), None)

    def release(self, descriptor: Any) -> None:
        """Explicitly mark a descriptor free (e.g. returned to a pool)."""
        self._tracked.pop(id(descriptor), None)

    # -- teardown --------------------------------------------------------
    def leaks(self) -> List[Leak]:
        """Descriptors still owned by a transport: enqueued or sent but
        never dequeued/delivered.  Checked-out objects are the
        consumer's responsibility and are not leaks."""
        out: List[Leak] = []
        for entry in self._tracked.values():
            if entry.state in (_State.IN_FLIGHT, _State.IN_RING):
                out.append(
                    Leak(
                        obj_repr=_short(entry.obj),
                        state=entry.state.value,
                        channel=entry.channel,
                        send_site=entry.site,
                    )
                )
        return out

    def leak_report(self) -> str:
        leaks = self.leaks()
        if not leaks:
            return "descriptor sanitizer: no leaked descriptors"
        header = f"descriptor sanitizer: {len(leaks)} leaked descriptor(s)\n"
        return header + "\n\n".join(leak.report() for leak in leaks)


# ---------------------------------------------------------------------------
# Global opt-in switch — the transports check ``active()`` on each handoff.
# ---------------------------------------------------------------------------
_ACTIVE: Optional[DescriptorSanitizer] = None


def enable(strict: bool = False) -> DescriptorSanitizer:
    """Install a fresh sanitizer as the process-wide active instance."""
    global _ACTIVE
    _ACTIVE = DescriptorSanitizer(strict=strict)
    return _ACTIVE


def disable() -> None:
    """Deactivate the sanitizer (tracking state is discarded)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[DescriptorSanitizer]:
    """The currently installed sanitizer, or None when disabled."""
    return _ACTIVE


@contextmanager
def sanitized(strict: bool = False) -> Iterator[DescriptorSanitizer]:
    """Run a block under a fresh sanitizer, restoring the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    san = DescriptorSanitizer(strict=strict)
    _ACTIVE = san
    try:
        yield san
    finally:
        _ACTIVE = previous
