"""``python -m repro.analysis`` umbrella entry point.

``python -m repro.analysis all`` runs every static analyzer in this
package against its committed defaults, in order:

1. ``lint``      — file-local determinism rules (R001+) over
   ``src``/``tests``, baseline ``analysis-baseline.json``
2. ``program``   — whole-program W001–W004 over ``src/repro``
   (budget/baseline auto-picked from the working directory)
3. ``dataflow``  — typestate W005–W008 over ``src/repro``
   (baseline auto-picked from the working directory)

With ``--json`` the three reports are merged into one document keyed
by stage.  The exit code is the *worst* stage outcome under the shared
convention: 2 if any stage saw a stale baseline/budget, else 1 if any
stage has findings, else 0.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
from contextlib import redirect_stdout
from typing import Optional, Sequence

from .dataflow.cli import main as dataflow_main
from .lint import main as lint_main
from .program.cli import main as program_main
from .report import EXIT_CLEAN, EXIT_FINDINGS, EXIT_STALE

#: (stage, runner, default paths, explicit baseline file or None when
#: the stage auto-discovers its own default baseline).
STAGES = (
    ("lint", lint_main, ["src", "tests"], "analysis-baseline.json"),
    ("program", program_main, ["src/repro"], None),
    ("dataflow", dataflow_main, ["src/repro"], None),
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Run every static analyzer (lint + program + dataflow) "
            "against the committed baselines."
        ),
    )
    parser.add_argument("command", choices=("all",))
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--format", choices=("text", "github"), default="text"
    )
    args = parser.parse_args(argv)

    exits = {}
    merged = {}
    for name, run, paths, baseline in STAGES:
        stage_argv = list(paths)
        if baseline and os.path.exists(baseline):
            stage_argv += ["--baseline", baseline]
        if args.as_json:
            stage_argv.append("--json")
            buffer = io.StringIO()
            with redirect_stdout(buffer):
                code = run(stage_argv)
            try:
                merged[name] = json.loads(buffer.getvalue())
            except ValueError:
                merged[name] = {"raw": buffer.getvalue()}
        else:
            stage_argv += ["--format", args.format]
            print(f"== {name} ==")
            code = run(stage_argv)
        exits[name] = code

    if args.as_json:
        print(json.dumps({"stages": merged, "exit_codes": exits}, indent=2))

    if any(code == EXIT_STALE for code in exits.values()):
        return EXIT_STALE
    if any(code == EXIT_FINDINGS for code in exits.values()):
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
