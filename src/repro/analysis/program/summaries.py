"""Per-function CFG summaries for the semantic checks.

For every function the analysis records:

* **allocation sites** — object construction, dict/list/set/tuple/str
  building, comprehensions, generator creation: the costs W001 budgets
  on the per-packet path;
* **rule-container mutations** and **epoch bumps**, fed through a
  path-sensitive walk (below) so W002 can tell "mutated then bumped on
  every path" from "bumped only on the happy path";
* **yield points**, for W003's atomic-section check.

The W002 walk is a small abstract interpretation over the statement
structure: the state is the set of not-yet-published mutations; ``if``
joins branches by union (pending on *some* path is pending), loops are
approximated by zero-or-one iterations, a ``bump()`` (direct, or a call
to a function that bumps on all its paths) discharges everything, and a
``yield`` is an event-loop boundary where pending mutations become
violations.  Function summaries propagate through the call graph to a
fixpoint, so a mutation in a helper three frames down is charged to the
public operation that fails to publish it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..rules import _MUTATING_METHODS
from .callgraph import CallGraph
from .symbols import FunctionInfo, SymbolTable, _dotted_name

__all__ = [
    "AllocationSite",
    "MutationSite",
    "FunctionSummary",
    "summarize",
    "EpochFlow",
    "analyze_epoch_flow",
]

#: Rule containers whose mutation must be published with an epoch bump
#: (same set as the file-local R009 rule).
RULE_ATTRS = frozenset({
    "pdrs", "fars", "qers", "qer_enforcers", "usage_counters",
})

#: Shared structures tracked for read/write summaries (superset used by
#: the R008 ownership rule).
SHARED_ATTRS = RULE_ATTRS | frozenset({
    "report_pending", "_by_seid",
    # Hot-store slab internals (replaced the dual _by_teid/_by_ue_ip
    # object dicts): same single-writer discipline, UPF-C membership
    # writes only.
    "_teid_index", "_ue_ip_index", "_slab", "_free",
})


@dataclass(frozen=True)
class AllocationSite:
    """One statically visible allocation in a function body."""

    lineno: int
    kind: str  # "list-display", "object-construction", ...
    detail: str = ""


@dataclass(frozen=True)
class MutationSite:
    """One rule-container mutation (function, attr, line)."""

    qualname: str
    attr: str
    lineno: int

    def label(self) -> str:
        return f"{self.qualname}:{self.lineno} (.{self.attr})"


@dataclass
class FunctionSummary:
    """Everything the W-checks need to know about one function."""

    qualname: str
    allocations: List[AllocationSite] = field(default_factory=list)
    yields: List[int] = field(default_factory=list)  # line numbers
    shared_reads: Set[str] = field(default_factory=set)
    shared_writes: Set[str] = field(default_factory=set)
    rule_mutations: List[MutationSite] = field(default_factory=list)
    has_direct_bump: bool = False


def _own_nodes(func_node: ast.AST):
    """Nodes of the function body, excluding nested function bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_bump_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "bump"
    )


_DISPLAY_KINDS = (
    (ast.List, "list-display"),
    (ast.Dict, "dict-display"),
    (ast.Set, "set-display"),
    (ast.ListComp, "list-comprehension"),
    (ast.SetComp, "set-comprehension"),
    (ast.DictComp, "dict-comprehension"),
    (ast.GeneratorExp, "generator-expression"),
    (ast.JoinedStr, "f-string"),
    (ast.Lambda, "closure"),
)

_CONSTRUCTOR_BUILTINS = frozenset(
    {"list", "dict", "set", "bytearray", "frozenset"}
)


def _collect_allocations(
    table: SymbolTable, func: FunctionInfo
) -> List[AllocationSite]:
    sites: List[AllocationSite] = []
    swap_values: Set[int] = set()
    for node in _own_nodes(func.node):
        # ``a, b = x, y`` compiles to register moves, not a tuple build.
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Tuple
        ) and any(isinstance(t, ast.Tuple) for t in node.targets):
            swap_values.add(id(node.value))
    for node in _own_nodes(func.node):
        for node_type, kind in _DISPLAY_KINDS:
            if isinstance(node, node_type):
                sites.append(AllocationSite(node.lineno, kind))
                break
        else:
            if isinstance(node, ast.Tuple) and isinstance(
                node.ctx, ast.Load
            ):
                if node.elts and id(node) not in swap_values:
                    sites.append(
                        AllocationSite(node.lineno, "tuple-display")
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted in _CONSTRUCTOR_BUILTINS:
                    sites.append(
                        AllocationSite(
                            node.lineno, "container-constructor", dotted
                        )
                    )
                    continue
                resolved = table.resolve_dotted(func.module, dotted)
                if resolved in table.classes:
                    sites.append(
                        AllocationSite(
                            node.lineno,
                            "object-construction",
                            resolved.split(".")[-1],
                        )
                    )
                elif resolved in table.functions and table.functions[
                    resolved
                ].is_generator:
                    sites.append(
                        AllocationSite(
                            node.lineno,
                            "generator-creation",
                            resolved.split(".")[-1],
                        )
                    )
    sites.sort(key=lambda site: site.lineno)
    return sites


def _attr_mutations_in(
    node: ast.AST, attrs: FrozenSet[str]
) -> List[Tuple[int, str]]:
    """(lineno, attr) for in-place mutations of named attributes inside
    one statement (mirrors the file-local rule machinery)."""
    found: List[Tuple[int, str]] = []
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = (
                child.targets
                if isinstance(child, ast.Assign)
                else [child.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr in attrs:
                    found.append((child.lineno, target.attr))
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ) and target.value.attr in attrs:
                    found.append((child.lineno, target.value.attr))
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ) and target.value.attr in attrs:
                    found.append((child.lineno, target.value.attr))
        elif isinstance(child, ast.Call):
            callee = child.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _MUTATING_METHODS
                and isinstance(callee.value, ast.Attribute)
                and callee.value.attr in attrs
            ):
                found.append((child.lineno, callee.value.attr))
    return found


def summarize(
    table: SymbolTable,
) -> Dict[str, FunctionSummary]:
    """One pass building the flat (path-insensitive) facts."""
    summaries: Dict[str, FunctionSummary] = {}
    for qualname, func in table.functions.items():
        summary = FunctionSummary(qualname=qualname)
        summary.allocations = _collect_allocations(table, func)
        for node in _own_nodes(func.node):
            if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                summary.yields.append(node.lineno)
            elif _is_bump_call(node):
                summary.has_direct_bump = True
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ) and node.attr in SHARED_ATTRS:
                summary.shared_reads.add(node.attr)
        for lineno, attr in _attr_mutations_in(func.node, SHARED_ATTRS):
            summary.shared_writes.add(attr)
            if attr in RULE_ATTRS:
                summary.rule_mutations.append(
                    MutationSite(qualname, attr, lineno)
                )
        summaries[qualname] = summary
    return summaries


# ---------------------------------------------------------------------------
# W002 — interprocedural epoch-bump flow
# ---------------------------------------------------------------------------

#: A pending mutation: the site plus the call chain that reached it
#: (innermost first), used as the finding's evidence.
Pending = Tuple[MutationSite, Tuple[str, ...]]


@dataclass
class _FuncEpochSummary:
    """Fixpoint state of one function for the epoch-flow analysis."""

    #: Mutations possibly unpublished when the function returns.
    pending_at_exit: Tuple[Pending, ...] = ()
    #: True when every path through the function executes a bump.
    bumps_all_paths: bool = False


@dataclass
class EpochFlow:
    """Result of the interprocedural epoch-bump analysis."""

    #: (function, pending) at a yield — published too late no matter
    #: what the caller does.
    yield_violations: List[Tuple[str, int, Pending]] = field(
        default_factory=list
    )
    #: function -> pendings still open when it returns.
    pending_at_exit: Dict[str, Tuple[Pending, ...]] = field(
        default_factory=dict
    )
    #: function -> True when it bumps on every path.
    bumps_all_paths: Dict[str, bool] = field(default_factory=dict)


@dataclass
class _PathState:
    pending: Tuple[Pending, ...]
    bumped: bool  # a bump happened on this path


def _join(states: Sequence[_PathState]) -> _PathState:
    pendings: List[Pending] = []
    seen: Set[Tuple[str, str, int]] = set()
    for state in states:
        for site, chain in state.pending:
            key = (site.qualname, site.attr, site.lineno)
            if key not in seen:
                seen.add(key)
                pendings.append((site, chain))
    return _PathState(
        pending=tuple(pendings),
        bumped=all(state.bumped for state in states) if states else False,
    )


class _EpochWalker:
    """Path-approximating walk of one function body."""

    def __init__(
        self,
        func: FunctionInfo,
        graph: CallGraph,
        summaries: Dict[str, _FuncEpochSummary],
        record_yields: Optional[List[Tuple[str, int, Pending]]] = None,
    ) -> None:
        self.func = func
        self.graph = graph
        self.summaries = summaries
        self.record_yields = record_yields
        self.exits: List[_PathState] = []
        #: callee edges indexed by line for the statement transfer.
        self.calls_by_line: Dict[int, List[str]] = {}
        for edge in graph.callees(func.qualname):
            self.calls_by_line.setdefault(edge.lineno, []).append(edge.callee)

    def run(self) -> _FuncEpochSummary:
        state = self.flow(self.func.node.body, _PathState((), False))
        if state is not None:
            self.exits.append(state)
        final = _join(self.exits)
        return _FuncEpochSummary(
            pending_at_exit=final.pending,
            bumps_all_paths=final.bumped,
        )

    # -- statement dispatch ---------------------------------------------
    def flow(
        self, stmts: Sequence[ast.stmt], state: _PathState
    ) -> Optional[_PathState]:
        """Run the statements; None when every path exited."""
        current: Optional[_PathState] = state
        for stmt in stmts:
            if current is None:
                return None
            current = self.step(stmt, current)
        return current

    def step(self, stmt: ast.stmt, state: _PathState) -> Optional[_PathState]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            state = self.transfer(stmt, state)
            self.exits.append(state)
            return None
        if isinstance(stmt, ast.If):
            entry = self.transfer(stmt.test, state)
            branches = [
                self.flow(stmt.body, entry),
                self.flow(stmt.orelse, entry),
            ]
            live = [b for b in branches if b is not None]
            return _join(live) if live else None
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            entry = self.transfer(stmt.iter, state)
            once = self.flow(stmt.body, entry)
            after = [entry] + ([once] if once is not None else [])
            joined = _join(after)
            tail = self.flow(stmt.orelse, joined)
            return tail
        if isinstance(stmt, ast.While):
            entry = self.transfer(stmt.test, state)
            once = self.flow(stmt.body, entry)
            after = [entry] + ([once] if once is not None else [])
            joined = _join(after)
            return self.flow(stmt.orelse, joined)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entry = state
            for item in stmt.items:
                entry = self.transfer(item.context_expr, entry)
            return self.flow(stmt.body, entry)
        if isinstance(stmt, ast.Try):
            body_out = self.flow(stmt.body, state)
            outs: List[_PathState] = []
            if body_out is not None:
                outs.append(body_out)
            # A handler may run after an arbitrary prefix of the body:
            # approximate its entry as entry-state ∪ after-body.
            handler_entry = _join(
                [state] + ([body_out] if body_out is not None else [])
            )
            for handler in stmt.handlers:
                handler_out = self.flow(handler.body, handler_entry)
                if handler_out is not None:
                    outs.append(handler_out)
            merged: Optional[_PathState] = _join(outs) if outs else None
            if stmt.finalbody:
                if merged is None:
                    merged = handler_entry
                merged = self.flow(stmt.finalbody, merged)
            return merged
        return self.transfer(stmt, state)

    # -- expression/statement transfer -----------------------------------
    def transfer(self, node: ast.AST, state: _PathState) -> _PathState:
        pending = list(state.pending)
        bumped = state.bumped
        exempt = self.func.name == "__init__"
        for child in ast.walk(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if _is_bump_call(child):
                pending = []
                bumped = True
            elif isinstance(child, ast.Call):
                lineno = child.lineno
                for callee in self.calls_by_line.get(lineno, ()):
                    summary = self.summaries.get(callee)
                    if summary is None:
                        continue
                    if summary.bumps_all_paths:
                        pending = []
                        bumped = True
                    for site, chain in summary.pending_at_exit:
                        pending.append(
                            (site, (f"{self.func.qualname}:{lineno}",) + chain)
                        )
            elif isinstance(child, (ast.Yield, ast.YieldFrom, ast.Await)):
                if pending and self.record_yields is not None:
                    for entry in pending:
                        self.record_yields.append(
                            (self.func.qualname, child.lineno, entry)
                        )
                # Reported here; do not double-report at the caller.
                pending = []
        if not exempt:
            for lineno, attr in _attr_mutations_in(node, RULE_ATTRS):
                pending.append(
                    (MutationSite(self.func.qualname, attr, lineno), ())
                )
        return _PathState(pending=tuple(pending), bumped=bumped)


def analyze_epoch_flow(graph: CallGraph) -> EpochFlow:
    """Fixpoint of the per-function epoch summaries over the graph."""
    table = graph.table
    summaries: Dict[str, _FuncEpochSummary] = {
        qualname: _FuncEpochSummary() for qualname in table.functions
    }
    # Iterate to a fixpoint (monotone: pendings only grow, bump flags
    # only flip once), bounded for safety on pathological recursion.
    for _ in range(10):
        changed = False
        for qualname, func in table.functions.items():
            walker = _EpochWalker(func, graph, summaries)
            updated = walker.run()
            previous = summaries[qualname]
            if (
                _pending_keys(updated.pending_at_exit)
                != _pending_keys(previous.pending_at_exit)
                or updated.bumps_all_paths != previous.bumps_all_paths
            ):
                summaries[qualname] = updated
                changed = True
        if not changed:
            break

    flow = EpochFlow()
    for qualname, func in table.functions.items():
        walker = _EpochWalker(
            func, graph, summaries, record_yields=flow.yield_violations
        )
        final = walker.run()
        flow.pending_at_exit[qualname] = final.pending_at_exit
        flow.bumps_all_paths[qualname] = final.bumps_all_paths
    return flow


def _pending_keys(
    pendings: Tuple[Pending, ...]
) -> FrozenSet[Tuple[str, str, int]]:
    return frozenset(
        (site.qualname, site.attr, site.lineno) for site, _ in pendings
    )
