"""Call graph over the project symbol table.

Edges are resolved through import bindings, the class hierarchy
(virtual calls fan out to subclass overrides), annotated parameter /
return types, and inferred ``self.<attr>`` types.  Calls the resolver
cannot pin down — callbacks, computed attributes, stdlib objects — are
recorded as explicit **unknown edges** with their call site, never
silently dropped: the checks downstream can then report "analysis
stopped here" instead of pretending the path is clean.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .symbols import (
    FunctionInfo,
    SymbolTable,
    _dotted_name,
    _parameter_types,
    infer_expr_type,
)

__all__ = ["CallEdge", "UnknownEdge", "CallGraph", "build_call_graph"]


@dataclass(frozen=True)
class CallEdge:
    """A resolved caller -> callee edge."""

    caller: str
    callee: str
    lineno: int
    kind: str  # "direct" | "method" | "constructor" | "virtual"


@dataclass(frozen=True)
class UnknownEdge:
    """A call the resolver could not pin to a definition."""

    caller: str
    callee_repr: str  # best-effort text, e.g. "self.uplink_sink"
    lineno: int
    reason: str  # "callback" | "unresolved-name" | "dynamic"


@dataclass
class CallGraph:
    """Adjacency over function qualnames, plus the unknown remainder."""

    table: SymbolTable
    edges: List[CallEdge] = field(default_factory=list)
    unknown: List[UnknownEdge] = field(default_factory=list)
    _out: Dict[str, List[CallEdge]] = field(default_factory=dict)
    _in: Dict[str, List[CallEdge]] = field(default_factory=dict)

    def add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)

    def callees(self, qualname: str) -> List[CallEdge]:
        return self._out.get(qualname, [])

    def callers(self, qualname: str) -> List[CallEdge]:
        return self._in.get(qualname, [])

    def unknown_from(self, qualname: str) -> List[UnknownEdge]:
        return [u for u in self.unknown if u.caller == qualname]

    def roots(self) -> List[str]:
        """Functions with no known caller — the event-loop boundary.

        These are the entry points control returns from: test
        harnesses, engine callbacks, and CLI code invoke them
        dynamically, which the static graph cannot see.
        """
        return sorted(
            qualname
            for qualname in self.table.functions
            if qualname not in self._in
        )

    def reachable(
        self,
        entries: Sequence[str],
        stop_modules: Sequence[str] = (),
    ) -> Dict[str, Tuple[str, ...]]:
        """Functions reachable from ``entries`` with one witness chain.

        ``stop_modules`` are module-name prefixes the traversal does
        not descend *into* (instrumentation packages whose calls are
        gated off the fast path); the boundary edge itself is dropped.
        Returns ``{qualname: (entry, ..., qualname)}``.
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for entry in entries:
            if entry in self.table.functions and entry not in chains:
                chains[entry] = (entry,)
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for edge in self.callees(current):
                callee = edge.callee
                if callee in chains:
                    continue
                info = self.table.functions.get(callee)
                if info is None:
                    continue
                if any(
                    info.module == stop or info.module.startswith(stop + ".")
                    for stop in stop_modules
                ):
                    continue
                chains[callee] = chains[current] + (callee,)
                queue.append(callee)
        return chains

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "functions": sorted(self.table.functions),
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "line": e.lineno,
                    "kind": e.kind,
                }
                for e in self.edges
            ],
            "unknown_edges": [
                {
                    "caller": u.caller,
                    "callee": u.callee_repr,
                    "line": u.lineno,
                    "reason": u.reason,
                }
                for u in self.unknown
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def to_dot(
        self,
        entries: Optional[Sequence[str]] = None,
        stop_modules: Sequence[str] = (),
    ) -> str:
        """Graphviz rendering; restricted to the subgraph reachable
        from ``entries`` when given (the UPF-U packet-path figure)."""
        keep: Optional[Set[str]] = None
        if entries:
            keep = set(self.reachable(entries, stop_modules=stop_modules))
        lines = [
            "digraph callgraph {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=10, fontname="monospace"];',
        ]
        seen_edges: Set[Tuple[str, str]] = set()
        for edge in self.edges:
            if keep is not None and (
                edge.caller not in keep or edge.callee not in keep
            ):
                continue
            pair = (edge.caller, edge.callee)
            if pair in seen_edges:
                continue
            seen_edges.add(pair)
            style = ' [style=dashed]' if edge.kind == "virtual" else ""
            lines.append(
                f'  "{_short(edge.caller)}" -> "{_short(edge.callee)}"{style};'
            )
        for unknown in self.unknown:
            if keep is not None and unknown.caller not in keep:
                continue
            pair = (unknown.caller, f"?{unknown.callee_repr}")
            if pair in seen_edges:
                continue
            seen_edges.add(pair)
            lines.append(
                f'  "{_short(unknown.caller)}" -> '
                f'"? {unknown.callee_repr}" [style=dotted, color=gray];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


def _short(qualname: str) -> str:
    """Trim the shared package prefix for readable graph labels."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def build_call_graph(table: SymbolTable) -> CallGraph:
    graph = CallGraph(table=table)
    for func in table.functions.values():
        _resolve_function_calls(graph, func)
    return graph


def _iter_own_calls(func: FunctionInfo) -> Iterator[ast.Call]:
    """Call nodes in the function body, excluding nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


#: Builtin callables that never resolve to project code.
_BUILTINS = frozenset({
    "len", "range", "isinstance", "getattr", "setattr", "hasattr", "max",
    "min", "sum", "abs", "sorted", "enumerate", "zip", "map", "filter",
    "iter", "next", "print", "repr", "str", "int", "float", "bool",
    "list", "dict", "set", "tuple", "frozenset", "bytearray", "bytes",
    "id", "type", "super", "vars", "dir", "round", "divmod", "hash",
    "issubclass", "callable", "format", "open", "any", "all",
})


def _resolve_function_calls(graph: CallGraph, func: FunctionInfo) -> None:
    table = graph.table
    param_types = _parameter_types(table, func)
    local_types = dict(param_types)
    # One linear pre-pass infers local variable types from assignments
    # (flow-insensitive: last-writer-wins is fine at this granularity).
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                inferred = infer_expr_type(table, func, local_types, node.value)
                if inferred:
                    local_types[target.id] = inferred
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            inferred = table.annotation_type(func.module, node.annotation)
            if inferred:
                local_types[node.target.id] = inferred

    for call in _iter_own_calls(func):
        _resolve_call(graph, func, local_types, call)


def _resolve_call(
    graph: CallGraph,
    func: FunctionInfo,
    local_types: Dict[str, str],
    call: ast.Call,
) -> None:
    table = graph.table
    target = call.func
    lineno = call.lineno

    dotted = _dotted_name(target)
    if dotted is not None:
        resolved = table.resolve_dotted(func.module, dotted)
        if resolved in table.functions:
            graph.add(CallEdge(func.qualname, resolved, lineno, "direct"))
            return
        if resolved in table.classes:
            init = table.resolve_method(resolved, "__init__")
            if init is not None:
                graph.add(
                    CallEdge(func.qualname, init, lineno, "constructor")
                )
            return
        head = dotted.split(".")[0]
        if dotted in _BUILTINS:
            return

    if isinstance(target, ast.Attribute):
        method = target.attr
        receiver_type = infer_expr_type(
            table, func, local_types, target.value
        )
        if receiver_type is not None:
            targets = table.virtual_targets(receiver_type, method)
            if targets:
                kind = "method" if len(targets) == 1 else "virtual"
                for callee in targets:
                    graph.add(CallEdge(func.qualname, callee, lineno, kind))
                return
            graph.unknown.append(
                UnknownEdge(
                    func.qualname,
                    f"{receiver_type.split('.')[-1]}.{method}",
                    lineno,
                    "callback",
                )
            )
            return
        graph.unknown.append(
            UnknownEdge(
                func.qualname,
                ast.unparse(target) if hasattr(ast, "unparse") else method,
                lineno,
                "dynamic",
            )
        )
        return

    if dotted is not None and dotted not in _BUILTINS:
        # A bare name that resolved to nothing in the project: either a
        # stdlib/builtin alias or a genuinely dynamic callable.
        if head in local_types or head in _BUILTINS:
            reason = "callback"
        else:
            reason = "unresolved-name"
        graph.unknown.append(
            UnknownEdge(func.qualname, dotted, lineno, reason)
        )
        return

    graph.unknown.append(
        UnknownEdge(
            func.qualname,
            ast.unparse(target) if hasattr(ast, "unparse") else "<expr>",
            lineno,
            "dynamic",
        )
    )
