"""The four whole-program checks over the call graph.

========  ==================================================================
W001      Hot-path cost budget: any function reachable from the UPF-U
          per-packet entry points may allocate (objects, containers,
          strings, generators) only what the committed budget file
          grants it.  Intentional costs are explicit entries with a
          reason; everything else is a regression.
W002      Interprocedural epoch bump: a rule-container mutation must be
          published by ``RuleEpoch.bump()`` on every path before
          control returns to the event loop — through calls, so a
          helper's mutation may be discharged by its caller, and a
          ``yield`` with an unpublished mutation is flagged where it
          happens.
W003      Yield in atomic section: no ``yield`` may be reachable (via
          the call graph) from inside a ``with detector.role(...)``
          block — the sections the race detector treats as atomic must
          actually be atomic.
W004      Layering conformance: import edges may not point up the
          stack (``sim`` imports nothing from the project; ``up`` and
          ``cp`` may not import each other's internals; the
          instrumentation packages ``analysis``/``obs`` are never
          imported from the hot-path package).
========  ==================================================================

Findings carry call-chain evidence and flow through the same
``Finding`` / ``# repro: noqa[...]`` / ``--baseline`` machinery as the
file-local lint.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rules import FileContext, Finding
from .callgraph import CallGraph, build_call_graph
from .summaries import (
    FunctionSummary,
    analyze_epoch_flow,
    summarize,
)
from .symbols import SymbolTable, build_symbol_table

__all__ = [
    "ProgramFinding",
    "Budget",
    "ProgramReport",
    "DEFAULT_PACKET_ENTRIES",
    "analyze_program",
]

#: The UPF-U per-packet entry points (direct API + platform ring path,
#: singleton and burst variants).
DEFAULT_PACKET_ENTRIES = (
    "repro.up.upf_u.UPFUserPlane.process",
    "repro.up.upf_u.UPFUserPlane.handle",
    "repro.up.upf_u.UPFUserPlane.process_burst",
    "repro.up.upf_u.UPFUserPlane.handle_burst",
)

#: Instrumentation packages: calls into them are gated behind
#: ``is None`` checks on the fast path, so W001/W003 reachability stops
#: at their boundary (W004 polices their imports instead).
_INSTRUMENTATION = ("analysis", "obs")


@dataclass(frozen=True)
class ProgramFinding(Finding):
    """A lint finding plus its interprocedural evidence chain."""

    chain: Tuple[str, ...] = ()

    def format(self) -> str:
        base = super().format()
        if not self.chain:
            return base
        steps = "\n".join(f"    {step}" for step in self.chain)
        return f"{base}\n  call chain:\n{steps}"

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["chain"] = list(self.chain)
        return data


class Budget:
    """The committed per-function allocation budget file.

    Format::

        {
          "version": 1,
          "entry_points": ["pkg.mod.Class.method", ...],
          "budgets": {
            "pkg.mod.func": {"allocations": 2, "reason": "..."},
            ...
          }
        }

    Every entry is an *explicit, reviewed* cost on the per-packet path;
    a budget naming a function that no longer exists is stale and fails
    the run (so budgets cannot quietly outlive refactors).
    """

    def __init__(
        self,
        budgets: Optional[Dict[str, int]] = None,
        reasons: Optional[Dict[str, str]] = None,
        entry_points: Optional[Sequence[str]] = None,
    ) -> None:
        self.budgets: Dict[str, int] = dict(budgets or {})
        self.reasons: Dict[str, str] = dict(reasons or {})
        self.entry_points: Optional[Tuple[str, ...]] = (
            tuple(entry_points) if entry_points else None
        )

    @classmethod
    def load(cls, path: str) -> "Budget":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        budgets: Dict[str, int] = {}
        reasons: Dict[str, str] = {}
        for qualname, entry in (data.get("budgets") or {}).items():
            if isinstance(entry, dict):
                budgets[qualname] = int(entry.get("allocations", 0))
                reasons[qualname] = str(entry.get("reason", ""))
            else:
                budgets[qualname] = int(entry)
        return cls(budgets, reasons, data.get("entry_points"))

    def allowance(self, qualname: str) -> int:
        return self.budgets.get(qualname, 0)

    def stale_entries(self, table: SymbolTable) -> List[str]:
        return sorted(
            qualname
            for qualname in self.budgets
            if qualname not in table.functions
        )


@dataclass
class ProgramReport:
    """Everything one analysis run produced."""

    table: SymbolTable
    graph: CallGraph
    summaries: Dict[str, FunctionSummary]
    findings: List[ProgramFinding]
    #: qualname -> witness chain from a packet entry point.
    hot_path: Dict[str, Tuple[str, ...]]
    stale_budget_entries: List[str]

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "hot_path": {
                qualname: list(chain)
                for qualname, chain in sorted(self.hot_path.items())
            },
            "stale_budget_entries": self.stale_budget_entries,
            "stats": {
                "modules": len(self.table.modules),
                "functions": len(self.table.functions),
                "classes": len(self.table.classes),
                "call_edges": len(self.graph.edges),
                "unknown_edges": len(self.graph.unknown),
            },
        }


def _root_packages(table: SymbolTable) -> Set[str]:
    return {name.split(".")[0] for name in table.modules}


def _stop_modules(table: SymbolTable) -> List[str]:
    """Instrumentation sub-packages of every analyzed root package."""
    stops: List[str] = []
    for root in _root_packages(table):
        for sub in _INSTRUMENTATION:
            stops.append(f"{root}.{sub}")
    return stops


def analyze_program(
    files: Sequence[Tuple[str, str]],
    budget: Optional[Budget] = None,
    entry_points: Optional[Sequence[str]] = None,
) -> ProgramReport:
    """Run the engine and all four checks over ``(path, source)`` pairs."""
    table = build_symbol_table(files)
    graph = build_call_graph(table)
    summaries = summarize(table)
    budget = budget or Budget()

    entries = list(
        entry_points
        if entry_points is not None
        else (budget.entry_points or DEFAULT_PACKET_ENTRIES)
    )
    entries = [e for e in entries if e in table.functions]
    stop = _stop_modules(table)
    hot_path = graph.reachable(entries, stop_modules=stop)

    findings: List[ProgramFinding] = []
    findings.extend(_check_w001(table, summaries, hot_path, budget))
    findings.extend(_check_w002(table, graph))
    findings.extend(_check_w003(table, graph, stop))
    findings.extend(_check_w004(table))

    findings = _apply_noqa(files, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return ProgramReport(
        table=table,
        graph=graph,
        summaries=summaries,
        findings=findings,
        hot_path=hot_path,
        stale_budget_entries=budget.stale_entries(table),
    )


def _apply_noqa(
    files: Sequence[Tuple[str, str]], findings: List[ProgramFinding]
) -> List[ProgramFinding]:
    contexts: Dict[str, FileContext] = {}
    for path, source in files:
        contexts[path] = FileContext.parse(path, source)
    return [
        finding
        for finding in findings
        if finding.path not in contexts
        or not contexts[finding.path].is_suppressed(finding)
    ]


def _mk(
    table: SymbolTable,
    qualname: str,
    lineno: int,
    code: str,
    message: str,
    chain: Tuple[str, ...] = (),
    severity: str = "error",
) -> ProgramFinding:
    func = table.functions[qualname]
    return ProgramFinding(
        path=func.path,
        line=lineno,
        col=1,
        code=code,
        severity=severity,
        message=message,
        chain=chain,
    )


# ---------------------------------------------------------------------------
# W001 — hot-path cost budget
# ---------------------------------------------------------------------------
def _check_w001(
    table: SymbolTable,
    summaries: Dict[str, FunctionSummary],
    hot_path: Dict[str, Tuple[str, ...]],
    budget: Budget,
) -> List[ProgramFinding]:
    findings: List[ProgramFinding] = []
    for qualname, chain in sorted(hot_path.items()):
        summary = summaries.get(qualname)
        if summary is None or not summary.allocations:
            continue
        count = len(summary.allocations)
        allowed = budget.allowance(qualname)
        if count <= allowed:
            continue
        kinds = ", ".join(
            f"{site.kind}@{site.lineno}"
            + (f" ({site.detail})" if site.detail else "")
            for site in summary.allocations[:6]
        )
        if count > 6:
            kinds += ", ..."
        findings.append(
            _mk(
                table,
                qualname,
                table.functions[qualname].lineno,
                "W001",
                f"{qualname.split('.')[-1]}() is on the UPF-U per-packet "
                f"path and has {count} allocation site(s) over its budget "
                f"of {allowed}: {kinds}; grant an explicit budget entry "
                "with a reason, or hoist the allocation off the hot path",
                chain=tuple(f"-> {step}" for step in chain),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# W002 — interprocedural epoch bump
# ---------------------------------------------------------------------------
def _check_w002(
    table: SymbolTable, graph: CallGraph
) -> List[ProgramFinding]:
    flow = analyze_epoch_flow(graph)
    findings: List[ProgramFinding] = []
    reported: Set[Tuple[str, str, int]] = set()

    for qualname, yield_line, (site, chain) in flow.yield_violations:
        key = (site.qualname, site.attr, site.lineno)
        if key in reported:
            continue
        reported.add(key)
        findings.append(
            _mk(
                table,
                site.qualname,
                site.lineno,
                "W002",
                f"rule container .{site.attr} mutated in "
                f"{site.qualname.split('.')[-1]}() is not published by "
                f"RuleEpoch.bump() before the yield at "
                f"{qualname.split('.')[-1]}():{yield_line}; the flow "
                "cache serves stale decisions once control returns to "
                "the event loop",
                chain=_w002_chain(qualname, chain, site),
            )
        )

    for root in graph.roots():
        for site, chain in flow.pending_at_exit.get(root, ()):
            key = (site.qualname, site.attr, site.lineno)
            if key in reported:
                continue
            reported.add(key)
            findings.append(
                _mk(
                    table,
                    site.qualname,
                    site.lineno,
                    "W002",
                    f"rule container .{site.attr} mutated in "
                    f"{site.qualname.split('.')[-1]}() is not published "
                    "by RuleEpoch.bump() on every path before control "
                    f"returns to the event loop (entered via "
                    f"{root.split('.')[-1]}()); flow-cache readers keep "
                    "serving the old rules",
                    chain=_w002_chain(root, chain, site),
                )
            )
    return findings


def _w002_chain(
    origin: str, chain: Tuple[str, ...], site
) -> Tuple[str, ...]:
    steps = [f"-> {origin}"]
    for hop in chain:
        steps.append(f"-> {hop}")
    steps.append(f"-> mutation of .{site.attr} at {site.qualname}:{site.lineno}")
    return tuple(steps)


# ---------------------------------------------------------------------------
# W003 — yield reachable inside an atomic section
# ---------------------------------------------------------------------------
def _check_w003(
    table: SymbolTable, graph: CallGraph, stop: Sequence[str]
) -> List[ProgramFinding]:
    findings: List[ProgramFinding] = []
    for qualname, func in sorted(table.functions.items()):
        for stmt in ast.walk(func.node):
            if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                continue
            if not _is_role_with(stmt):
                continue
            findings.extend(
                _atomic_section_findings(table, graph, stop, qualname, stmt)
            )
    return findings


def _is_role_with(stmt: ast.AST) -> bool:
    for item in stmt.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "role"
        ):
            return True
    return False


def _atomic_section_findings(
    table: SymbolTable,
    graph: CallGraph,
    stop: Sequence[str],
    qualname: str,
    stmt: ast.AST,
) -> List[ProgramFinding]:
    findings: List[ProgramFinding] = []
    body_lines = _body_line_range(stmt)
    # Direct yield inside the atomic block body.
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and (
            body_lines[0] <= node.lineno <= body_lines[1]
        ):
            findings.append(
                _mk(
                    table,
                    qualname,
                    stmt.lineno,
                    "W003",
                    f"atomic section in {qualname.split('.')[-1]}() "
                    f"yields at line {node.lineno}: a role-scoped block "
                    "is one yield-to-yield atomic section and must not "
                    "suspend",
                    chain=(f"-> {qualname}:{node.lineno} (yield)",),
                )
            )
    # Yields smuggled in through callees.
    seeds = [
        edge.callee
        for edge in graph.callees(qualname)
        if body_lines[0] <= edge.lineno <= body_lines[1]
        and not _in_modules(table, edge.callee, stop)
    ]
    chains = graph.reachable(seeds, stop_modules=stop)
    for callee, chain in sorted(chains.items()):
        info = table.functions.get(callee)
        if info is not None and info.is_generator:
            findings.append(
                _mk(
                    table,
                    qualname,
                    stmt.lineno,
                    "W003",
                    f"generator {callee.split('.')[-1]}() is reachable "
                    f"from the atomic section in "
                    f"{qualname.split('.')[-1]}(); a helper that yields "
                    "breaks the section the race detector treats as "
                    "atomic",
                    chain=(f"-> {qualname}:{stmt.lineno} (with .role(...))",)
                    + tuple(f"-> {step}" for step in chain),
                )
            )
    return findings


def _in_modules(
    table: SymbolTable, qualname: str, prefixes: Sequence[str]
) -> bool:
    info = table.functions.get(qualname)
    if info is None:
        return False
    return any(
        info.module == prefix or info.module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _body_line_range(stmt: ast.AST) -> Tuple[int, int]:
    first = stmt.body[0].lineno if stmt.body else stmt.lineno
    last = stmt.lineno
    for node in ast.walk(stmt):
        lineno = getattr(node, "end_lineno", None) or getattr(
            node, "lineno", None
        )
        if lineno is not None:
            last = max(last, lineno)
    return first, last


# ---------------------------------------------------------------------------
# W004 — layering conformance
# ---------------------------------------------------------------------------
def _check_w004(table: SymbolTable) -> List[ProgramFinding]:
    findings: List[ProgramFinding] = []
    for name, module in sorted(table.modules.items()):
        root = name.split(".")[0]
        sim_pkg = f"{root}.sim"
        up_pkg = f"{root}.up"
        cp_pkg = f"{root}.cp"
        in_sim = name == sim_pkg or name.startswith(sim_pkg + ".")
        in_up = name == up_pkg or name.startswith(up_pkg + ".")
        in_cp = name == cp_pkg or name.startswith(cp_pkg + ".")
        for target, lineno in module.import_edges:
            if target.split(".")[0] != root:
                continue
            if in_sim and not (
                target == sim_pkg or target.startswith(sim_pkg + ".")
            ):
                findings.append(
                    ProgramFinding(
                        path=module.path,
                        line=lineno,
                        col=1,
                        code="W004",
                        severity="error",
                        message=(
                            f"layering: sim module {name} imports "
                            f"{target}; the simulation kernel sits at "
                            "the bottom of the stack and imports "
                            "nothing above it"
                        ),
                    )
                )
            if in_up and target.startswith(cp_pkg + "."):
                findings.append(
                    _layer_finding(module, lineno, name, target, "up", "cp")
                )
            if in_cp and target.startswith(up_pkg + "."):
                findings.append(
                    _layer_finding(module, lineno, name, target, "cp", "up")
                )
            if in_up and any(
                target == f"{root}.{sub}"
                or target.startswith(f"{root}.{sub}.")
                for sub in _INSTRUMENTATION
            ):
                findings.append(
                    ProgramFinding(
                        path=module.path,
                        line=lineno,
                        col=1,
                        code="W004",
                        severity="error",
                        message=(
                            f"layering: hot-path module {name} imports "
                            f"instrumentation package {target}; "
                            "analysis/obs must never be imported from "
                            "the per-packet forwarding path"
                        ),
                    )
                )
    return findings


def _layer_finding(
    module, lineno: int, name: str, target: str, side: str, other: str
) -> ProgramFinding:
    return ProgramFinding(
        path=module.path,
        line=lineno,
        col=1,
        code="W004",
        severity="error",
        message=(
            f"layering: {side} module {name} imports {other} internals "
            f"({target}); cross-plane access goes through the package "
            f"facade (import the {other} package, not its submodules)"
        ),
    )
