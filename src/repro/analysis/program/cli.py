"""CLI for the whole-program analysis: ``python -m repro.analysis.program``.

Typical CI invocation::

    python -m repro.analysis.program src/repro \\
        --budget analysis-budget.json \\
        --baseline analysis-program-baseline.json --json

Options
-------
``--json``
    Emit the full report (findings with call chains, hot-path map,
    stats) as JSON.
``--format github``
    Print findings as GitHub Actions workflow annotations so CI
    findings land on PR lines.
``--budget PATH``
    Per-function allocation budget file for W001.  A budget entry whose
    function no longer exists is *stale* and fails the run (exit 2) —
    budgets cannot quietly outlive refactors.
``--baseline / --write-baseline``
    Same machinery (and key stability guarantees) as
    ``repro.analysis.lint``.

When ``--budget`` / ``--baseline`` are not given and the committed
``analysis-budget.json`` / ``analysis-program-baseline.json`` exist in
the working directory, they are used automatically, so a bare
``python -m repro.analysis.program src/repro`` from the repo root
checks against the committed state.
``--select / --ignore``
    Filter by check code (W001..W004).
``--graph json|dot``
    Dump the call graph and exit.  ``--graph-focus`` restricts the DOT
    rendering to the subgraph reachable from the given entry points
    (used to generate the UPF-U packet-path figure in the docs).
``--entry QUALNAME``
    Override the W001 entry points (repeatable); defaults to the UPF-U
    per-packet entry points, or the budget file's ``entry_points``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from ..report import (
    EXIT_STALE,
    apply_baseline,
    emit_findings,
    iter_python_files,
    load_baseline,
    report_stale_entries,
    resolve_exit,
    stale_baseline_entries,
    write_baseline,
)
from .checks import (
    DEFAULT_PACKET_ENTRIES,
    Budget,
    ProgramFinding,
    ProgramReport,
    analyze_program,
)

__all__ = ["main", "load_files"]

_CHECK_CODES = ("W001", "W002", "W003", "W004")

#: Committed config picked up from the working directory when the
#: corresponding flag is not given.
DEFAULT_BUDGET_FILE = "analysis-budget.json"
DEFAULT_BASELINE_FILE = "analysis-program-baseline.json"


def load_files(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Read every python file under ``paths`` as (path, source)."""
    files: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            files.append((path, handle.read()))
    return files


def _filter_codes(
    findings: Sequence[ProgramFinding],
    select: Optional[str],
    ignore: Optional[str],
) -> List[ProgramFinding]:
    keep = set(_CHECK_CODES)
    if select:
        wanted = {code.strip().upper() for code in select.split(",")}
        unknown = wanted - keep
        if unknown:
            raise SystemExit(
                f"unknown check code(s): {', '.join(sorted(unknown))}"
            )
        keep = wanted
    if ignore:
        keep -= {code.strip().upper() for code in ignore.split(",")}
    return [f for f in findings if f.code in keep]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.program",
        description=(
            "Whole-program analysis: call graph, hot-path cost budget, "
            "interprocedural epoch/atomicity/layering checks."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--format", choices=("text", "github"), default="text"
    )
    parser.add_argument("--budget", metavar="PATH")
    parser.add_argument("--baseline", metavar="PATH")
    parser.add_argument("--write-baseline", metavar="PATH", dest="write_to")
    parser.add_argument("--select", metavar="CODES")
    parser.add_argument("--ignore", metavar="CODES")
    parser.add_argument("--graph", choices=("json", "dot"))
    parser.add_argument(
        "--graph-focus",
        metavar="ENTRIES",
        help="comma-separated entry qualnames to restrict --graph dot to",
    )
    parser.add_argument(
        "--entry",
        action="append",
        metavar="QUALNAME",
        help="override the W001 hot-path entry points (repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        files = load_files(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STALE

    budget_path = args.budget
    if budget_path is None and os.path.exists(DEFAULT_BUDGET_FILE):
        budget_path = DEFAULT_BUDGET_FILE
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE_FILE):
        baseline_path = DEFAULT_BASELINE_FILE

    budget = None
    if budget_path:
        try:
            budget = Budget.load(budget_path)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: cannot load budget {budget_path}: {exc}",
                  file=sys.stderr)
            return EXIT_STALE

    report = analyze_program(files, budget=budget, entry_points=args.entry)

    if report.stale_budget_entries:
        for qualname in report.stale_budget_entries:
            print(
                f"error: stale budget entry: {qualname} no longer exists "
                "(remove it from the budget file)",
                file=sys.stderr,
            )
        return EXIT_STALE

    if args.graph:
        if args.graph == "json":
            print(report.graph.to_json())
        else:
            focus = None
            if args.graph_focus:
                focus = [e.strip() for e in args.graph_focus.split(",")]
            elif args.entry:
                focus = list(args.entry)
            stop = _default_stops(report)
            print(
                report.graph.to_dot(entries=focus, stop_modules=stop),
                end="",
            )
        return 0

    findings = _filter_codes(report.findings, args.select, args.ignore)

    if args.write_to:
        count = write_baseline(args.write_to, findings)
        print(
            f"wrote baseline {args.write_to}: {count} entr"
            f"{'y' if count == 1 else 'ies'} "
            f"({len(findings)} finding(s))"
        )
        return 0

    suppressed = 0
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_STALE
        active = _active_codes(args.select, args.ignore)
        stale = stale_baseline_entries(findings, baseline, codes=active)
        if stale:
            report_stale_entries(stale)
            return EXIT_STALE
        findings, suppressed = apply_baseline(findings, baseline)

    if args.as_json:
        payload = report.to_dict()
        payload["findings"] = [f.to_dict() for f in findings]
        payload["suppressed"] = suppressed
        print(json.dumps(payload, indent=2))
    else:
        emit_findings(findings, fmt=args.format, suppressed=suppressed)
    return resolve_exit(findings)


def _active_codes(select: Optional[str], ignore: Optional[str]) -> set:
    keep = set(_CHECK_CODES)
    if select:
        keep &= {code.strip().upper() for code in select.split(",")}
    if ignore:
        keep -= {code.strip().upper() for code in ignore.split(",")}
    return keep


def _default_stops(report: ProgramReport) -> List[str]:
    roots = {name.split(".")[0] for name in report.table.modules}
    return [f"{root}.{sub}" for root in roots for sub in ("analysis", "obs")]


if __name__ == "__main__":
    sys.exit(main())
