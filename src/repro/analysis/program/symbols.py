"""Project-wide symbol table for the whole-program analysis.

One pass over every ``*.py`` file builds :class:`SymbolTable`: modules
with their import bindings, classes with resolved base classes and
per-attribute types, and functions with qualified names.  Everything
downstream — the call graph, the CFG summaries, the W-checks — resolves
names through this table instead of re-walking ASTs.

Names are qualified as ``package.module.Class.method``; module names
are derived from the filesystem (the longest chain of directories
carrying ``__init__.py``), so the table works both on ``src/repro`` and
on throwaway fixture packages in tests.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
    "module_name_for",
    "build_symbol_table",
]


def module_name_for(path: str) -> str:
    """Dotted module name from the package structure on disk."""
    norm = os.path.abspath(path)
    directory, filename = os.path.split(norm)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
        if not package:
            break
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    name: str
    lineno: int
    cls: Optional[str] = None  # owning class qualname, if a method
    is_generator: bool = False
    decorators: Tuple[str, ...] = ()
    #: Resolved return-annotation class qualname (None if unknown).
    return_type: Optional[str] = None


@dataclass
class ClassInfo:
    """One class definition with its resolved hierarchy."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    lineno: int
    #: Base-class qualnames (resolved where possible, raw text else).
    bases: Tuple[str, ...] = ()
    #: method name -> FunctionInfo qualname (own methods only).
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname inferred from __init__ et al.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its name bindings."""

    name: str
    path: str
    tree: ast.Module
    #: local name -> qualified target (module, class, or function).
    bindings: Dict[str, str] = field(default_factory=dict)
    #: (absolute imported module, lineno) for every import statement.
    import_edges: List[Tuple[str, int]] = field(default_factory=list)
    #: module-level variable annotations: name -> class qualname.
    var_types: Dict[str, str] = field(default_factory=dict)


class SymbolTable:
    """Modules, classes, and functions of the analyzed program."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qualname -> direct subclasses (for virtual dispatch).
        self.subclasses: Dict[str, Set[str]] = {}

    # -- name resolution -------------------------------------------------
    def resolve_binding(self, name: str, depth: int = 8) -> Optional[str]:
        """Follow re-export chains until a table entry (or dead end)."""
        seen: Set[str] = set()
        current = name
        while depth > 0 and current not in seen:
            seen.add(current)
            depth -= 1
            if (
                current in self.classes
                or current in self.functions
                or current in self.modules
            ):
                return current
            # ``pkg.sub.Name`` where pkg.sub re-exports Name.
            prefix, _, leaf = current.rpartition(".")
            module = self.modules.get(prefix)
            if module is None or leaf not in module.bindings:
                return None
            current = module.bindings[leaf]
        return None

    def resolve_dotted(self, module: str, dotted: str) -> Optional[str]:
        """Resolve ``a.b.c`` as used inside ``module`` to a qualname."""
        parts = dotted.split(".")
        info = self.modules.get(module)
        if info is None:
            return None
        head = info.bindings.get(parts[0], parts[0])
        current: Optional[str] = head
        for part in parts[1:]:
            if current is None:
                return None
            current = self.resolve_binding(f"{current}.{part}")
        return self.resolve_binding(current) if current else None

    def mro(self, class_qualname: str) -> List[str]:
        """Depth-first linearization (good enough without diamonds of
        conflicting overrides)."""
        out: List[str] = []
        stack = [class_qualname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            out.append(current)
            stack.extend(info.bases)
        return out

    def resolve_method(
        self, class_qualname: str, method: str
    ) -> Optional[str]:
        """The function qualname ``class.method`` dispatches to."""
        for cls in self.mro(class_qualname):
            info = self.classes.get(cls)
            if info is not None and method in info.methods:
                return info.methods[method]
        return None

    def virtual_targets(self, class_qualname: str, method: str) -> List[str]:
        """Static + subclass-override targets of a method call.

        A call through a base-class reference may land in any subclass
        override, so reachability must fan out to all of them.
        """
        targets: List[str] = []
        base = self.resolve_method(class_qualname, method)
        if base is not None:
            targets.append(base)
        stack = list(self.subclasses.get(class_qualname, ()))
        seen: Set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            info = self.classes.get(sub)
            if info is not None and method in info.methods:
                targets.append(info.methods[method])
            stack.extend(self.subclasses.get(sub, ()))
        # Preserve order, drop duplicates.
        unique: List[str] = []
        for target in targets:
            if target not in unique:
                unique.append(target)
        return unique

    # -- type resolution -------------------------------------------------
    def annotation_type(
        self, module: str, annotation: Optional[ast.AST]
    ) -> Optional[str]:
        """Class qualname named by an annotation, unwrapping Optional
        and string forward references; None for builtins/unknowns."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
            return self.annotation_type(module, parsed)
        if isinstance(annotation, ast.Subscript):
            head = _dotted_name(annotation.value)
            if head and head.split(".")[-1] == "Optional":
                return self.annotation_type(module, annotation.slice)
            return None
        dotted = _dotted_name(annotation)
        if dotted is None:
            return None
        resolved = self.resolve_dotted(module, dotted)
        if resolved in self.classes:
            return resolved
        return None


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _decorator_names(node: ast.AST) -> Tuple[str, ...]:
    names: List[str] = []
    for decorator in getattr(node, "decorator_list", ()):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = _dotted_name(target)
        if dotted:
            names.append(dotted)
    return tuple(names)


def _contains_yield(node: ast.AST) -> bool:
    """Yield/YieldFrom directly in this function (not nested defs)."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            if _owning_function(node, child):
                return True
    return False


def _owning_function(func: ast.AST, target: ast.AST) -> bool:
    """True when ``target`` belongs to ``func`` itself, not a nested
    function/lambda inside it (one stackless re-walk)."""
    stack: List[Tuple[ast.AST, bool]] = [(child, True) for child in
                                         ast.iter_child_nodes(func)]
    while stack:
        node, direct = stack.pop()
        if node is target:
            return direct
        nested = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in ast.iter_child_nodes(node):
            stack.append((child, direct and not nested))
    return False


def _absolute_import(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute module targeted by a (possibly relative) import-from."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    # Relative level 1 means "this package": for a plain module that is
    # its parent package, for a package __init__ it is itself.
    chop = node.level if is_package else node.level
    base = parts[: len(parts) - chop + (1 if is_package else 0)]
    if not base and not node.module:
        return None
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def build_symbol_table(
    files: Sequence[Tuple[str, str]]
) -> SymbolTable:
    """Build the table from ``(path, source)`` pairs.

    Resolution runs in passes: collect definitions, then import
    bindings, then class bases/subclasses, then annotations and
    attribute types (which need the class index).
    """
    table = SymbolTable()
    parsed: List[Tuple[ModuleInfo, ast.Module]] = []

    # Pass 1 — modules, classes, functions.
    for path, source in files:
        name = module_name_for(path)
        tree = ast.parse(source, filename=path)
        info = ModuleInfo(name=name, path=path, tree=tree)
        table.modules[name] = info
        parsed.append((info, tree))
        _collect_definitions(table, info, tree)

    # Pass 2 — import bindings and import edges.
    for info, tree in parsed:
        _collect_imports(table, info, tree)

    # Pass 3 — base classes and the subclass index.
    for cls in table.classes.values():
        resolved_bases: List[str] = []
        for base in cls.node.bases:
            dotted = _dotted_name(base)
            if dotted is None:
                continue
            target = table.resolve_dotted(cls.module, dotted)
            resolved_bases.append(target if target else dotted)
        cls.bases = tuple(resolved_bases)
        for base in cls.bases:
            table.subclasses.setdefault(base, set()).add(cls.qualname)

    # Pass 4 — annotations: return types, module vars, self attributes.
    for info, tree in parsed:
        for node in tree.body:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                annotated = table.annotation_type(info.name, node.annotation)
                if annotated:
                    info.var_types[node.target.id] = annotated
    for func in table.functions.values():
        func.return_type = table.annotation_type(
            func.module, getattr(func.node, "returns", None)
        )
    for cls in table.classes.values():
        _collect_attr_types(table, cls)

    return table


def _collect_definitions(
    table: SymbolTable, info: ModuleInfo, tree: ast.Module
) -> None:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{info.name}.{node.name}"
            table.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=info.name,
                path=info.path,
                node=node,
                name=node.name,
                lineno=node.lineno,
                is_generator=_contains_yield(node),
                decorators=_decorator_names(node),
            )
            info.bindings[node.name] = qualname
        elif isinstance(node, ast.ClassDef):
            cls_qualname = f"{info.name}.{node.name}"
            cls = ClassInfo(
                qualname=cls_qualname,
                module=info.name,
                path=info.path,
                node=node,
                lineno=node.lineno,
            )
            table.classes[cls_qualname] = cls
            info.bindings[node.name] = cls_qualname
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_qualname = f"{cls_qualname}.{item.name}"
                    table.functions[method_qualname] = FunctionInfo(
                        qualname=method_qualname,
                        module=info.name,
                        path=info.path,
                        node=item,
                        name=item.name,
                        lineno=item.lineno,
                        cls=cls_qualname,
                        is_generator=_contains_yield(item),
                        decorators=_decorator_names(item),
                    )
                    cls.methods[item.name] = method_qualname


def _collect_imports(
    table: SymbolTable, info: ModuleInfo, tree: ast.Module
) -> None:
    is_package = info.path.replace("\\", "/").endswith("__init__.py")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.bindings.setdefault(bound, target)
                info.import_edges.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_import(info.name, is_package, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                submodule = f"{base}.{alias.name}"
                if submodule in table.modules:
                    # ``from pkg import submodule`` binds the module.
                    info.bindings.setdefault(bound, submodule)
                    info.import_edges.append((submodule, node.lineno))
                else:
                    info.bindings.setdefault(bound, f"{base}.{alias.name}")
                    info.import_edges.append((base, node.lineno))


def _collect_attr_types(table: SymbolTable, cls: ClassInfo) -> None:
    """Infer ``self.<attr>`` types from annotations, constructor calls,
    and annotated-parameter assignments across the class body."""
    for method_qualname in cls.methods.values():
        func = table.functions.get(method_qualname)
        if func is None:
            continue
        param_types = _parameter_types(table, func)
        for node in ast.walk(func.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            inferred = table.annotation_type(func.module, annotation)
            if inferred is None and value is not None:
                inferred = infer_expr_type(table, func, param_types, value)
            if inferred and attr not in cls.attr_types:
                cls.attr_types[attr] = inferred


def _parameter_types(
    table: SymbolTable, func: FunctionInfo
) -> Dict[str, str]:
    """name -> class qualname for annotated parameters (self included)."""
    types: Dict[str, str] = {}
    args = func.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        inferred = table.annotation_type(func.module, arg.annotation)
        if inferred:
            types[arg.arg] = inferred
    if func.cls is not None and "self" not in types:
        types["self"] = func.cls
    return types


def infer_expr_type(
    table: SymbolTable,
    func: FunctionInfo,
    local_types: Dict[str, str],
    expr: ast.AST,
) -> Optional[str]:
    """Best-effort static type of an expression (class qualname).

    Covers: constructor calls, calls to functions with annotated
    returns, names with known local/param types, ``self.attr`` with a
    recorded attribute type, module-level annotated variables, and
    conditional expressions (first resolvable arm).
    """
    if isinstance(expr, ast.IfExp):
        return (
            infer_expr_type(table, func, local_types, expr.body)
            or infer_expr_type(table, func, local_types, expr.orelse)
        )
    if isinstance(expr, ast.Call):
        dotted = _dotted_name(expr.func)
        if dotted:
            resolved = table.resolve_dotted(func.module, dotted)
            if resolved in table.classes:
                return resolved
            if resolved in table.functions:
                return table.functions[resolved].return_type
        # Method call with an inferable receiver: use its return type.
        if isinstance(expr.func, ast.Attribute):
            receiver = infer_expr_type(
                table, func, local_types, expr.func.value
            )
            if receiver:
                target = table.resolve_method(receiver, expr.func.attr)
                if target and target in table.functions:
                    return table.functions[target].return_type
        return None
    if isinstance(expr, ast.Name):
        if expr.id in local_types:
            return local_types[expr.id]
        module = table.modules.get(func.module)
        if module and expr.id in module.var_types:
            return module.var_types[expr.id]
        return None
    if isinstance(expr, ast.Attribute):
        receiver = infer_expr_type(table, func, local_types, expr.value)
        if receiver:
            cls = table.classes.get(receiver)
            if cls and expr.attr in cls.attr_types:
                return cls.attr_types[expr.attr]
            return None
        dotted = _dotted_name(expr)
        if dotted:
            # Module-level variable accessed through the module object
            # (e.g. ``_races._ACTIVE`` with a typed annotation).
            prefix, _, leaf = dotted.rpartition(".")
            resolved = table.resolve_dotted(func.module, prefix) if prefix else None
            if resolved in table.modules:
                return table.modules[resolved].var_types.get(leaf)
        return None
    return None
