"""Statement-level control-flow graphs with def/use and exception edges.

Grows the PR 5 function summaries into a real CFG so the dataflow
engine (:mod:`repro.analysis.dataflow`) can run worklist fixpoints per
function.  Each :class:`CFGNode` covers one statement (compound
statements contribute a *header* node for their test/iterator plus
nodes for their bodies) and carries:

* ``defs`` — local names (re)bound by the statement,
* ``uses`` — local names read,
* ``attr_writes`` — ``recv.attr = ...`` / ``recv.attr += ...`` /
  ``del recv.attr`` / ``recv[i] = ...`` targets as dotted receiver
  strings,
* ``calls`` — every call site with its dotted receiver, method/function
  name, and argument expressions,
* ``raises`` — whether the statement contains an explicit ``raise`` or
  ``assert``.

Edges are split into normal successors (``succ``) and exception
successors (``exc_succ``).  Exception edges run from every statement
that *could* raise (explicit raise/assert, or any statement containing
a call — which raising calls actually matter is the analysis's
decision) to the innermost enclosing handler dispatch, else to the
synthetic ``raise-exit`` node.  ``try/finally`` is modeled with one
shared finally subgraph entered from both the normal and the
exceptional side; this merges paths (a deliberate approximation) but
keeps releases in ``finally`` visible on every route out of the block.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["AttrWrite", "CallSite", "CFGNode", "CFG", "build_cfg"]


@dataclass(frozen=True)
class AttrWrite:
    """One attribute/subscript store: ``receiver.attr = ...``."""

    receiver: str  # dotted receiver text, e.g. "msg" or "self.table"
    attr: str  # attribute name; "[]" for subscript stores
    lineno: int


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a statement."""

    #: Dotted receiver for method calls ("self.bus" in
    #: ``self.bus.send(...)``), None for plain function calls or when
    #: the receiver is not a dotted name (e.g. ``tables[i].add(...)``
    #: has receiver None but name "add").
    receiver: Optional[str]
    #: Method or function name (the rightmost component).
    name: str
    #: Positional argument expressions.
    args: Tuple[ast.expr, ...]
    lineno: int
    node: ast.Call = field(compare=False, hash=False)


@dataclass
class CFGNode:
    index: int
    label: str
    lineno: int
    stmt: Optional[ast.stmt] = None
    defs: Tuple[str, ...] = ()
    uses: Tuple[str, ...] = ()
    attr_writes: Tuple[AttrWrite, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    raises: bool = False
    succ: List[int] = field(default_factory=list)
    exc_succ: List[int] = field(default_factory=list)
    #: For branch headers (if/while/for): the subset of ``succ`` entered
    #: when the test is truthy (the body).  Everything else in ``succ``
    #: is the implicit/explicit else path.  Lets a branch-aware analysis
    #: propagate different states down the two arms.
    body_succ: List[int] = field(default_factory=list)

    @property
    def may_raise(self) -> bool:
        """Statement can transfer control along an exception edge."""
        return self.raises or bool(self.calls)


@dataclass
class CFG:
    """One function's control-flow graph.

    ``entry`` is the synthetic start (its ``defs`` are the function
    parameters), ``exit`` the normal return point, ``raise_exit`` the
    exceptional exit (an exception escaping the function).
    """

    qualname: str
    nodes: List[CFGNode]
    entry: int
    exit: int
    raise_exit: int

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {n.index: [] for n in self.nodes}
        for node in self.nodes:
            for succ in node.succ:
                preds[succ].append(node.index)
            for succ in node.exc_succ:
                preds[succ].append(node.index)
        return preds

    def to_dot(self) -> str:
        lines = [f'digraph "{self.qualname}" {{']
        for node in self.nodes:
            lines.append(
                f'  n{node.index} [label="{node.index}: {node.label}"];'
            )
            for succ in node.succ:
                lines.append(f"  n{node.index} -> n{succ};")
            for succ in node.exc_succ:
                lines.append(
                    f'  n{node.index} -> n{succ} [style=dashed,label="exc"];'
                )
        lines.append("}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Expression walkers (nested function/class bodies are opaque)
# ---------------------------------------------------------------------------
_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _walk_own(node: ast.AST):
    """Yield sub-nodes without descending into nested def/class/lambda."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _NESTED):
                continue
            stack.append(child)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _uses_of(*exprs: Optional[ast.AST]) -> Tuple[str, ...]:
    names: List[str] = []
    for expr in exprs:
        if expr is None:
            continue
        for sub in _walk_own(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                names.append(sub.id)
    return tuple(dict.fromkeys(names))


def _calls_of(*exprs: Optional[ast.AST]) -> Tuple[CallSite, ...]:
    sites: List[CallSite] = []
    for expr in exprs:
        if expr is None:
            continue
        for sub in _walk_own(expr):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute):
                sites.append(CallSite(
                    receiver=_dotted(func.value),
                    name=func.attr,
                    args=tuple(sub.args),
                    lineno=sub.lineno,
                    node=sub,
                ))
            elif isinstance(func, ast.Name):
                sites.append(CallSite(
                    receiver=None,
                    name=func.id,
                    args=tuple(sub.args),
                    lineno=sub.lineno,
                    node=sub,
                ))
    sites.sort(key=lambda s: s.lineno)
    return tuple(sites)


def _target_defs(
    target: ast.AST, defs: List[str], writes: List[AttrWrite]
) -> None:
    if isinstance(target, ast.Name):
        defs.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _target_defs(elt, defs, writes)
    elif isinstance(target, ast.Starred):
        _target_defs(target.value, defs, writes)
    elif isinstance(target, ast.Attribute):
        receiver = _dotted(target.value)
        if receiver is not None:
            writes.append(AttrWrite(receiver, target.attr, target.lineno))
    elif isinstance(target, ast.Subscript):
        receiver = _dotted(target.value)
        if receiver is not None:
            writes.append(AttrWrite(receiver, "[]", target.lineno))


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------
class _Builder:
    def __init__(self, qualname: str):
        self.qualname = qualname
        self.nodes: List[CFGNode] = []
        #: Innermost exception landing node (handler dispatch or
        #: raise-exit).
        self.exc_target = 0
        #: Stack of (loop-head index, break-exit collector).
        self.loops: List[Tuple[int, List[int]]] = []

    def new(self, label: str, lineno: int = 0, **kw) -> CFGNode:
        node = CFGNode(index=len(self.nodes), label=label, lineno=lineno, **kw)
        self.nodes.append(node)
        return node

    def wire(self, preds: Sequence[int], node: CFGNode) -> None:
        for pred in preds:
            self.nodes[pred].succ.append(node.index)

    def stmt_node(self, stmt: ast.stmt, label: str) -> CFGNode:
        """One node covering a whole simple statement."""
        defs: List[str] = []
        writes: List[AttrWrite] = []
        uses: Tuple[str, ...] = ()
        raises = False
        value_exprs: List[Optional[ast.AST]] = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                _target_defs(target, defs, writes)
            value_exprs = [stmt.value]
        elif isinstance(stmt, ast.AugAssign):
            _target_defs(stmt.target, defs, writes)
            if isinstance(stmt.target, ast.Name):
                # x += 1 both reads and writes x
                value_exprs = [stmt.value, ast.Name(stmt.target.id, ast.Load())]
            else:
                value_exprs = [stmt.value, stmt.target.value]
        elif isinstance(stmt, ast.AnnAssign):
            _target_defs(stmt.target, defs, writes)
            value_exprs = [stmt.value]
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    defs.append(target.id)  # name becomes unbound
                else:
                    _target_defs(target, defs, writes)
        elif isinstance(stmt, ast.Assert):
            raises = True
            value_exprs = [stmt.test, stmt.msg]
        elif isinstance(stmt, ast.Raise):
            raises = True
            value_exprs = [stmt.exc, stmt.cause]
        elif isinstance(stmt, ast.Return):
            value_exprs = [stmt.value]
        elif isinstance(stmt, (ast.Expr, ast.Await)):
            value_exprs = [stmt.value]  # type: ignore[union-attr]
        else:
            value_exprs = [stmt]
        uses = _uses_of(*value_exprs)
        calls = _calls_of(*value_exprs)
        return self.new(
            label,
            lineno=stmt.lineno,
            stmt=stmt,
            defs=tuple(dict.fromkeys(defs)),
            uses=uses,
            attr_writes=tuple(writes),
            calls=calls,
            raises=raises,
        )

    def exc_edge(self, node: CFGNode) -> None:
        if node.may_raise and self.exc_target not in node.exc_succ:
            node.exc_succ.append(self.exc_target)

    # -- statement dispatch ----------------------------------------------
    def body(self, stmts: Sequence[ast.stmt], preds: List[int]) -> List[int]:
        for stmt in stmts:
            if not preds:
                break  # unreachable after return/raise/break
            preds = self.stmt(stmt, preds)
        return preds

    def stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Break):
            node = self.new("break", stmt.lineno, stmt=stmt)
            self.wire(preds, node)
            if self.loops:
                self.loops[-1][1].append(node.index)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.new("continue", stmt.lineno, stmt=stmt)
            self.wire(preds, node)
            if self.loops:
                node.succ.append(self.loops[-1][0])
            return []
        if isinstance(stmt, ast.Return):
            node = self.stmt_node(stmt, "return")
            self.wire(preds, node)
            self.exc_edge(node)
            node.succ.append(self._exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self.stmt_node(stmt, "raise")
            self.wire(preds, node)
            node.exc_succ.append(self.exc_target)
            return []
        if isinstance(stmt, _NESTED[:3]):  # nested def/class: opaque bind
            node = self.new(
                f"def {getattr(stmt, 'name', '?')}",
                stmt.lineno,
                stmt=stmt,
                defs=(getattr(stmt, "name", ""),),
            )
            self.wire(preds, node)
            return [node.index]
        node = self.stmt_node(stmt, type(stmt).__name__.lower())
        self.wire(preds, node)
        self.exc_edge(node)
        return [node.index]

    def _if(self, stmt: ast.If, preds: List[int]) -> List[int]:
        test = self.new(
            "if",
            stmt.lineno,
            stmt=stmt,
            uses=_uses_of(stmt.test),
            calls=_calls_of(stmt.test),
        )
        self.wire(preds, test)
        self.exc_edge(test)
        body_out = self.body(stmt.body, [test.index])
        test.body_succ = list(test.succ)
        if stmt.orelse:
            else_out = self.body(stmt.orelse, [test.index])
        else:
            else_out = [test.index]
        return body_out + else_out

    def _loop(self, stmt, preds: List[int]) -> List[int]:
        defs: List[str] = []
        writes: List[AttrWrite] = []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            _target_defs(stmt.target, defs, writes)
            uses = _uses_of(stmt.iter)
            calls = _calls_of(stmt.iter)
            label = "for"
        else:
            uses = _uses_of(stmt.test)
            calls = _calls_of(stmt.test)
            label = "while"
        head = self.new(
            label,
            stmt.lineno,
            stmt=stmt,
            defs=tuple(dict.fromkeys(defs)),
            uses=uses,
            attr_writes=tuple(writes),
            calls=calls,
        )
        self.wire(preds, head)
        self.exc_edge(head)
        breaks: List[int] = []
        self.loops.append((head.index, breaks))
        body_out = self.body(stmt.body, [head.index])
        head.body_succ = list(head.succ)
        self.loops.pop()
        for out in body_out:
            self.nodes[out].succ.append(head.index)  # back edge
        outs = [head.index]
        if stmt.orelse:
            outs = self.body(stmt.orelse, outs)
        return outs + breaks

    def _with(self, stmt, preds: List[int]) -> List[int]:
        defs: List[str] = []
        writes: List[AttrWrite] = []
        exprs = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                _target_defs(item.optional_vars, defs, writes)
        node = self.new(
            "with",
            stmt.lineno,
            stmt=stmt,
            defs=tuple(dict.fromkeys(defs)),
            uses=_uses_of(*exprs),
            attr_writes=tuple(writes),
            calls=_calls_of(*exprs),
        )
        self.wire(preds, node)
        self.exc_edge(node)
        return self.body(stmt.body, [node.index])

    def _try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        outer_target = self.exc_target
        dispatch = self.new("except-dispatch", stmt.lineno)
        self.exc_target = dispatch.index
        body_out = self.body(stmt.body, preds)
        if stmt.orelse:
            body_out = self.body(stmt.orelse, body_out)
        self.exc_target = outer_target

        handler_outs: List[int] = []
        catch_all = not stmt.handlers
        for handler in stmt.handlers:
            h_defs = (handler.name,) if handler.name else ()
            entry = self.new(
                f"except {_handler_label(handler)}",
                handler.lineno,
                defs=h_defs,
            )
            dispatch.succ.append(entry.index)
            handler_outs.extend(self.body(handler.body, [entry.index]))
            if _is_catch_all(handler):
                catch_all = True
        if not catch_all or not stmt.handlers:
            # Unmatched exceptions propagate to the enclosing handler.
            dispatch.exc_succ.append(outer_target)

        outs = body_out + handler_outs
        if stmt.finalbody:
            # One shared finally subgraph entered from both the normal
            # completions and the exceptional dispatch; after it, the
            # normal path continues and the exceptional path re-raises.
            fin_preds = list(outs)
            if dispatch.exc_succ:
                dispatch.exc_succ = []
                fin_preds.append(dispatch.index)
            fin_out = self.body(stmt.finalbody, fin_preds)
            for out in fin_out:
                if outer_target not in self.nodes[out].exc_succ:
                    self.nodes[out].exc_succ.append(outer_target)
            outs = fin_out
        return outs

    # -- entry point -----------------------------------------------------
    def build(self, func: ast.AST) -> CFG:
        args = func.args
        params = [a.arg for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        entry = self.new("entry", func.lineno, defs=tuple(params))
        exit_node = self.new("exit", func.lineno)
        raise_exit = self.new("raise-exit", func.lineno)
        self._exit = exit_node.index
        self.exc_target = raise_exit.index
        final = self.body(func.body, [entry.index])
        for out in final:
            self.nodes[out].succ.append(exit_node.index)
        return CFG(
            qualname=self.qualname,
            nodes=self.nodes,
            entry=entry.index,
            exit=exit_node.index,
            raise_exit=raise_exit.index,
        )


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [_dotted(e) for e in handler.type.elts]
    else:
        names = [_dotted(handler.type)]
    return any(n in ("Exception", "BaseException") for n in names)


def _handler_label(handler: ast.ExceptHandler) -> str:
    if handler.type is None:
        return "*"
    return _dotted(handler.type) or "?"


def build_cfg(func: ast.AST, qualname: str = "<function>") -> CFG:
    """Build the CFG of one FunctionDef/AsyncFunctionDef."""
    return _Builder(qualname).build(func)
