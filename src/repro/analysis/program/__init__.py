"""Whole-program static analysis over the L25GC reproduction.

Layers (each importable on its own):

* :mod:`.symbols` — project-wide symbol table: modules, classes
  (with MRO), functions, import bindings, annotation-driven types.
* :mod:`.callgraph` — call graph resolved through the symbol table;
  virtual calls fan out to overrides, unresolvable calls become
  explicit *unknown edges*.
* :mod:`.summaries` — per-function CFG summaries (allocations, yields,
  shared reads/writes, epoch bumps) and the path-sensitive
  interprocedural epoch-bump dataflow.
* :mod:`.cfg` — statement-level control-flow graphs with def/use
  sets, attribute-write and call-site records, and explicit exception
  edges; the substrate the typestate engine
  (:mod:`repro.analysis.dataflow`) solves over.
* :mod:`.checks` — the four semantic checks W001–W004 producing
  :class:`~repro.analysis.rules.Finding` objects with call-chain
  evidence.

Nothing in here is imported by runtime code: the per-packet path pays
zero import-time or runtime cost for the analyzer's existence.
"""

from .callgraph import CallEdge, CallGraph, UnknownEdge, build_call_graph
from .cfg import CFG, AttrWrite, CallSite, CFGNode, build_cfg
from .checks import (
    DEFAULT_PACKET_ENTRIES,
    Budget,
    ProgramFinding,
    ProgramReport,
    analyze_program,
)
from .summaries import (
    AllocationSite,
    FunctionSummary,
    MutationSite,
    analyze_epoch_flow,
    summarize,
)
from .symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    build_symbol_table,
    module_name_for,
)

__all__ = [
    "AllocationSite",
    "AttrWrite",
    "Budget",
    "CFG",
    "CFGNode",
    "CallEdge",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "DEFAULT_PACKET_ENTRIES",
    "FunctionInfo",
    "FunctionSummary",
    "ModuleInfo",
    "MutationSite",
    "ProgramFinding",
    "ProgramReport",
    "SymbolTable",
    "UnknownEdge",
    "analyze_epoch_flow",
    "analyze_program",
    "build_call_graph",
    "build_cfg",
    "build_symbol_table",
    "module_name_for",
    "summarize",
]
