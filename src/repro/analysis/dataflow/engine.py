"""Worklist-based forward dataflow solver over the program CFGs.

The generic half of the typestate engine: an :class:`Analysis` supplies
the lattice (``initial``/``join``/``equals``) and the transfer
function; :func:`solve` runs the standard chaotic-iteration worklist to
a fixpoint over one :class:`~repro.analysis.program.cfg.CFG` and
returns the in-state of every node.

Transfer functions return **two** out-states — ``(normal, exc)`` — so
an analysis can model statements whose effect differs on the
exceptional edge (e.g. a failed ``add`` leaves a removed session
*held*, a successful one transfers it).  Returning ``None`` for the
exceptional state suppresses propagation along that statement's
exception edges entirely, which is how checks ignore raising edges
they consider infeasible (calls whose callees provably do not raise).

Interprocedural context is supplied separately: the checks consult
:class:`FunctionEffects` summaries (computed by a bounded fixpoint over
the PR 5 call graph) at call sites instead of inlining callees, which
bounds the analysis to one CFG at a time while still propagating
mutate/send/raise behavior through helpers — the "bounded context"
design from the whole-program checks.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..program.cfg import CFG, CFGNode, build_cfg
from ..program.symbols import FunctionInfo, SymbolTable

__all__ = [
    "Analysis",
    "solve",
    "FunctionEffects",
    "compute_effects",
    "MAX_CHAIN_DEPTH",
]

#: Bounded interprocedural context: effect chains stop growing past
#: this many call steps (matching the epoch-flow fixpoint's bound).
MAX_CHAIN_DEPTH = 4


class Analysis:
    """Interface a typestate check implements for :func:`solve`."""

    def initial(self, cfg: CFG) -> object:
        raise NotImplementedError

    def join(self, states: Sequence[object]) -> object:
        raise NotImplementedError

    def transfer(
        self, node: CFGNode, state: object
    ) -> Tuple[object, Optional[object]]:
        """Out-states ``(normal, exceptional)`` of one node."""
        raise NotImplementedError

    def transfer_branch(
        self, node: CFGNode, state: object
    ) -> Optional[Tuple[object, object, Optional[object]]]:
        """Branch-aware transfer for if/loop headers.

        Return ``(body_state, else_state, exc_state)`` to propagate
        different states down the truthy (``node.body_succ``) and
        falsey arms — used e.g. to model the ``if not x.pin(...):
        raise`` idiom, where the resource is only held on the arm the
        test did *not* take.  Return None to fall back to
        :meth:`transfer` for this node.
        """
        return None


def solve(cfg: CFG, analysis: Analysis) -> Dict[int, object]:
    """Run ``analysis`` to fixpoint; returns node index -> in-state."""
    in_states: Dict[int, object] = {cfg.entry: analysis.initial(cfg)}
    work = deque([cfg.entry])
    # Safety valve: lattices are finite, but a buggy non-monotone
    # transfer must not hang the lint.
    budget = (len(cfg.nodes) + 1) * 64

    def _merge(succ: int, out: object) -> None:
        known = in_states.get(succ)
        if known is None:
            in_states[succ] = out
            work.append(succ)
        else:
            joined = analysis.join((known, out))
            if joined != known:
                in_states[succ] = joined
                work.append(succ)

    while work and budget:
        budget -= 1
        index = work.popleft()
        state = in_states.get(index)
        if state is None:
            continue
        node = cfg.nodes[index]
        branch = (
            analysis.transfer_branch(node, state)
            if node.body_succ else None
        )
        if branch is not None:
            body_state, else_state, exc = branch
            body_set = set(node.body_succ)
            for succ in node.succ:
                _merge(succ, body_state if succ in body_set else else_state)
            if exc is not None:
                for succ in node.exc_succ:
                    _merge(succ, exc)
            continue
        normal, exc = analysis.transfer(node, state)
        for succs, out in ((node.succ, normal), (node.exc_succ, exc)):
            if out is None:
                continue
            for succ in succs:
                _merge(succ, out)
    return in_states


# ---------------------------------------------------------------------------
# Interprocedural effect summaries
# ---------------------------------------------------------------------------
@dataclass
class FunctionEffects:
    """What calling a function may do to its arguments / control flow.

    ``mutates_params`` / ``sends_params`` map *parameter index* (0 is
    ``self`` for methods) to the evidence chain of the deepest-known
    site; ``may_raise`` carries a witness chain when any path through
    the function (or a callee, up to :data:`MAX_CHAIN_DEPTH`) contains
    an explicit ``raise``/``assert``.
    """

    qualname: str
    mutates_params: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    sends_params: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    may_raise: Optional[Tuple[str, ...]] = None


def _own_stmts(func: ast.AST):
    """Statements of a function body, nested defs excluded."""
    from ..program.cfg import _walk_own
    for node in _walk_own(func):
        if node is not func and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        yield node


def _param_names(func: ast.AST) -> List[str]:
    args = func.args
    names = [a.arg for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )]
    return names


def _instrumentation_modules(table: SymbolTable) -> Tuple[str, ...]:
    roots = {name.split(".")[0] for name in table.modules}
    return tuple(
        f"{root}.{sub}" for root in roots for sub in ("analysis", "obs")
    )


def _resolve_call_targets(
    table: SymbolTable,
    func: FunctionInfo,
    call: ast.Call,
) -> List[str]:
    """Qualnames a call may dispatch to (best effort, virtual fan-out)."""
    from ..program.symbols import infer_expr_type

    targets: List[str] = []
    callee = call.func
    if isinstance(callee, ast.Name):
        resolved = table.resolve_dotted(func.module, callee.id)
        if resolved in table.functions:
            targets.append(resolved)
        elif resolved in table.classes:
            init = table.resolve_method(resolved, "__init__")
            if init:
                targets.append(init)
    elif isinstance(callee, ast.Attribute):
        recv_type = infer_expr_type(table, func, {}, callee.value)
        if recv_type:
            for target in table.virtual_targets(recv_type, callee.attr):
                targets.append(target)
    return [t for t in targets if t in table.functions]


def compute_effects(
    table: SymbolTable,
    send_methods: Sequence[str] = ("send", "enqueue"),
    handoff_methods: Sequence[str] = (
        "enqueue", "send_to_nf", "send_out",
    ),
) -> Dict[str, FunctionEffects]:
    """Bounded-context interprocedural effect summaries for every
    function in the table.

    Runs a fixpoint: direct effects (own attribute writes on
    parameters, own sends of parameters, own raise/assert) seed the
    summaries, then call sites propagate callee effects onto the
    caller's parameters until nothing changes or the evidence chains
    hit :data:`MAX_CHAIN_DEPTH`.  Functions in the instrumentation
    packages (``analysis``/``obs``) contribute no effects — their calls
    are ``is None``-gated no-ops on the hot path, and counting their
    strict-mode raises would poison every instrumented function.
    """
    send_set = frozenset(send_methods)
    handoff_set = frozenset(handoff_methods)
    stops = _instrumentation_modules(table)
    effects: Dict[str, FunctionEffects] = {}
    param_index: Dict[str, Dict[str, int]] = {}

    # Pass 1: direct effects.
    for qualname, func in table.functions.items():
        eff = FunctionEffects(qualname)
        effects[qualname] = eff
        if func.module.startswith(stops):
            continue
        params = _param_names(func.node)
        index = {name: i for i, name in enumerate(params)}
        param_index[qualname] = index
        for stmt in _own_stmts(func.node):
            if isinstance(stmt, (ast.Raise, ast.Assert)):
                if eff.may_raise is None:
                    kind = "raise" if isinstance(stmt, ast.Raise) else "assert"
                    eff.may_raise = (f"{qualname}:{stmt.lineno} {kind}",)
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if (
                        base is not target
                        and isinstance(base, ast.Name)
                        and base.id in index
                    ):
                        attr = (
                            target.attr
                            if isinstance(target, ast.Attribute) else "[]"
                        )
                        eff.mutates_params.setdefault(
                            index[base.id],
                            (f"{qualname}:{stmt.lineno} writes .{attr}",),
                        )
            elif isinstance(stmt, ast.Call):
                call = stmt
                if not isinstance(call.func, ast.Attribute) or not call.args:
                    continue
                attr = call.func.attr
                first = call.args[0]
                # Descriptor handoff discipline: first positional arg
                # of a handoff method, or the sole arg of a unary send
                # (the bus's multi-arg send carries names, not
                # descriptors).
                is_handoff = attr in handoff_set or (
                    attr in send_set and len(call.args) == 1
                )
                if (
                    is_handoff
                    and isinstance(first, ast.Name)
                    and first.id in index
                ):
                    eff.sends_params.setdefault(
                        index[first.id],
                        (
                            f"{qualname}:{call.lineno} "
                            f"{attr}() hands over '{first.id}'",
                        ),
                    )

    # Pass 2: propagate through calls to fixpoint (bounded chains).
    changed = True
    while changed:
        changed = False
        for qualname, func in table.functions.items():
            if func.module.startswith(stops):
                continue
            eff = effects[qualname]
            index = param_index.get(qualname, {})
            for call in _own_stmts(func.node):
                if not isinstance(call, ast.Call):
                    continue
                for target in _resolve_call_targets(table, func, call):
                    callee = effects.get(target)
                    if callee is None or callee is eff:
                        continue
                    changed |= _absorb(eff, callee, call, index, qualname)
    return effects


def _absorb(
    eff: FunctionEffects,
    callee: FunctionEffects,
    call: ast.Call,
    index: Dict[str, int],
    qualname: str,
) -> bool:
    """Fold one callee's effects into the caller's summary."""
    changed = False
    step = f"{qualname}:{call.lineno} calls {callee.qualname}"
    if callee.may_raise and eff.may_raise is None:
        chain = (step,) + callee.may_raise
        if len(chain) <= MAX_CHAIN_DEPTH + 1:
            eff.may_raise = chain
            changed = True
    # Map caller arguments onto callee parameters.  Method calls have
    # an implicit self at callee index 0, so positional arg i lands on
    # callee parameter i + 1; plain calls map 1:1.
    shift = 1 if isinstance(call.func, ast.Attribute) else 0
    for arg_pos, arg in enumerate(call.args):
        if not isinstance(arg, ast.Name) or arg.id not in index:
            continue
        callee_pos = arg_pos + shift
        own_pos = index[arg.id]
        for table_name in ("mutates_params", "sends_params"):
            callee_map = getattr(callee, table_name)
            own_map = getattr(eff, table_name)
            if callee_pos in callee_map and own_pos not in own_map:
                chain = (step,) + callee_map[callee_pos]
                if len(chain) <= MAX_CHAIN_DEPTH + 1:
                    own_map[own_pos] = chain
                    changed = True
    return changed


def cfg_for(func: FunctionInfo) -> CFG:
    """The CFG of one symbol-table function."""
    return build_cfg(func.node, func.qualname)
