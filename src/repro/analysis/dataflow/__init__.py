"""Typestate dataflow engine: static lifecycle verification.

A worklist-based forward dataflow framework (:mod:`.engine`) over the
statement-level CFGs of :mod:`repro.analysis.program.cfg`, plus four
typestate checks (:mod:`.checks`):

========  =========================================================
W005      descriptor typestate — mutate-after-send / double-enqueue
W006      session/rule lifecycle — use-after-remove, double
          establish, remove-before-establish, dangling FAR refs
W007      exception-safety — resources leaked on raising paths
W008      dead config — flags and metrics nothing observes
========  =========================================================

Run as ``python -m repro.analysis.dataflow src/repro``; see
:mod:`.cli` for exit codes and baseline handling.  Never import this
package (or anything under ``repro.analysis``) from runtime modules —
the analyzers observe the data plane, they must not load with it.
"""

from .checks import CHECK_CODES, DataflowReport, analyze_dataflow
from .engine import (
    MAX_CHAIN_DEPTH,
    Analysis,
    FunctionEffects,
    compute_effects,
    solve,
)

__all__ = [
    "Analysis",
    "CHECK_CODES",
    "DataflowReport",
    "FunctionEffects",
    "MAX_CHAIN_DEPTH",
    "analyze_dataflow",
    "compute_effects",
    "solve",
]
