"""The four typestate checks W005–W008 over the dataflow engine.

========  ==================================================================
W005      Descriptor typestate (``allocated -> filled -> sent ->
          consumed``): a field write, mutating container method, or
          re-send/re-enqueue reachable after a ``send``/``enqueue``
          site — through helpers, via the interprocedural effect
          summaries — is flagged.  The static twin of the runtime
          sanitizer's mutate-after-send / double-enqueue, citing the
          same :mod:`repro.analysis.lifecycle` vocabulary.
W006      Session/rule lifecycle (``created -> installed -> removed``):
          use of a session after ``remove`` on any path, establishing a
          session twice, removing a never-established session, and a
          PDR whose constant ``far_id`` references a FAR that is not
          installed on some path through the handler.
W007      Exception-safety resource leaks: a function acquires a slab
          slot (``adopt``), shard pin (``pin``), pool entry
          (``acquire``), or holds a removed session, and a raising edge
          exists on which the release/re-install is not post-dominant.
          One release attempt on the recovery path discharges the
          obligation (bounded recovery).
W008      Dead config: a ``*Config`` dataclass field no expression in
          the analyzed tree ever reads, and metric instruments created
          and immediately discarded — configuration no reachable path
          can observe.
========  ==================================================================

Findings carry path/call-chain evidence and flow through the same
``Finding`` / ``# repro: noqa[...]`` / ``--baseline`` machinery as the
file-local lint and the whole-program checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..lifecycle import (
    ACQUIRE_METHODS,
    DANGLING_RULE_REF,
    DEAD_CONFIG,
    DESCRIPTOR_HANDOFF_METHODS,
    DOUBLE_ENQUEUE,
    DOUBLE_ESTABLISH,
    LEAK_ON_RAISE,
    MAY_FAIL_TRANSITIONS,
    MUTATE_AFTER_SEND,
    REMOVE_BEFORE_ESTABLISH,
    SEND_METHODS,
    SESSION_CLASS_SUFFIX,
    SESSION_ESTABLISH_METHODS,
    SESSION_INSTALL_METHODS,
    SESSION_REMOVE_METHODS,
    USE_AFTER_REMOVE,
)
from ..program.cfg import CFG, CFGNode, CallSite, build_cfg
from ..program.checks import ProgramFinding, _apply_noqa, _stop_modules
from ..rules import _MUTATING_METHODS
from ..program.symbols import (
    FunctionInfo,
    SymbolTable,
    build_symbol_table,
)
from .engine import (
    Analysis,
    FunctionEffects,
    compute_effects,
    solve,
    _resolve_call_targets,
)

__all__ = [
    "CHECK_CODES",
    "DataflowReport",
    "analyze_dataflow",
]

CHECK_CODES = ("W005", "W006", "W007", "W008")


@dataclass
class DataflowReport:
    """Result of one typestate analysis run."""

    table: SymbolTable
    findings: List[ProgramFinding]
    stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "stats": dict(self.stats),
        }


def analyze_dataflow(
    files: Sequence[Tuple[str, str]],
    checks: Optional[Sequence[str]] = None,
) -> DataflowReport:
    """Run the typestate checks over (path, source) pairs."""
    wanted = set(checks if checks is not None else CHECK_CODES)
    table = build_symbol_table(files)
    effects = compute_effects(
        table,
        send_methods=tuple(SEND_METHODS),
        handoff_methods=tuple(DESCRIPTOR_HANDOFF_METHODS),
    )
    stops = tuple(_stop_modules(table))
    findings: List[ProgramFinding] = []
    cfgs = 0
    for qualname in sorted(table.functions):
        func = table.functions[qualname]
        if stops and func.module.startswith(stops):
            continue
        cfg = build_cfg(func.node, qualname)
        cfgs += 1
        if "W005" in wanted:
            findings.extend(_check_w005(table, func, cfg, effects))
        if "W006" in wanted:
            findings.extend(_check_w006(table, func, cfg))
        if "W007" in wanted:
            findings.extend(_check_w007(table, func, cfg, effects))
    if "W008" in wanted:
        findings.extend(_check_w008(table, stops))
    findings = _apply_noqa(files, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))
    return DataflowReport(
        table=table,
        findings=findings,
        stats={
            "functions": len(table.functions),
            "cfgs": cfgs,
            "raising_functions": sum(
                1 for e in effects.values() if e.may_raise
            ),
        },
    )


def _mk(
    func: FunctionInfo,
    lineno: int,
    code: str,
    message: str,
    chain: Tuple[str, ...] = (),
    severity: str = "error",
) -> ProgramFinding:
    return ProgramFinding(
        path=func.path,
        line=lineno,
        col=1,
        code=code,
        severity=severity,
        message=message,
        chain=chain,
    )


def _base_var(dotted: Optional[str]) -> Optional[str]:
    if not dotted:
        return None
    return dotted.split(".", 1)[0]


def _is_method_call(call: CallSite) -> bool:
    return isinstance(call.node.func, ast.Attribute)


def _handoff_arg(call: CallSite) -> Optional[ast.Name]:
    """The descriptor a call hands to a transport, if any.

    ``enqueue``/``send_to_nf``/``send_out`` always hand over their
    first positional argument; plain ``send`` only in its unary form
    (the bus's ``send(source, destination, message, ...)`` carries NF
    names, not descriptors).
    """
    if not _is_method_call(call) or not call.args:
        return None
    first = call.args[0]
    if not isinstance(first, ast.Name):
        return None
    if call.name in DESCRIPTOR_HANDOFF_METHODS:
        return first
    if call.name in SEND_METHODS and len(call.args) == 1:
        return first
    return None


# ===========================================================================
# W005 — descriptor typestate
# ===========================================================================
# State: frozenset of (var, send-site-line, evidence-step).  A var with
# a fact is in state "sent"; rebinding kills the fact.
class _W005State(Analysis):
    def __init__(self, qualname: str):
        self.qualname = qualname

    def initial(self, cfg: CFG) -> FrozenSet:
        return frozenset()

    def join(self, states) -> FrozenSet:
        return frozenset().union(*states)

    def transfer(self, node: CFGNode, state):
        out = set(state)
        if node.defs:
            kills = set(node.defs)
            out = {f for f in out if f[0] not in kills}
        for call in node.calls:
            arg = _handoff_arg(call)
            if arg is not None:
                out.add((
                    arg.id,
                    call.lineno,
                    f"-> {self.qualname}:{call.lineno} "
                    f"{call.name}() hands over '{arg.id}' "
                    "(state 'sent')",
                ))
        result = frozenset(out)
        return result, result


def _check_w005(
    table: SymbolTable,
    func: FunctionInfo,
    cfg: CFG,
    effects: Dict[str, FunctionEffects],
) -> List[ProgramFinding]:
    states = solve(cfg, _W005State(func.qualname))
    findings: Dict[Tuple[int, str], ProgramFinding] = {}

    def emit(lineno, kind, message, chain):
        findings.setdefault(
            (lineno, message),
            _mk(func, lineno, "W005", message, chain=tuple(chain)),
        )

    for node in cfg.nodes:
        state = states.get(node.index)
        if not state:
            continue
        sent: Dict[str, Tuple[int, str]] = {}
        for var, line, step in sorted(state, key=lambda f: f[1]):
            sent.setdefault(var, (line, step))
        # Field writes on a sent descriptor.
        for write in node.attr_writes:
            base = _base_var(write.receiver)
            if base in sent:
                _, step = sent[base]
                emit(
                    write.lineno,
                    MUTATE_AFTER_SEND,
                    f"{MUTATE_AFTER_SEND}: write to "
                    f"'{write.receiver}.{write.attr}' after '{base}' was "
                    "handed to the transport; state 'sent' allows no "
                    "field writes (allocated->filled->sent->consumed)",
                    [step,
                     f"-> {func.qualname}:{write.lineno} writes "
                     f".{write.attr} while '{base}' is in flight"],
                )
        for call in node.calls:
            # Re-send / re-enqueue of a sent descriptor.
            handoff = _handoff_arg(call)
            if handoff is not None:
                if handoff.id in sent:
                    _, step = sent[handoff.id]
                    emit(
                        call.lineno,
                        DOUBLE_ENQUEUE,
                        f"{DOUBLE_ENQUEUE}: '{handoff.id}' passed to "
                        f"{call.name}() while already in state "
                        "'sent'; two consumers would alias one "
                        "descriptor",
                        [step,
                         f"-> {func.qualname}:{call.lineno} "
                         f"{call.name}() hands '{handoff.id}' over again"],
                    )
                continue
            # Mutating container method on a sent descriptor's field.
            recv_base = _base_var(call.receiver)
            if (
                recv_base in sent
                and call.name in _MUTATING_METHODS
                and call.receiver != recv_base
            ):
                _, step = sent[recv_base]
                emit(
                    call.lineno,
                    MUTATE_AFTER_SEND,
                    f"{MUTATE_AFTER_SEND}: "
                    f"{call.receiver}.{call.name}() mutates "
                    f"'{recv_base}' after it was handed to the "
                    "transport; state 'sent' allows no mutation",
                    [step,
                     f"-> {func.qualname}:{call.lineno} "
                     f"{call.receiver}.{call.name}()"],
                )
            # Interprocedural: sent var passed to a mutating/sending
            # helper.
            sent_args = [
                (pos, arg.id)
                for pos, arg in enumerate(call.args)
                if isinstance(arg, ast.Name) and arg.id in sent
            ]
            if not sent_args:
                continue
            shift = 1 if _is_method_call(call) else 0
            for target in _resolve_call_targets(table, func, call.node):
                eff = effects.get(target)
                if eff is None:
                    continue
                for pos, var in sent_args:
                    callee_pos = pos + shift
                    _, step = sent[var]
                    here = (
                        f"-> {func.qualname}:{call.lineno} passes "
                        f"'{var}' to {target}"
                    )
                    if callee_pos in eff.mutates_params:
                        emit(
                            call.lineno,
                            MUTATE_AFTER_SEND,
                            f"{MUTATE_AFTER_SEND}: '{var}' in state "
                            f"'sent' is passed to "
                            f"{target.split('.')[-1]}(), which writes "
                            "to it; the receiver observes the "
                            "mutation",
                            [step, here,
                             *eff.mutates_params[callee_pos]],
                        )
                    if callee_pos in eff.sends_params:
                        emit(
                            call.lineno,
                            DOUBLE_ENQUEUE,
                            f"{DOUBLE_ENQUEUE}: '{var}' in state "
                            f"'sent' is passed to "
                            f"{target.split('.')[-1]}(), which hands "
                            "it to a transport again",
                            [step, here,
                             *eff.sends_params[callee_pos]],
                        )
    return list(findings.values())


# ===========================================================================
# W006 — session/rule lifecycle
# ===========================================================================
# Fact per session-typed local:
#   (var, states, fars, far_unknown, pdr_refs, origins)
# states: frozenset of lifecycle states (may-analysis: union on join)
# fars: frozenset of constant FAR ids installed on *every* path
#       (must-analysis: intersection on join)
# pdr_refs: frozenset of (far_id, lineno) constant references
# origins: frozenset of evidence steps for the chain
_Fact = Tuple[
    str, FrozenSet[str], FrozenSet[int], bool,
    FrozenSet[Tuple[int, int]], FrozenSet[str],
]


def _merge_facts(facts: List[_Fact]) -> _Fact:
    var = facts[0][0]
    states = frozenset().union(*(f[1] for f in facts))
    fars = facts[0][2]
    for f in facts[1:]:
        fars = fars & f[2]
    unknown = any(f[3] for f in facts)
    refs = frozenset().union(*(f[4] for f in facts))
    origins = frozenset().union(*(f[5] for f in facts))
    return (var, states, fars, unknown, refs, origins)


class _W006State(Analysis):
    def __init__(self, qualname: str):
        self.qualname = qualname

    def initial(self, cfg: CFG) -> FrozenSet[_Fact]:
        return frozenset()

    def join(self, states) -> FrozenSet[_Fact]:
        by_var: Dict[str, List[_Fact]] = {}
        for state in states:
            for fact in state:
                by_var.setdefault(fact[0], []).append(fact)
        return frozenset(
            _merge_facts(facts) for facts in by_var.values()
        )

    def transfer(self, node: CFGNode, state):
        facts: Dict[str, _Fact] = {f[0]: f for f in state}
        stmt = node.stmt
        killed = set(node.defs)

        # Binding forms that *create* facts suppress the kill of their
        # own target.
        created: Dict[str, _Fact] = {}
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                value = stmt.value
                if isinstance(value, ast.Call):
                    ctor = value.func
                    ctor_name = (
                        ctor.id if isinstance(ctor, ast.Name)
                        else ctor.attr if isinstance(ctor, ast.Attribute)
                        else ""
                    )
                    if ctor_name.endswith(SESSION_CLASS_SUFFIX):
                        created[target.id] = (
                            target.id,
                            frozenset({"created"}),
                            frozenset(),
                            False,
                            frozenset(),
                            frozenset({
                                f"-> {self.qualname}:{stmt.lineno} "
                                f"'{target.id}' = {ctor_name}(...) "
                                "(state 'created')",
                            }),
                        )
                    elif (
                        ctor_name in SESSION_REMOVE_METHODS
                        and isinstance(ctor, ast.Attribute)
                    ):
                        created[target.id] = (
                            target.id,
                            frozenset({"removed"}),
                            frozenset(),
                            True,  # rules of a foreign session: unknown
                            frozenset(),
                            frozenset({
                                f"-> {self.qualname}:{stmt.lineno} "
                                f"'{target.id}' = "
                                f"{ctor_name}(...) result "
                                "(state 'removed')",
                            }),
                        )
                elif isinstance(value, ast.Name) and value.id in facts:
                    old = facts[value.id]
                    created[target.id] = (target.id,) + old[1:]

        for name in killed:
            facts.pop(name, None)
        facts.update(created)

        # A raising call's lifecycle transition did not happen: the
        # exceptional edge carries the pre-call facts (a failed add
        # leaves the session 'removed', not 'installed').
        pre_call = frozenset(facts.values())

        for call in node.calls:
            self._apply_call(facts, call)

        # Escapes: returning or storing a tracked session unmonitors it.
        if isinstance(stmt, ast.Return) and isinstance(
            stmt.value, ast.Name
        ):
            facts.pop(stmt.value.id, None)
        if (
            isinstance(stmt, ast.Assign)
            and node.attr_writes
            and isinstance(stmt.value, ast.Name)
        ):
            facts.pop(stmt.value.id, None)

        result = frozenset(facts.values())
        return result, pre_call

    def _apply_call(self, facts: Dict[str, _Fact], call: CallSite) -> None:
        name = call.name
        if name in SESSION_ESTABLISH_METHODS and _is_method_call(call):
            for arg in call.args:
                if isinstance(arg, ast.Name) and arg.id in facts:
                    var, states, fars, unknown, refs, origins = (
                        facts[arg.id]
                    )
                    facts[arg.id] = (
                        var, frozenset({"installed"}), fars, unknown,
                        refs,
                        origins | {
                            f"-> {self.qualname}:{call.lineno} "
                            f"add('{var}') (state 'installed')",
                        },
                    )
            return
        if name in SESSION_REMOVE_METHODS and _is_method_call(call):
            for arg in call.args:
                base = None
                if isinstance(arg, ast.Attribute):
                    base = _base_var(_dotted_text(arg))
                if base in facts:
                    var, states, fars, unknown, refs, origins = facts[base]
                    facts[base] = (
                        var, frozenset({"removed"}), fars, unknown, refs,
                        origins | {
                            f"-> {self.qualname}:{call.lineno} "
                            f"remove(...) tears '{var}' down "
                            "(state 'removed')",
                        },
                    )
            return
        recv_base = _base_var(call.receiver)
        if name in SESSION_INSTALL_METHODS and recv_base in facts:
            var, states, fars, unknown, refs, origins = facts[recv_base]
            if name in ("install_far", "update_far"):
                far_id = _constant_kwarg(call, "far_id")
                if far_id is None:
                    unknown = True
                else:
                    fars = fars | {far_id}
            elif name == "install_pdr":
                far_id = _constant_kwarg(call, "far_id")
                if far_id is not None:
                    refs = refs | {(far_id, call.lineno)}
            facts[recv_base] = (var, states, fars, unknown, refs, origins)
            return
        # Any other call a tracked session participates in: escape.
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in facts:
                facts.pop(arg.id, None)


def _dotted_text(node: ast.AST) -> Optional[str]:
    from ..program.cfg import _dotted
    return _dotted(node)


def _constant_kwarg(call: CallSite, kwarg: str) -> Optional[int]:
    """Constant int value of ``kwarg`` on the (sole) ctor argument."""
    for arg in list(call.args) + [
        kw.value for kw in call.node.keywords
    ]:
        if isinstance(arg, ast.Call):
            for kw in arg.keywords:
                if kw.arg == kwarg and isinstance(kw.value, ast.Constant):
                    value = kw.value.value
                    if isinstance(value, int):
                        return value
    return None


def _check_w006(
    table: SymbolTable, func: FunctionInfo, cfg: CFG
) -> List[ProgramFinding]:
    states = solve(cfg, _W006State(func.qualname))
    findings: Dict[Tuple[int, str], ProgramFinding] = {}

    def emit(lineno, message, chain):
        findings.setdefault(
            (lineno, message),
            _mk(func, lineno, "W006", message, chain=tuple(chain)),
        )

    for node in cfg.nodes:
        state = states.get(node.index)
        if not state:
            continue
        facts: Dict[str, _Fact] = {f[0]: f for f in state}
        for call in node.calls:
            name = call.name
            recv_base = _base_var(call.receiver)
            if (
                name in SESSION_INSTALL_METHODS
                and recv_base in facts
                and "removed" in facts[recv_base][1]
            ):
                origins = sorted(facts[recv_base][5])
                emit(
                    call.lineno,
                    f"{USE_AFTER_REMOVE}: {name}() called on "
                    f"'{recv_base}' in state 'removed'; a torn-down "
                    "session's rules are invisible to the data plane",
                    origins + [
                        f"-> {func.qualname}:{call.lineno} "
                        f"{recv_base}.{name}() after remove",
                    ],
                )
            if name in SESSION_ESTABLISH_METHODS and _is_method_call(call):
                for arg in call.args:
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id in facts
                        and "installed" in facts[arg.id][1]
                    ):
                        origins = sorted(facts[arg.id][5])
                        emit(
                            call.lineno,
                            f"{DOUBLE_ESTABLISH}: '{arg.id}' added "
                            "while already in state 'installed' on "
                            "some path; two tables would own one "
                            "session",
                            origins + [
                                f"-> {func.qualname}:{call.lineno} "
                                f"add('{arg.id}') again",
                            ],
                        )
            if name in SESSION_REMOVE_METHODS and _is_method_call(call):
                for arg in call.args:
                    base = None
                    if isinstance(arg, ast.Attribute):
                        base = _base_var(_dotted_text(arg))
                    if (
                        base in facts
                        and facts[base][1] == frozenset({"created"})
                    ):
                        origins = sorted(facts[base][5])
                        emit(
                            call.lineno,
                            f"{REMOVE_BEFORE_ESTABLISH}: '{base}' is "
                            "removed but was never established "
                            "(state 'created'); the remove is a no-op "
                            "and the PFCP transaction is out of order",
                            origins + [
                                f"-> {func.qualname}:{call.lineno} "
                                "remove before add",
                            ],
                        )

    # Dangling constant FAR references at function exit.
    exit_state = states.get(cfg.exit)
    if exit_state:
        for fact in sorted(exit_state):
            var, fstates, fars, unknown, refs, origins = fact
            if unknown or "removed" in fstates:
                continue
            for far_id, lineno in sorted(refs):
                if far_id not in fars:
                    findings.setdefault(
                        (lineno, f"dangling-{var}-{far_id}"),
                        _mk(
                            func,
                            lineno,
                            "W006",
                            f"{DANGLING_RULE_REF}: PDR on '{var}' "
                            f"references far_id={far_id}, but no path "
                            "through "
                            f"{func.qualname.split('.')[-1]}() "
                            "installs that FAR; matching packets "
                            "would have no forwarding action",
                            chain=tuple(sorted(origins) + [
                                f"-> {func.qualname}:{lineno} "
                                f"install_pdr(far_id={far_id}) with no "
                                "matching install_far on every path",
                            ]),
                        ),
                    )
    return list(findings.values())


# ===========================================================================
# W007 — exception-safety resource leaks
# ===========================================================================
# Resource fact: (kind, key, desc, site-step, failed_releases)
_Resource = Tuple[str, str, str, str, int]

_ACQUIRE_KINDS = {
    "adopt": "slab slot",
    "pin": "shard pin",
    "acquire": "pool entry",
}


class _W007State(Analysis):
    def __init__(
        self,
        qualname: str,
        table: SymbolTable,
        func: FunctionInfo,
        effects: Dict[str, FunctionEffects],
    ):
        self.qualname = qualname
        self.table = table
        self.func = func
        self.effects = effects
        #: call lineno -> may-raise witness chain (memoized)
        self._raise_cache: Dict[int, Optional[Tuple[str, ...]]] = {}

    def initial(self, cfg: CFG) -> FrozenSet[_Resource]:
        return frozenset()

    def join(self, states) -> FrozenSet[_Resource]:
        return frozenset().union(*states)

    # -- raising-edge feasibility ---------------------------------------
    def node_raises(self, node: CFGNode) -> bool:
        if node.raises:
            return True
        return any(self.call_raises(c) is not None for c in node.calls)

    def call_raises(self, call: CallSite) -> Optional[Tuple[str, ...]]:
        cached = self._raise_cache.get(id(call.node))
        if id(call.node) in self._raise_cache:
            return cached
        witness: Optional[Tuple[str, ...]] = None
        if call.name in MAY_FAIL_TRANSITIONS:
            witness = (
                f"-> {call.name}() validates its argument and may "
                "raise (lifecycle contract)",
            )
        else:
            for target in _resolve_call_targets(
                self.table, self.func, call.node
            ):
                eff = self.effects.get(target)
                if eff is not None and eff.may_raise:
                    witness = eff.may_raise
                    break
        self._raise_cache[id(call.node)] = witness
        return witness

    # -- transfer --------------------------------------------------------
    def _classify(self, node: CFGNode, state):
        """Split one node's effect into (kills, acquires, releases)."""
        acquired: List[_Resource] = []
        released: Set[_Resource] = set()
        facts = set(state)
        by_session_var: Dict[str, List[_Resource]] = {}
        for res in facts:
            if res[0] == "session":
                by_session_var.setdefault(res[1], []).append(res)

        # Rebinding a held-session var drops the only reference.
        for name in node.defs:
            for res in by_session_var.get(name, ()):
                released.add(res)

        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in SESSION_REMOVE_METHODS
            ):
                recv = _dotted_text(value.func.value) or "the table"
                acquired.append((
                    "session",
                    target.id,
                    f"removed session '{target.id}'",
                    f"-> {self.qualname}:{stmt.lineno} "
                    f"'{target.id}' = remove(...) result from {recv} "
                    "-- the session now lives only in this local",
                    0,
                ))

        for call in node.calls:
            name = call.name
            recv = call.receiver or ""
            if name in ACQUIRE_METHODS and _is_method_call(call) and recv:
                kind = _ACQUIRE_KINDS[name]
                acquired.append((
                    kind,
                    recv,
                    f"{kind} acquired via {recv}.{name}()",
                    f"-> {self.qualname}:{call.lineno} "
                    f"{recv}.{name}() acquires a {kind}",
                    0,
                ))
            elif name in set(ACQUIRE_METHODS.values()):
                for res in list(facts):
                    if res[0] in _ACQUIRE_KINDS.values() and res[1] == recv:
                        released.add(res)
            elif name in SESSION_ESTABLISH_METHODS:
                for arg in call.args:
                    if isinstance(arg, ast.Name):
                        for res in by_session_var.get(arg.id, ()):
                            released.add(res)
            else:
                # Session var escaping into another call transfers
                # ownership (flush/buffer/listener helpers).
                for arg in call.args:
                    if isinstance(arg, ast.Name):
                        for res in by_session_var.get(arg.id, ()):
                            released.add(res)

        # Returning the held session transfers it to the caller.
        if isinstance(stmt, ast.Return) and isinstance(
            stmt.value, ast.Name
        ):
            for res in by_session_var.get(stmt.value.id, ()):
                released.add(res)
        return facts, acquired, released

    def transfer(self, node: CFGNode, state):
        facts, acquired, released = self._classify(node, state)
        normal = frozenset((facts - released) | set(acquired))
        if not node.raises and not self.node_raises(node):
            return normal, None
        # Exceptional edge: this-statement acquisitions did not happen;
        # attempted releases may themselves have failed.  One failed
        # release attempt keeps the obligation (that *is* the leak); a
        # second attempt — the recovery path — discharges it.
        exc = set(facts - released)
        for res in released:
            if res[0] == "session" and res[4] == 0:
                exc.add(res[:4] + (1,))
        return normal, frozenset(exc)

    def transfer_branch(self, node: CFGNode, state):
        """Path-sensitive refinement on two guard idioms.

        ``if not x.pin(...):`` — the truthy arm is the *failure* arm:
        nothing was acquired there.  ``if self.lb is not None:`` — a
        resource acquired *through* ``self.lb`` cannot be held on the
        arm where ``self.lb`` is None; dropping it there lets the
        guarded-release recovery pattern verify clean.
        """
        stmt = node.stmt
        if not isinstance(stmt, (ast.If, ast.While)):
            return None
        polarity = _acquire_test_polarity(stmt.test)
        if polarity is not None:
            _call, negated = polarity
            normal, exc = self.transfer(node, state)
            acquired_here = {
                res for res in normal - set(state)
                if res[0] in _ACQUIRE_KINDS.values()
            }
            if not acquired_here:
                return None
            without = frozenset(normal - acquired_here)
            if negated:
                return without, normal, exc  # truthy arm = acquire failed
            return normal, without, exc
        guard = _none_guard_key(stmt.test)
        if guard is not None:
            key, true_means_present = guard
            normal, exc = self.transfer(node, state)
            refined = frozenset(
                res for res in normal
                if res[1] != key and not res[1].startswith(key + ".")
            )
            if refined == normal:
                return None
            if true_means_present:
                return normal, refined, exc
            return refined, normal, exc
        return None


def _none_guard_key(test: ast.expr):
    """Recognize ``X is [not] None`` branch tests.

    Returns ``(dotted-X, true_means_present)`` where
    ``true_means_present`` is True for ``X is not None`` (the truthy
    arm is the one on which ``X`` — and resources acquired through it —
    exists), else None.
    """
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        key = _dotted_text(test.left)
        if key:
            return key, isinstance(test.ops[0], ast.IsNot)
    return None


def _acquire_test_polarity(test: ast.expr):
    """Locate an acquire call in a branch test.

    Returns (call, negated) for ``x.pin(...)`` / ``not x.pin(...)``
    (possibly as the last operand of an ``and``), else None.
    """
    expr = test
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
        expr = expr.values[-1]
    negated = False
    while isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        negated = not negated
        expr = expr.operand
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ACQUIRE_METHODS
    ):
        return expr, negated
    return None


def _check_w007(
    table: SymbolTable,
    func: FunctionInfo,
    cfg: CFG,
    effects: Dict[str, FunctionEffects],
) -> List[ProgramFinding]:
    analysis = _W007State(func.qualname, table, func, effects)
    states = solve(cfg, analysis)
    leaked = states.get(cfg.raise_exit)
    if not leaked:
        return []

    # Witness pass: attribute each leaked resource to the earliest
    # raising statement whose exceptional out-state still holds it.
    witnesses: Dict[Tuple[str, str, str], Tuple[int, Tuple[str, ...]]] = {}
    for node in sorted(cfg.nodes, key=lambda n: n.lineno):
        if node.stmt is None:
            continue
        state = states.get(node.index)
        if state is None or not analysis.node_raises(node):
            continue
        _, exc = analysis.transfer(node, state)
        if not exc:
            continue
        raise_why: Tuple[str, ...] = ()
        if node.raises:
            raise_why = (
                f"-> {func.qualname}:{node.lineno} raises",
            )
        else:
            for call in node.calls:
                chain = analysis.call_raises(call)
                if chain is not None:
                    raise_why = (
                        f"-> {func.qualname}:{node.lineno} "
                        f"{call.name}() may raise",
                    ) + chain
                    break
        for res in exc:
            key = res[:3]
            if key not in witnesses:
                witnesses[key] = (node.lineno, raise_why)

    findings: List[ProgramFinding] = []
    seen: Set[Tuple[str, str, str]] = set()
    for res in sorted(leaked):
        kind, rkey, desc, step, _failed = res
        key = (kind, rkey, desc)
        if key in seen:
            continue
        seen.add(key)
        lineno, why = witnesses.get(key, (func.lineno, ()))
        findings.append(
            _mk(
                func,
                lineno,
                "W007",
                f"{LEAK_ON_RAISE}: {desc} is still held when "
                f"{func.qualname.split('.')[-1]}() exits on a raising "
                "path; the release is not post-dominant and the "
                "resource leaks",
                chain=(step,) + why + (
                    "-> exceptional exit with state 'held' "
                    "(expected 'released')",
                ),
            )
        )
    return findings


# ===========================================================================
# W008 — constant-propagation dead config
# ===========================================================================
def _check_w008(
    table: SymbolTable, stops: Tuple[str, ...]
) -> List[ProgramFinding]:
    findings: List[ProgramFinding] = []

    # Every attribute name read anywhere in the analyzed tree.
    reads: Set[str] = set()
    discarded: List[Tuple[str, str, str, int]] = []
    for module in table.modules.values():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                reads.add(node.attr)
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in (
                    "gauge", "counter", "histogram"
                )
            ):
                discarded.append((
                    module.path,
                    module.name,
                    node.value.func.attr,
                    node.lineno,
                ))

    for cls_qualname in sorted(table.classes):
        cls = table.classes[cls_qualname]
        if not cls_qualname.split(".")[-1].endswith("Config"):
            continue
        if stops and cls.module.startswith(stops):
            continue
        for stmt in cls.node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            name = stmt.target.id
            if name.startswith("_") or name in reads:
                continue
            findings.append(
                ProgramFinding(
                    path=cls.path,
                    line=stmt.lineno,
                    col=1,
                    code="W008",
                    severity="warning",
                    message=(
                        f"{DEAD_CONFIG}: "
                        f"{cls_qualname.split('.')[-1]} flag "
                        f"'{name}' is never read on any reachable "
                        "path; it configures nothing"
                    ),
                    chain=(
                        f"-> declared at {cls_qualname}.{name}",
                        "-> no attribute read of "
                        f"'.{name}' anywhere in the analyzed tree",
                    ),
                )
            )

    for path, module, method, lineno in discarded:
        if stops and module.startswith(stops):
            continue
        findings.append(
            ProgramFinding(
                path=path,
                line=lineno,
                col=1,
                code="W008",
                severity="warning",
                message=(
                    f"{DEAD_CONFIG}: metric {method}() instrument is "
                    "created and immediately discarded; no reachable "
                    "path can observe it"
                ),
                chain=(
                    f"-> {module}:{lineno} {method}(...) result unused",
                ),
            )
        )
    return findings
