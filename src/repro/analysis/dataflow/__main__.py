"""``python -m repro.analysis.dataflow`` entry point."""

import sys

from .cli import main

sys.exit(main())
