"""Command line for the typestate dataflow checks (W005--W008).

Usage::

    python -m repro.analysis.dataflow [paths...] [options]

Paths default to ``src/repro``.  Exit codes follow the shared
convention of every analysis CLI in this repo:

* **0** — clean (all findings baseline-suppressed counts as clean)
* **1** — findings
* **2** — stale baseline (an entry's count exceeds the tree's actual
  occurrences — a fixed finding must be removed from the baseline) or
  unreadable input

``analysis-dataflow-baseline.json`` in the working directory is picked
up automatically, like the other analyzers' default baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from ..report import (
    EXIT_STALE,
    apply_baseline,
    emit_findings,
    iter_python_files,
    load_baseline,
    report_stale_entries,
    resolve_exit,
    stale_baseline_entries,
    write_baseline,
)
from .checks import CHECK_CODES, analyze_dataflow

__all__ = ["main", "DEFAULT_BASELINE_FILE"]

DEFAULT_BASELINE_FILE = "analysis-dataflow-baseline.json"


def load_files(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Read every python file under ``paths`` as (path, source)."""
    files: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            files.append((path, handle.read()))
    return files


def _parse_codes(raw: Optional[str]) -> Optional[set]:
    if not raw:
        return None
    return {code.strip().upper() for code in raw.split(",")}


def _active_codes(select: Optional[str], ignore: Optional[str]) -> set:
    keep = set(CHECK_CODES)
    selected = _parse_codes(select)
    if selected is not None:
        keep &= selected
    ignored = _parse_codes(ignore)
    if ignored is not None:
        keep -= ignored
    return keep


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.dataflow",
        description=(
            "Typestate dataflow checks: descriptor, session, and "
            "resource lifecycles verified statically on every path."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--format", choices=("text", "github"), default="text"
    )
    parser.add_argument("--baseline", metavar="PATH")
    parser.add_argument("--write-baseline", metavar="PATH", dest="write_to")
    parser.add_argument("--select", metavar="CODES")
    parser.add_argument("--ignore", metavar="CODES")
    args = parser.parse_args(argv)

    try:
        files = load_files(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STALE

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE_FILE):
        baseline_path = DEFAULT_BASELINE_FILE

    active = _active_codes(args.select, args.ignore)
    report = analyze_dataflow(files, checks=sorted(active))
    findings = report.findings

    if args.write_to:
        count = write_baseline(args.write_to, findings)
        print(
            f"wrote baseline {args.write_to}: {count} entr"
            f"{'y' if count == 1 else 'ies'} "
            f"({len(findings)} finding(s))"
        )
        return 0

    suppressed = 0
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_STALE
        stale = stale_baseline_entries(findings, baseline, codes=active)
        if stale:
            report_stale_entries(stale)
            return EXIT_STALE
        findings, suppressed = apply_baseline(findings, baseline)

    if args.as_json:
        payload = report.to_dict()
        payload["findings"] = [f.to_dict() for f in findings]
        payload["suppressed"] = suppressed
        print(json.dumps(payload, indent=2))
    else:
        emit_findings(findings, fmt=args.format, suppressed=suppressed)
    return resolve_exit(findings)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
