"""Pluggable lint rules for the determinism / zero-copy invariants.

Each rule is a subclass of :class:`Rule` registered through
:func:`register_rule`; the runner in :mod:`repro.analysis.lint` feeds
every rule a parsed :class:`FileContext` and collects the
:class:`Finding` objects it yields.  Rules are purely syntactic (AST +
source text) so the pass stays fast and dependency-free.

Rule catalog
------------

========  ==================================================================
R001      Wall-clock time (``time.time``, ``datetime.now``...) in
          simulation code; ``time.perf_counter`` is allowed only in
          ``experiments/`` and ``benchmarks/`` micro-benchmarks.
R002      Unseeded randomness: module-level ``random.*`` calls or a
          seedless ``random.Random()``; stochastic models must route
          through :class:`repro.sim.rng.StreamRNG`.
R003      Blocking ``time.sleep`` — simulation processes and
          ``MessageBus`` handlers must yield ``env.timeout`` instead.
R004      SBI / PFCP / NAS message dataclasses must be declared
          ``frozen=True`` (zero-copy descriptor passing hands out live
          references; mutation after send corrupts readers).
R005      Float ``==`` / ``!=`` against ``env.now`` — use
          ``pytest.approx`` or interval checks.
R006      Mutable default argument (list/dict/set) in ``src/repro``.
R007      ``print()`` in library code under ``src/repro`` — results
          belong in return values, metrics, or spans
          (:mod:`repro.obs`), not stdout.  CLI entry points
          (``__main__.py``, the lint runner) and ``experiments/`` /
          ``benchmarks/`` harnesses are exempt.
R008      Mutation of a shared UPF structure (PDR/FAR/QER/URR maps,
          session-table indexes, ``report_pending``) from a module
          outside the owning ``up`` package — the single-writer
          ownership model (§3.2) routes all rule changes through the
          UPF-C's PFCP handlers.
R009      A function mutates a rule container (``.pdrs``, ``.fars``,
          QER/URR maps) without calling ``.bump()`` on a rule epoch in
          the same function body, so flow-cache readers never observe
          the change.  ``__init__`` (construction before any reader
          exists) is exempt.
========  ==================================================================

Findings on a line carrying ``# repro: noqa`` (all rules) or
``# repro: noqa[R001,R005]`` (specific rules) are suppressed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "all_rules",
]


@dataclass(frozen=True)
class Finding:
    """One lint violation, formatted as ``file:line:code message``."""

    path: str
    line: int
    col: int
    code: str
    severity: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }


_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass
class FileContext:
    """A parsed source file handed to every rule."""

    path: str  # normalized posix-style path as given on the CLI
    source: str
    tree: ast.AST
    #: line number -> set of suppressed codes (empty set = all codes)
    noqa: Dict[int, frozenset] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        noqa: Dict[int, frozenset] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match:
                codes = match.group("codes")
                if codes:
                    noqa[lineno] = frozenset(
                        c.strip().upper() for c in codes.split(",") if c.strip()
                    )
                else:
                    noqa[lineno] = frozenset()
        return cls(path=path, source=source, tree=tree, noqa=noqa)

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.noqa.get(finding.line)
        if codes is None:
            return False
        return not codes or finding.code in codes

    def path_has(self, *parts: str) -> bool:
        """True if any path component matches one of ``parts``."""
        components = self.path.replace("\\", "/").split("/")
        return any(part in components for part in parts)

    def path_endswith(self, *suffixes: str) -> bool:
        norm = self.path.replace("\\", "/")
        return any(norm.endswith(suffix) for suffix in suffixes)


RULE_REGISTRY: Dict[str, Type["Rule"]] = {}


def register_rule(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the registry (keyed by code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List["Rule"]:
    """Fresh instances of every registered rule, ordered by code."""
    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


class Rule:
    """Base lint rule.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`severity` and
    implement :meth:`check`, yielding :class:`Finding` objects.
    """

    code: str = ""
    name: str = ""
    severity: str = "error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            severity=self.severity,
            message=message,
        )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# R001 — wall-clock time
# ---------------------------------------------------------------------------
@register_rule
class WallClockRule(Rule):
    """Simulated time comes from ``env.now``; wall-clock reads make runs
    irreproducible.  ``time.perf_counter`` is tolerated only inside the
    ``experiments/`` and ``benchmarks/`` micro-benchmark harnesses,
    which genuinely measure host CPU time."""

    code = "R001"
    name = "wall-clock-time"

    FORBIDDEN = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
    BENCH_ONLY = {"time.perf_counter", "time.perf_counter_ns"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_bench = ctx.path_has("experiments", "benchmarks")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if dotted in self.FORBIDDEN:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {dotted}() breaks deterministic "
                    "replay; derive time from env.now",
                )
            elif dotted in self.BENCH_ONLY and not in_bench:
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() is reserved for experiments/ and "
                    "benchmarks/ micro-benchmarks; simulation code must "
                    "use env.now",
                )


# ---------------------------------------------------------------------------
# R002 — unseeded randomness
# ---------------------------------------------------------------------------
@register_rule
class UnseededRandomRule(Rule):
    """Module-level ``random.*`` draws from interpreter-global state and
    breaks bit-for-bit reproducibility; draw from a named
    :class:`repro.sim.rng.StreamRNG` substream (or at minimum an
    explicitly seeded ``random.Random(seed)``)."""

    code = "R002"
    name = "unseeded-random"

    MODULE_FUNCS = {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.expovariate",
        "random.seed",
        "random.getrandbits",
        "random.betavariate",
        "random.normalvariate",
        "random.paretovariate",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if dotted in self.MODULE_FUNCS:
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() uses the global RNG; route through "
                    "repro.sim.rng.StreamRNG",
                )
            elif dotted == "random.Random" and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    "random.Random() without a seed is entropy-seeded; "
                    "pass an explicit seed or use repro.sim.rng",
                )


# ---------------------------------------------------------------------------
# R003 — blocking sleep
# ---------------------------------------------------------------------------
@register_rule
class BlockingSleepRule(Rule):
    """``time.sleep`` stalls the whole event loop — a MessageBus handler
    or Environment process must yield ``env.timeout(...)`` so simulated
    time, not host time, advances."""

    code = "R003"
    name = "blocking-sleep"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sleep_aliases = {"time.sleep"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_aliases.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in sleep_aliases:
                yield self.finding(
                    ctx,
                    node,
                    f"blocking {dotted}() stalls the event loop; yield "
                    "env.timeout(...) instead",
                )


# ---------------------------------------------------------------------------
# R004 — frozen message dataclasses
# ---------------------------------------------------------------------------
@register_rule
class FrozenMessageRule(Rule):
    """The zero-copy transports pass live references; a message mutated
    after send corrupts every reader holding its descriptor.  Message
    schema modules must declare every dataclass ``frozen=True``."""

    code = "R004"
    name = "unfrozen-message"

    MESSAGE_MODULES = (
        "sbi/messages.py",
        "pfcp/messages.py",
        "pfcp/ies.py",
        "pfcp/qos_ies.py",
        "ran/ngap.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.path_endswith(*self.MESSAGE_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                frozen = self._frozen_state(decorator)
                if frozen is False:
                    yield self.finding(
                        ctx,
                        node,
                        f"message dataclass {node.name} must be declared "
                        "@dataclass(frozen=True): descriptors are passed "
                        "by reference over shared memory",
                    )

    @staticmethod
    def _frozen_state(decorator: ast.AST) -> Optional[bool]:
        """True/False for a @dataclass decorator, None for others."""
        if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
            return False
        if isinstance(decorator, ast.Call):
            dotted = _dotted(decorator.func)
            if dotted in ("dataclass", "dataclasses.dataclass"):
                for kw in decorator.keywords:
                    if kw.arg == "frozen":
                        return (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        )
                return False
        if isinstance(decorator, ast.Attribute):
            if _dotted(decorator) == "dataclasses.dataclass":
                return False
        return None


# ---------------------------------------------------------------------------
# R005 — float equality against env.now
# ---------------------------------------------------------------------------
@register_rule
class NowEqualityRule(Rule):
    """``env.now`` accumulates float timeouts; exact equality is a
    rounding-error time bomb.  Compare through ``pytest.approx`` (or an
    explicit tolerance)."""

    code = "R005"
    name = "float-eq-now"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if not any(self._is_now(op) for op in operands):
                continue
            if any(self._is_approx(op) for op in operands):
                continue
            yield self.finding(
                ctx,
                node,
                "exact float comparison against env.now; wrap the "
                "expected value in pytest.approx(...)",
            )

    @staticmethod
    def _is_now(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "now"

    @staticmethod
    def _is_approx(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted and dotted.split(".")[-1] == "approx":
                return True
        return False


# ---------------------------------------------------------------------------
# R006 — mutable default arguments
# ---------------------------------------------------------------------------
@register_rule
class MutableDefaultRule(Rule):
    """A mutable default is shared across every call — state leaks
    between simulated runs and across NF instances."""

    code = "R006"
    name = "mutable-default-arg"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.path_has("repro", "src"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: List[Tuple[ast.AST, str]] = []
            args = node.args
            pos = args.posonlyargs + args.args
            for arg, default in zip(pos[len(pos) - len(args.defaults):],
                                    args.defaults):
                defaults.append((default, arg.arg))
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    defaults.append((default, arg.arg))
            for default, arg_name in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default for argument {arg_name!r} in "
                        f"{node.name}(); use None and construct inside",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            return dotted in ("list", "dict", "set", "bytearray")
        return False


# ---------------------------------------------------------------------------
# R007 — print() in library code
# ---------------------------------------------------------------------------
@register_rule
class PrintInLibraryRule(Rule):
    """Library modules must stay silent: a ``print`` buried in the
    platform produces interleaved noise under concurrent procedures and
    tempts ad-hoc debugging output into commits.  Results belong in
    return values, metrics, or spans (:mod:`repro.obs`).  CLI entry
    points and experiment harnesses legitimately talk to stdout and are
    exempt."""

    code = "R007"
    name = "print-in-library"
    severity = "warning"

    #: Paths allowed to print: console entry points, the lint runner,
    #: and the race-trace replayer (their findings are their stdout
    #: contract).
    EXEMPT_SUFFIXES = ("__main__.py", "analysis/lint.py",
                       "analysis/races.py", "analysis/program/cli.py",
                       "analysis/report.py", "analysis/dataflow/cli.py")
    EXEMPT_DIRS = ("experiments", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.path_has("repro", "src"):
            return
        if ctx.path_has(*self.EXEMPT_DIRS):
            return
        if ctx.path_endswith(*self.EXEMPT_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code; return data, record a "
                    "metric, or emit a span via repro.obs instead",
                )


# ---------------------------------------------------------------------------
# Shared-state ownership helpers (R008 / R009)
# ---------------------------------------------------------------------------

#: Method names that mutate a dict/list container in place.
_MUTATING_METHODS = frozenset({
    "pop", "popitem", "clear", "update", "setdefault",
    "append", "extend", "insert", "remove",
})


def _attr_mutations(
    tree: ast.AST, attrs: frozenset
) -> Iterator[Tuple[ast.AST, str, Optional[str]]]:
    """Yield ``(node, attr, receiver)`` for each in-place mutation of an
    attribute named in ``attrs``.

    Covers rebinding (``x.attr = v``, ``x.attr += v``), item writes
    (``x.attr[k] = v``, ``del x.attr[k]``, ``x.attr[k] += v``) and
    mutating method calls (``x.attr.pop(k)``...).  ``receiver`` is the
    base name the attribute hangs off (``"session"`` for
    ``session.pdrs``), or None for computed receivers.
    """

    def receiver_name(attr_node: ast.Attribute) -> Optional[str]:
        value = attr_node.value
        if isinstance(value, ast.Name):
            return value.id
        return None

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr in attrs:
                    yield node, target.attr, receiver_name(target)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ) and target.value.attr in attrs:
                    yield node, target.value.attr, receiver_name(target.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ) and target.value.attr in attrs:
                    yield node, target.value.attr, receiver_name(target.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in attrs
            ):
                yield node, func.value.attr, receiver_name(func.value)


# ---------------------------------------------------------------------------
# R008 — non-owner mutation of shared UPF structures
# ---------------------------------------------------------------------------
@register_rule
class NonOwnerMutationRule(Rule):
    """The UPF-C/UPF-U split has a single-writer discipline: rule maps
    and session indexes are written only by the ``up`` package (PFCP
    handlers on the C side, runtime state on the U side).  A mutation
    reaching in from any other module bypasses both the epoch publish
    protocol and the race detector's ownership model."""

    code = "R008"
    name = "non-owner-shared-write"

    #: Attribute names registered with the race detector, owned by the
    #: ``up`` package.
    SHARED_ATTRS = frozenset({
        "pdrs", "fars", "qers", "qer_enforcers", "usage_counters",
        "report_pending", "_by_seid",
        # Hot-store slab internals (replaced the dual _by_teid /
        # _by_ue_ip object dicts); membership writes stay UPF-C-only.
        "_teid_index", "_ue_ip_index", "_slab", "_free",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_has("up"):
            return
        for node, attr, receiver in _attr_mutations(
            ctx.tree, self.SHARED_ATTRS
        ):
            if receiver == "self":
                # A class defining its own attribute of the same name
                # owns it; the shared structures are never `self` here.
                continue
            yield self.finding(
                ctx,
                node,
                f"mutation of shared UPF structure .{attr} outside the "
                "owning up/ package; route the change through the "
                "UPF-C PFCP handlers (single-writer model, §3.2)",
            )


# ---------------------------------------------------------------------------
# R009 — rule mutation without an epoch bump
# ---------------------------------------------------------------------------
@register_rule
class MissingEpochBumpRule(Rule):
    """Rule changes are *published* by ``RuleEpoch.bump()``; the flow
    cache compares its snapshot epoch against the table's on every hit.
    A function that mutates ``.pdrs``/``.fars``/QER/URR containers but
    never bumps an epoch leaves stale fast-path entries serving the old
    rules indefinitely."""

    code = "R009"
    name = "missing-epoch-bump"

    RULE_ATTRS = frozenset({
        "pdrs", "fars", "qers", "qer_enforcers", "usage_counters",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                # Construction happens before any reader holds a
                # snapshot; there is nothing to publish yet.
                continue
            mutations = list(_attr_mutations(node, self.RULE_ATTRS))
            if not mutations:
                continue
            if self._has_bump(node):
                continue
            first, attr, _ = mutations[0]
            yield self.finding(
                ctx,
                first,
                f"{node.name}() mutates rule container .{attr} without "
                "calling .bump() on a rule epoch in the same function; "
                "flow-cache readers will keep serving the old rules",
            )

    @staticmethod
    def _has_bump(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "bump"
            ):
                return True
        return False
