"""Canonical lifecycle vocabulary shared by static and dynamic checks.

The dynamic sanitizer (:mod:`repro.analysis.sanitizer`), the race
detector, and the static typestate checks
(:mod:`repro.analysis.dataflow`) all reason about the *same* three
protocols.  This module is the single source of the state names,
transition tables, and violation-kind strings, so a W005 finding at
lint time and a sanitizer violation at run time cite identical
vocabulary and an operator can correlate them 1:1.

Protocols
---------
**Descriptor** (zero-copy message/descriptor handoff)::

    allocated -> filled -> sent -> consumed

  A field write or re-enqueue in state ``sent`` is the
  mutate-after-send / double-enqueue hazard class; the transports'
  runtime states map onto the protocol via
  :data:`TRANSPORT_STATE_NAMES`.

**Session** (PFCP establish/modify/delete)::

    created -> installed -> removed -> installed   (re-establish/rehome)

  Rule installs (``install_pdr`` et al.) are legal only in ``created``
  or ``installed``; ``remove`` of a never-installed session and any
  rule use after ``remove`` are violations.

**Resource** (slab slot / buffer entry / pinned shard)::

    held -> released

  Acquired by :data:`ACQUIRE_METHODS`, discharged by the paired
  release, by an ownership transfer (return/escape), or by a
  re-install (:data:`SESSION_INSTALL_TRANSFER`).  A raising edge on
  which the release is not post-dominant leaks the resource.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

__all__ = [
    "DESCRIPTOR_STATES",
    "DESCRIPTOR_TRANSITIONS",
    "SESSION_STATES",
    "RESOURCE_STATES",
    "TRANSPORT_IN_FLIGHT",
    "TRANSPORT_IN_RING",
    "TRANSPORT_CHECKED_OUT",
    "TRANSPORT_STATE_NAMES",
    "MUTATE_AFTER_SEND",
    "DOUBLE_ENQUEUE",
    "USE_AFTER_DEQUEUE",
    "USE_AFTER_REMOVE",
    "DOUBLE_ESTABLISH",
    "REMOVE_BEFORE_ESTABLISH",
    "DANGLING_RULE_REF",
    "LEAK_ON_RAISE",
    "DEAD_CONFIG",
    "SEND_METHODS",
    "DESCRIPTOR_HANDOFF_METHODS",
    "SESSION_INSTALL_METHODS",
    "SESSION_ESTABLISH_METHODS",
    "SESSION_REMOVE_METHODS",
    "SESSION_INSTALL_TRANSFER",
    "SESSION_CLASS_SUFFIX",
    "ACQUIRE_METHODS",
    "MAY_FAIL_TRANSITIONS",
]

# -- state machines ----------------------------------------------------------

#: Descriptor protocol states, in lifecycle order.
DESCRIPTOR_STATES: Tuple[str, ...] = (
    "allocated", "filled", "sent", "consumed",
)

#: Legal descriptor transitions (state -> successor states).
DESCRIPTOR_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "allocated": ("filled",),
    "filled": ("filled", "sent"),
    "sent": ("consumed",),
    "consumed": ("filled", "sent"),  # recycled via a pool
}

#: Session protocol states.
SESSION_STATES: Tuple[str, ...] = ("created", "installed", "removed")

#: Resource (slab slot / buffer entry / pinned shard) states.
RESOURCE_STATES: Tuple[str, ...] = ("held", "released")

#: The transports' runtime ownership states (values of the sanitizer's
#: internal ``_State`` enum) and the descriptor-protocol state each
#: corresponds to.
TRANSPORT_IN_FLIGHT = "in-flight"
TRANSPORT_IN_RING = "in-ring"
TRANSPORT_CHECKED_OUT = "checked-out"
TRANSPORT_STATE_NAMES: Dict[str, str] = {
    TRANSPORT_IN_FLIGHT: "sent",
    TRANSPORT_IN_RING: "sent",
    TRANSPORT_CHECKED_OUT: "consumed",
}

# -- violation kinds ---------------------------------------------------------
# One string per hazard, used verbatim by the sanitizer's Violation.kind
# and embedded verbatim in the corresponding static finding messages.

MUTATE_AFTER_SEND = "mutate-after-send"
DOUBLE_ENQUEUE = "double-enqueue"
USE_AFTER_DEQUEUE = "use-after-dequeue"
USE_AFTER_REMOVE = "use-after-remove"
DOUBLE_ESTABLISH = "double-establish"
REMOVE_BEFORE_ESTABLISH = "remove-before-establish"
DANGLING_RULE_REF = "dangling-rule-reference"
LEAK_ON_RAISE = "leak-on-raise"
DEAD_CONFIG = "dead-config"

# -- API shapes the static checks key on -------------------------------------

#: Method names that hand a descriptor to a transport (ownership
#: transfer: the argument enters state ``sent``).
SEND_METHODS: FrozenSet[str] = frozenset({"send", "enqueue"})

#: Methods whose *first positional argument* is always a descriptor
#: handoff regardless of arity.  Plain ``send`` participates only when
#: called with exactly one positional argument — the simulation bus's
#: ``send(source, destination, message, ...)`` models transport *cost*,
#: not ownership transfer, and its leading args are NF names.
DESCRIPTOR_HANDOFF_METHODS: FrozenSet[str] = frozenset({
    "enqueue", "send_to_nf", "send_out",
})

#: Rule-lifecycle methods legal only on a non-``removed`` session.
SESSION_INSTALL_METHODS: FrozenSet[str] = frozenset({
    "install_pdr",
    "remove_pdr",
    "install_far",
    "update_far",
    "install_qer",
    "install_qer_enforcer",
    "install_usage_counter",
    "match_pdr",
})

#: Table methods that establish a session (argument -> ``installed``).
SESSION_ESTABLISH_METHODS: FrozenSet[str] = frozenset({"add"})

#: Table methods that tear a session down (by SEID; the *result* of the
#: call is the removed session object, now ``removed``/``held``).
SESSION_REMOVE_METHODS: FrozenSet[str] = frozenset({"remove"})

#: Passing a removed session back to an establish method transfers
#: ownership into the target table (the rehome/re-establish idiom) and
#: discharges the held-session obligation.
SESSION_INSTALL_TRANSFER: FrozenSet[str] = SESSION_ESTABLISH_METHODS

#: Class-name suffix identifying session objects for W006.
SESSION_CLASS_SUFFIX = "Session"

#: Resource-acquisition methods and their paired release method.
#: ``adopt`` = hot-store slab slot, ``pin`` = load-balancer shard
#: affinity, ``acquire`` = generic pool checkout.
ACQUIRE_METHODS: Dict[str, str] = {
    "adopt": "release",
    "pin": "release",
    "acquire": "release",
}

#: Lifecycle transitions whose implementations validate their argument
#: and may raise (documented API contract: ``SessionTable.add`` rejects
#: duplicate SEID/TEID/UE-IP, ``HotSessionStore.adopt`` rejects
#: duplicate slots, ``UEAwareLoadBalancer.pin`` rejects full units).
#: The static checks give calls to these names a raising edge even when
#: the receiver's type cannot be resolved.
MAY_FAIL_TRANSITIONS: FrozenSet[str] = frozenset({"add", "adopt", "pin"})
