"""Shared finding emission, baselines, and exit-code semantics.

Every analysis CLI in :mod:`repro.analysis` — the file-local lint
(``repro.analysis.lint``), the whole-program checks
(``repro.analysis.program``), the typestate dataflow engine
(``repro.analysis.dataflow``), and the ``python -m repro.analysis all``
umbrella — renders findings and decides its exit status through this
module, so CI can treat them interchangeably.

Exit codes (uniform across all CLIs)
------------------------------------
======  ====================================================================
0       Clean: no unsuppressed findings.
1       Findings: at least one unsuppressed finding was reported.
2       Stale configuration: a committed baseline entry counts more
        occurrences than the tree actually has (debt was paid off but
        the baseline was not regenerated), a budget entry names a
        function that no longer exists, or an input path is missing.
======  ====================================================================

Baseline entries are keyed ``(path, code, message)`` with an occurrence
count, **not** line numbers, so unrelated edits that shift lines do not
invalidate the baseline; adding a second instance of a baselined
violation in the same file still fails, and *removing* the violation
without regenerating the baseline fails with exit 2 — baselines cannot
quietly outlive the debt they were recording.
"""

from __future__ import annotations

import collections
import json
import os
import sys
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    TextIO,
    Tuple,
)

from .rules import Finding

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_STALE",
    "BaselineKey",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "stale_baseline_entries",
    "report_stale_entries",
    "github_annotation",
    "emit_findings",
    "resolve_exit",
]

#: No unsuppressed findings.
EXIT_CLEAN = 0
#: At least one unsuppressed finding.
EXIT_FINDINGS = 1
#: Stale baseline/budget entry or unreadable input.
EXIT_STALE = 2


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return out


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

#: Baseline key: stable across line-number churn.
BaselineKey = Tuple[str, str, str]


def _baseline_key(finding: Finding) -> BaselineKey:
    return (finding.path.replace("\\", "/"), finding.code, finding.message)


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Serialize the findings as a baseline file; returns entry count."""
    counts: Dict[BaselineKey, int] = collections.Counter(
        _baseline_key(f) for f in findings
    )
    entries = [
        {"path": p, "code": c, "message": m, "count": n}
        for (p, c, m), n in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "entries": entries}, handle, indent=2)
        handle.write("\n")
    return len(entries)


def load_baseline(path: str) -> Dict[BaselineKey, int]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    counts: Dict[BaselineKey, int] = collections.Counter()
    for entry in data.get("entries", []):
        key = (entry["path"], entry["code"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[BaselineKey, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline.

    Each baseline entry absorbs up to ``count`` occurrences of the same
    (path, code, message); any excess is reported as new.
    """
    budget = collections.Counter(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = _baseline_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def stale_baseline_entries(
    findings: Sequence[Finding],
    baseline: Dict[BaselineKey, int],
    codes: Optional[Set[str]] = None,
) -> List[Tuple[BaselineKey, int, int]]:
    """Baseline entries counting more debt than the tree still has.

    Returns ``(key, expected, actual)`` for every entry whose recorded
    ``count`` exceeds the number of matching findings in this run.  A
    stale entry means a violation was fixed without regenerating the
    baseline — left alone it would silently absorb the *next*
    regression, so it fails the run (exit 2), mirroring the stale
    budget-entry rule of ``repro.analysis.program``.

    ``codes`` restricts the check to entries whose code was actually
    run (``--select``/``--ignore`` must not make unrelated entries look
    stale).
    """
    actual: Dict[BaselineKey, int] = collections.Counter(
        _baseline_key(f) for f in findings
    )
    stale: List[Tuple[BaselineKey, int, int]] = []
    for key, expected in sorted(baseline.items()):
        if codes is not None and key[1] not in codes:
            continue
        if actual[key] < expected:
            stale.append((key, expected, actual[key]))
    return stale


def report_stale_entries(
    stale: Sequence[Tuple[BaselineKey, int, int]],
    stream: Optional[TextIO] = None,
) -> None:
    """Print stale-baseline diagnostics (one line per entry)."""
    stream = stream if stream is not None else sys.stderr
    for (path, code, message), expected, actual in stale:
        print(
            f"error: stale baseline entry: {path}: {code} {message!r} "
            f"records {expected} occurrence(s) but the tree has {actual} "
            "(regenerate with --write-baseline)",
            file=stream,
        )


def github_annotation(finding: Finding) -> str:
    """Render a finding as a GitHub Actions workflow command so CI
    findings annotate the offending PR line."""
    level = "error" if finding.severity == "error" else "warning"
    # The message payload must be single-line; %0A encodes newlines.
    message = f"{finding.code} {finding.message}".replace(
        "%", "%25"
    ).replace("\r", "").replace("\n", "%0A")
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.code}::{message}"
    )


def emit_findings(
    findings: Sequence[Finding],
    fmt: str = "text",
    suppressed: int = 0,
    stream: Optional[TextIO] = None,
) -> None:
    """Print findings in ``text`` or ``github`` format (shared by every
    analysis CLI; JSON payloads differ per tool and stay in the CLIs)."""
    stream = stream if stream is not None else sys.stdout
    if fmt == "github":
        for finding in findings:
            print(github_annotation(finding), file=stream)
        return
    for finding in findings:
        print(finding.format(), file=stream)
    if findings:
        print(f"{len(findings)} finding(s)", file=stream)
    if suppressed:
        print(f"{suppressed} baselined finding(s) suppressed", file=stream)


def resolve_exit(findings: Sequence[Finding]) -> int:
    """The uniform exit code for a completed run (0 clean, 1 findings)."""
    return EXIT_FINDINGS if findings else EXIT_CLEAN
