"""Project lint runner: ``python -m repro.analysis.lint src tests``.

Walks the given files/directories, parses every ``*.py`` file once, and
runs each registered :class:`~repro.analysis.rules.Rule` over it.
Findings print as ``file:line:col: CODE [severity] message`` (or JSON
with ``--json``); the process exits non-zero when any unsuppressed
finding remains, which is what CI gates on.

Options
-------
``--json``
    Emit findings as a JSON array (machine-readable mode).
``--select R001,R004``
    Run only the listed rule codes.
``--ignore R006``
    Skip the listed rule codes.
``--list-rules``
    Print the rule catalog and exit.
``--baseline analysis-baseline.json``
    Suppress findings recorded in a committed baseline file; only *new*
    findings fail the run.  Lets a new rule land with known debt while
    still gating every fresh violation.
``--write-baseline analysis-baseline.json``
    Record the current findings as the baseline and exit 0.

Baseline entries are keyed ``(path, code, message)`` with an occurrence
count, **not** line numbers, so unrelated edits that shift lines do not
invalidate the baseline; adding a second instance of a baselined
violation in the same file still fails.
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .rules import FileContext, Finding, Rule, all_rules

__all__ = [
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "github_annotation",
    "main",
]


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return out


def lint_file(
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    source: Optional[str] = None,
) -> List[Finding]:
    """Run the rule set over one file; returns unsuppressed findings."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="R000",
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint every python file under ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

#: Baseline key: stable across line-number churn.
BaselineKey = Tuple[str, str, str]


def _baseline_key(finding: Finding) -> BaselineKey:
    return (finding.path.replace("\\", "/"), finding.code, finding.message)


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Serialize the findings as a baseline file; returns entry count."""
    counts: Dict[BaselineKey, int] = collections.Counter(
        _baseline_key(f) for f in findings
    )
    entries = [
        {"path": p, "code": c, "message": m, "count": n}
        for (p, c, m), n in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "entries": entries}, handle, indent=2)
        handle.write("\n")
    return len(entries)


def load_baseline(path: str) -> Dict[BaselineKey, int]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    counts: Dict[BaselineKey, int] = collections.Counter()
    for entry in data.get("entries", []):
        key = (entry["path"], entry["code"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[BaselineKey, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline.

    Each baseline entry absorbs up to ``count`` occurrences of the same
    (path, code, message); any excess is reported as new.
    """
    budget = collections.Counter(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = _baseline_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def github_annotation(finding: Finding) -> str:
    """Render a finding as a GitHub Actions workflow command so CI
    findings annotate the offending PR line."""
    level = "error" if finding.severity == "error" else "warning"
    # The message payload must be single-line; %0A encodes newlines.
    message = f"{finding.code} {finding.message}".replace(
        "%", "%25"
    ).replace("\r", "").replace("\n", "%0A")
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.code}::{message}"
    )


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = {code.strip().upper() for code in select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            raise SystemExit(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = {code.strip().upper() for code in ignore.split(",")}
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism & zero-copy lint for the L25GC reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"])
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--format", choices=("text", "github"), default="text"
    )
    parser.add_argument("--select", metavar="CODES")
    parser.add_argument("--ignore", metavar="CODES")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--baseline", metavar="PATH")
    parser.add_argument("--write-baseline", metavar="PATH", dest="write_to")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            doc = (type(rule).__doc__ or "").strip().split("\n")[0]
            print(f"{rule.code}  {rule.name:<22} {doc}")
        return 0

    rules = _select_rules(args.select, args.ignore)
    try:
        findings = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_to:
        count = write_baseline(args.write_to, findings)
        print(
            f"wrote baseline {args.write_to}: {count} entr"
            f"{'y' if count == 1 else 'ies'} "
            f"({len(findings)} finding(s))"
        )
        return 0

    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, baseline)

    if args.as_json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "github":
        for finding in findings:
            print(github_annotation(finding))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"{len(findings)} finding(s)")
        if suppressed:
            print(f"{suppressed} baselined finding(s) suppressed")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
