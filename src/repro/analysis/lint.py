"""Project lint runner: ``python -m repro.analysis.lint src tests``.

Walks the given files/directories, parses every ``*.py`` file once, and
runs each registered :class:`~repro.analysis.rules.Rule` over it.
Findings print as ``file:line:col: CODE [severity] message`` (or JSON
with ``--json``); the process exits non-zero when any unsuppressed
finding remains, which is what CI gates on.

Options
-------
``--json``
    Emit findings as a JSON array (machine-readable mode).
``--select R001,R004``
    Run only the listed rule codes.
``--ignore R006``
    Skip the listed rule codes.
``--list-rules``
    Print the rule catalog and exit.
``--baseline analysis-baseline.json``
    Suppress findings recorded in a committed baseline file; only *new*
    findings fail the run.  Lets a new rule land with known debt while
    still gating every fresh violation.
``--write-baseline analysis-baseline.json``
    Record the current findings as the baseline and exit 0.

Exit codes are the uniform :mod:`repro.analysis.report` semantics —
0 clean, 1 findings, 2 stale baseline entry / unreadable input.
Baseline entries are keyed ``(path, code, message)`` with an occurrence
count, **not** line numbers, so unrelated edits that shift lines do not
invalidate the baseline; adding a second instance of a baselined
violation in the same file still fails, and a baseline entry whose
violation no longer exists fails the run with exit 2 until the
baseline is regenerated.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

# Baseline/emission machinery lives in the shared report module; the
# historical names are re-exported here because tests and downstream
# tooling import them from the lint CLI.
from .report import (
    EXIT_STALE,
    BaselineKey,  # noqa: F401  (re-export)
    apply_baseline,
    emit_findings,
    github_annotation,
    iter_python_files,
    load_baseline,
    report_stale_entries,
    resolve_exit,
    stale_baseline_entries,
    write_baseline,
)
from .rules import FileContext, Finding, Rule, all_rules

__all__ = [
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "github_annotation",
    "main",
]


def lint_file(
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    source: Optional[str] = None,
) -> List[Finding]:
    """Run the rule set over one file; returns unsuppressed findings."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="R000",
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint every python file under ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = {code.strip().upper() for code in select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            raise SystemExit(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = {code.strip().upper() for code in ignore.split(",")}
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism & zero-copy lint for the L25GC reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"])
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--format", choices=("text", "github"), default="text"
    )
    parser.add_argument("--select", metavar="CODES")
    parser.add_argument("--ignore", metavar="CODES")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--baseline", metavar="PATH")
    parser.add_argument("--write-baseline", metavar="PATH", dest="write_to")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            doc = (type(rule).__doc__ or "").strip().split("\n")[0]
            print(f"{rule.code}  {rule.name:<22} {doc}")
        return 0

    rules = _select_rules(args.select, args.ignore)
    try:
        findings = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STALE

    if args.write_to:
        count = write_baseline(args.write_to, findings)
        print(
            f"wrote baseline {args.write_to}: {count} entr"
            f"{'y' if count == 1 else 'ies'} "
            f"({len(findings)} finding(s))"
        )
        return 0

    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_STALE
        # R000 (syntax error) is always live even under --select.
        active = {rule.code for rule in rules} | {"R000"}
        stale = stale_baseline_entries(findings, baseline, codes=active)
        if stale:
            report_stale_entries(stale)
            return EXIT_STALE
        findings, suppressed = apply_baseline(findings, baseline)

    if args.as_json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        emit_findings(findings, fmt=args.format, suppressed=suppressed)
    return resolve_exit(findings)


if __name__ == "__main__":
    sys.exit(main())
