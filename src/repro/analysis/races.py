"""Shared-state race detector for the UPF-C / UPF-U memory model.

L25GC's "zero-cost state update" (§3.2) works because the factored UPF
obeys a strict single-writer discipline over the session state in
shared hugepages: the UPF-C writes PDR/FAR/QER/URR rules, the UPF-U
only reads them; the UPF-U owns the runtime state (smart buffer,
report-pending flag, flow cache); every rule mutation is published by
bumping the shared :class:`~repro.up.flow_cache.RuleEpoch`.  Nothing in
the reproduction *enforced* that discipline — this module does.

When enabled (off by default; disabled cost is one global ``is None``
check per hook), shared structures register themselves with a declared
owner role and lightweight access hooks record, for every read/write:
the acting *role* (explicit :meth:`RaceDetector.role` scope, else the
name of the active simulation process), the simulated time, and the
engine's yield generation (each resume of a process is one yield-to-
yield atomic section).  Three hazard classes are flagged:

* **conflicting-access** — two different roles touch the same part of
  a structure at the same simulated time from different atomic
  sections, at least one writing.  Same-time accesses from different
  sections are unordered on real concurrent hardware, so the pair is a
  data race; accesses inside one atomic section are program-ordered
  and never conflict.
* **non-owner-write** — a write performed under a role that is not the
  declared owner of that part (e.g. the UPF-C clearing the UPF-U's
  ``report_pending`` flag).
* **missing-epoch-bump** — a rule-container mutation not followed by a
  ``RuleEpoch.bump()`` before the process's next yield, which would
  leave stale decisions live in the flow cache.

Accesses with no role (test-harness code outside any role scope or
named process) are recorded but exempt from the checks: setup and
teardown code plays the part of the operator CLI, not of a production
process.

Each report carries both access sites and, for writes of hooked
values, a field-level diff (the same canonical-form machinery the
descriptor sanitizer uses).

Usage::

    from repro.analysis import races

    with races.traced() as det:
        run_simulation()
    assert not det.violations, det.report()

or run the whole suite under it (``pytest --race``), optionally
recording an access trace (``--race-trace=trace.jsonl``) that can be
re-analysed offline with ``python -m repro.analysis.races trace.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .sanitizer import _canon, _diff, _short

__all__ = [
    "RaceError",
    "Access",
    "RaceViolation",
    "RaceDetector",
    "enable",
    "disable",
    "active",
    "traced",
    "replay",
    "main",
]


class RaceError(AssertionError):
    """Raised in strict mode the moment a violation is detected."""


#: Sentinel distinguishing "no value supplied" from "value is None".
_UNSET = object()

#: Basenames of the instrumented modules, skipped when walking the
#: stack for the user-level access site (same convention as the
#: descriptor sanitizer's ``_call_site``).
_SKIP_FILES = frozenset(
    {
        "races.py",
        "engine.py",
        "session.py",
        "flow_cache.py",
        "buffer.py",
        "checkpoint.py",
        "replica.py",
    }
)


def _call_site() -> str:
    """``file:line`` of the nearest frame outside the instrumented core."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename.rpartition("/")[2] not in _SKIP_FILES:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


@dataclass
class Access:
    """One recorded read or write of a registered structure part."""

    role: Optional[str]  # explicit role scope / named process, else None
    process: str  # "<main>" or the simulation process label
    kind: str  # "read" | "write"
    site: str  # file:line of the accessing code
    time: float  # simulated seconds
    generation: int  # engine yield generation (atomic-section id)
    detail: str = ""

    def actor(self) -> str:
        role = self.role if self.role is not None else "<no role>"
        return f"{role} ({self.process})"


@dataclass
class RaceViolation:
    """One detected shared-state hazard."""

    kind: str  # "conflicting-access" | "non-owner-write" | "missing-epoch-bump"
    structure: str
    part: str
    owner: str
    first: Optional[Access]  # prior access (owner write / conflicting peer)
    second: Access  # the access that surfaced the hazard
    diff: List[Tuple[str, str, str]]  # (field path, before, after)
    detail: str = ""
    count: int = 1

    def report(self) -> str:
        lines = [
            f"{self.kind}: {self.structure}.{self.part} (owner {self.owner!r})"
        ]
        if self.first is not None:
            lines.append(
                f"  prior {self.first.kind:<5} at {self.first.site} "
                f"by {self.first.actor()} "
                f"[t={self.first.time:.9g} gen={self.first.generation}]"
            )
        lines.append(
            f"  this  {self.second.kind:<5} at {self.second.site} "
            f"by {self.second.actor()} "
            f"[t={self.second.time:.9g} gen={self.second.generation}]"
        )
        if self.detail:
            lines.append(f"  {self.detail}")
        for path, before, after in self.diff:
            lines.append(f"  field {path}: {before} -> {after}")
        if self.count > 1:
            lines.append(f"  ({self.count} occurrences, first shown)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        def acc(a: Optional[Access]) -> Optional[Dict[str, Any]]:
            if a is None:
                return None
            return {
                "role": a.role,
                "process": a.process,
                "kind": a.kind,
                "site": a.site,
                "time": a.time,
                "generation": a.generation,
                "detail": a.detail,
            }

        return {
            "kind": self.kind,
            "structure": self.structure,
            "part": self.part,
            "owner": self.owner,
            "first": acc(self.first),
            "second": acc(self.second),
            "diff": [list(entry) for entry in self.diff],
            "detail": self.detail,
            "count": self.count,
        }


@dataclass
class _Shared:
    """Registration record of one shared structure."""

    obj: Any
    label: str
    owner: str
    parts: Dict[str, str]  # part -> owner role (overrides ``owner``)
    rule_parts: frozenset  # parts whose mutation must be epoch-bumped
    #: part -> (sim time, {role: [last read, last write]}) — the
    #: same-instant access window used for conflict detection.
    window: Dict[str, tuple] = field(default_factory=dict)
    #: part -> canonical form of the last hooked write value.
    snapshots: Dict[str, Any] = field(default_factory=dict)
    #: part -> most recent write access (the "prior" witness for
    #: non-owner-write reports).
    last_write: Dict[str, Access] = field(default_factory=dict)

    def owner_of(self, part: str) -> str:
        return self.parts.get(part, self.owner)


class RaceDetector:
    """Ownership registry + access checker for shared structures.

    Parameters
    ----------
    strict:
        When True, raise :class:`RaceError` at the moment a violation
        is detected instead of only recording it.
    env:
        Optional simulation environment; normally discovered from the
        first process resume, passing it only matters for direct-mode
        code that wants sim-time stamps before any process runs.
    record:
        When True, keep a replayable access trace in :attr:`trace`
        (see :func:`replay` and the module CLI).
    """

    def __init__(self, strict: bool = False, env=None, record: bool = False):
        self.strict = strict
        self.violations: List[RaceViolation] = []
        self.accesses = 0
        self.trace: Optional[List[dict]] = [] if record else None
        self._env = env
        self._structures: Dict[int, _Shared] = {}
        self._roles: List[str] = []
        #: (shared, part, access) rule mutations awaiting an epoch bump.
        self._pending_bumps: List[tuple] = []
        self._dedup: Dict[tuple, RaceViolation] = {}
        self._finished = False

    # -- registration ----------------------------------------------------
    def register(
        self,
        obj: Any,
        label: str,
        owner: str,
        parts: Optional[Dict[str, str]] = None,
        rule_parts: Sequence[str] = (),
    ) -> None:
        """Declare ``obj`` shared, owned by role ``owner``.

        ``parts`` overrides the owner for individual parts (e.g. a
        session's rules belong to upf-c but its buffer to upf-u);
        ``rule_parts`` lists the parts whose mutation must be followed
        by a ``RuleEpoch.bump()`` before the next yield.
        """
        self._structures[id(obj)] = _Shared(
            obj=obj,
            label=label,
            owner=owner,
            parts=dict(parts or {}),
            rule_parts=frozenset(rule_parts),
        )
        if self.trace is not None:
            self.trace.append(
                {
                    "event": "register",
                    "obj": id(obj),
                    "label": label,
                    "owner": owner,
                    "parts": dict(parts or {}),
                    "rule_parts": sorted(rule_parts),
                }
            )

    def registered(self, obj: Any) -> bool:
        return id(obj) in self._structures

    # -- role scoping ----------------------------------------------------
    @contextmanager
    def role(self, name: str) -> Iterator[None]:
        """Attribute the enclosed accesses to logical process ``name``."""
        self._roles.append(name)
        try:
            yield
        finally:
            self._roles.pop()

    def current_role(self) -> Optional[str]:
        if self._roles:
            return self._roles[-1]
        env = self._env
        proc = env._active_process if env is not None else None
        if proc is not None:
            return getattr(proc, "name", None)
        return None

    # -- engine hook -----------------------------------------------------
    def on_resume(self, process) -> None:
        """A process entered a new yield-to-yield atomic section."""
        self._env = process.env
        if self._pending_bumps:
            if self.trace is not None:
                self.trace.append(
                    {
                        "event": "resume",
                        "generation": process.env.yield_generation,
                    }
                )
            self._flush_stale_bumps(process.env.yield_generation)

    # -- access hooks ----------------------------------------------------
    def on_read(self, obj: Any, part: str, detail: str = "") -> None:
        shared = self._structures.get(id(obj))
        if shared is None:
            return
        self._ingest(shared, part, self._mk_access("read", detail), None, False)

    def on_write(
        self,
        obj: Any,
        part: str,
        value: Any = _UNSET,
        rule_mutation: bool = False,
        detail: str = "",
    ) -> None:
        shared = self._structures.get(id(obj))
        if shared is None:
            return
        snapshot = _canon(value) if value is not _UNSET else None
        self._ingest(
            shared,
            part,
            self._mk_access("write", detail),
            snapshot,
            rule_mutation or part in shared.rule_parts,
        )

    def on_bump(self) -> None:
        """A ``RuleEpoch.bump()`` happened: discharge this section's
        pending rule mutations."""
        if self.trace is not None:
            self.trace.append(
                {"event": "bump", "generation": self._generation()}
            )
        if not self._pending_bumps:
            return
        gen = self._generation()
        self._pending_bumps = [
            pending
            for pending in self._pending_bumps
            if pending[2].generation != gen
        ]

    # -- lifecycle -------------------------------------------------------
    def finish(self) -> None:
        """Flush end-of-run obligations (rule mutations never bumped)."""
        if self._finished:
            return
        self._finished = True
        for shared, part, access in self._pending_bumps:
            self._record(
                RaceViolation(
                    kind="missing-epoch-bump",
                    structure=shared.label,
                    part=part,
                    owner=shared.owner_of(part),
                    first=None,
                    second=access,
                    diff=[],
                    detail=(
                        "rule mutation was never followed by a "
                        "RuleEpoch.bump(); stale flow-cache decisions "
                        "stay live"
                    ),
                )
            )
        self._pending_bumps = []

    # -- reporting -------------------------------------------------------
    def report(self) -> str:
        if not self.violations:
            return "race detector: no violations"
        blocks = [v.report() for v in self.violations]
        header = f"race detector: {len(self.violations)} violation(s)\n"
        return header + "\n\n".join(blocks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "violations": [v.to_dict() for v in self.violations],
            "accesses": self.accesses,
            "structures": len(self._structures),
        }

    def dump_trace(self, path: str, header: Optional[dict] = None) -> None:
        """Append the recorded trace to ``path`` as JSON lines."""
        if self.trace is None:
            raise ValueError("detector was not created with record=True")
        with open(path, "a", encoding="utf-8") as handle:
            if header is not None:
                # A "begin" event marks a run boundary: replay resets
                # its structure table there (object ids recycle).
                handle.write(json.dumps({"event": "begin", **header}) + "\n")
            for record in self.trace:
                handle.write(json.dumps(record) + "\n")

    # -- internals -------------------------------------------------------
    def _generation(self) -> int:
        env = self._env
        return env.yield_generation if env is not None else 0

    def _mk_access(self, kind: str, detail: str) -> Access:
        env = self._env
        if env is not None:
            now = env._now
            gen = env.yield_generation
            proc = env._active_process
        else:
            now = 0.0
            gen = 0
            proc = None
        if self._roles:
            role: Optional[str] = self._roles[-1]
        elif proc is not None:
            role = getattr(proc, "name", None)
        else:
            role = None
        if proc is None:
            pname = "<main>"
        else:
            pname = getattr(proc, "name", None) or f"proc-{id(proc):x}"
        return Access(
            role=role,
            process=pname,
            kind=kind,
            site=_call_site(),
            time=now,
            generation=gen,
            detail=detail,
        )

    def _ingest(
        self,
        shared: _Shared,
        part: str,
        access: Access,
        snapshot: Any,
        rule_mutation: bool,
    ) -> None:
        self.accesses += 1
        if self.trace is not None:
            self.trace.append(
                {
                    "event": "access",
                    "obj": id(shared.obj),
                    "part": part,
                    "kind": access.kind,
                    "role": access.role,
                    "process": access.process,
                    "site": access.site,
                    "time": access.time,
                    "generation": access.generation,
                    "rule_mutation": rule_mutation,
                    "detail": access.detail,
                }
            )
        diff: List[Tuple[str, str, str]] = []
        if access.kind == "write" and snapshot is not None:
            previous = shared.snapshots.get(part)
            if previous is not None:
                diff = _diff(previous, snapshot)
            shared.snapshots[part] = snapshot
        if access.role is not None:
            self._check_owner(shared, part, access, diff)
            self._check_conflict(shared, part, access, diff)
        if access.kind == "write":
            if rule_mutation:
                self._pending_bumps.append((shared, part, access))
            if access.role is not None:
                shared.last_write[part] = access

    def _check_owner(
        self,
        shared: _Shared,
        part: str,
        access: Access,
        diff: List[Tuple[str, str, str]],
    ) -> None:
        if access.kind != "write":
            return
        owner = shared.owner_of(part)
        if access.role == owner:
            return
        self._record(
            RaceViolation(
                kind="non-owner-write",
                structure=shared.label,
                part=part,
                owner=owner,
                first=shared.last_write.get(part),
                second=access,
                diff=diff,
                detail=(
                    f"role {access.role!r} wrote state owned by {owner!r}; "
                    "the single-writer discipline of the shared-memory "
                    "model is broken"
                ),
            )
        )

    def _check_conflict(
        self,
        shared: _Shared,
        part: str,
        access: Access,
        diff: List[Tuple[str, str, str]],
    ) -> None:
        if access.process == "<main>":
            # Main-thread code runs between engine steps (the engine is
            # cooperative), so it is serialized against every process
            # even at the same simulated instant: it cannot conflict.
            # Ownership checks above still apply to it.
            return
        window = shared.window.get(part)
        if window is None or window[0] != access.time:
            # New simulated instant: previous accesses are ordered
            # before this one by time, so they cannot conflict.
            by_role: Dict[str, list] = {}
            shared.window[part] = (access.time, by_role)
        else:
            by_role = window[1]
        slot = 1 if access.kind == "write" else 0
        for other_role, pair in by_role.items():
            if other_role == access.role:
                continue
            for other in pair:
                if other is None:
                    continue
                if other.kind == "read" and access.kind == "read":
                    continue
                if other.generation == access.generation:
                    # Same atomic section: a synchronous call chain,
                    # program-ordered, not a race.
                    continue
                self._record(
                    RaceViolation(
                        kind="conflicting-access",
                        structure=shared.label,
                        part=part,
                        owner=shared.owner_of(part),
                        first=other,
                        second=access,
                        diff=diff,
                        detail=(
                            f"unsynchronized {other.kind}/{access.kind} by "
                            f"roles {other.role!r} and {access.role!r} at "
                            "the same simulated instant from different "
                            "atomic sections"
                        ),
                    )
                )
        mine = by_role.setdefault(access.role, [None, None])
        mine[slot] = access

    def _flush_stale_bumps(self, current_generation: int) -> None:
        stale = [
            pending
            for pending in self._pending_bumps
            if pending[2].generation < current_generation
        ]
        if not stale:
            return
        self._pending_bumps = [
            pending
            for pending in self._pending_bumps
            if pending[2].generation >= current_generation
        ]
        for shared, part, access in stale:
            self._record(
                RaceViolation(
                    kind="missing-epoch-bump",
                    structure=shared.label,
                    part=part,
                    owner=shared.owner_of(part),
                    first=None,
                    second=access,
                    diff=[],
                    detail=(
                        "rule mutation not followed by a RuleEpoch.bump() "
                        "before the next yield; the flow cache may serve "
                        "decisions derived from the old rules"
                    ),
                )
            )

    def _record(self, violation: RaceViolation) -> None:
        key = (
            violation.kind,
            violation.structure,
            violation.part,
            violation.first.site if violation.first is not None else None,
            violation.second.site,
        )
        existing = self._dedup.get(key)
        if existing is not None:
            existing.count += 1
            return
        self._dedup[key] = violation
        self.violations.append(violation)
        if self.strict:
            raise RaceError(violation.report())


# ---------------------------------------------------------------------------
# Global opt-in switch — instrumented code checks ``active()`` per hook.
# ---------------------------------------------------------------------------
_ACTIVE: Optional[RaceDetector] = None


def enable(strict: bool = False, env=None, record: bool = False) -> RaceDetector:
    """Install a fresh detector as the process-wide active instance."""
    global _ACTIVE
    _ACTIVE = RaceDetector(strict=strict, env=env, record=record)
    return _ACTIVE


def disable() -> None:
    """Deactivate the detector (flushes end-of-run obligations)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.finish()
    _ACTIVE = None


def active() -> Optional[RaceDetector]:
    """The currently installed detector, or None when disabled."""
    return _ACTIVE


@contextmanager
def traced(
    strict: bool = False, env=None, record: bool = False
) -> Iterator[RaceDetector]:
    """Run a block under a fresh detector, restoring the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    det = RaceDetector(strict=strict, env=env, record=record)
    _ACTIVE = det
    try:
        yield det
    finally:
        det.finish()
        _ACTIVE = previous


# ---------------------------------------------------------------------------
# Offline trace replay — ``python -m repro.analysis.races trace.jsonl``
# ---------------------------------------------------------------------------
def replay(records) -> RaceDetector:
    """Re-run the race analysis over a recorded access trace.

    ``records`` is an iterable of trace dicts (the JSON-lines format
    written by :meth:`RaceDetector.dump_trace`).  Field-level diffs are
    not reconstructed offline; sites, roles, and timings are.
    """
    det = RaceDetector()
    structures: Dict[int, _Shared] = det._structures
    generation = 0
    for record in records:
        event = record.get("event")
        if event == "begin":
            # Test boundary: object ids may be recycled across tests.
            structures.clear()
            det._pending_bumps = []
            generation = 0
        elif event == "register":
            structures[record["obj"]] = _Shared(
                obj=record["obj"],
                label=record["label"],
                owner=record["owner"],
                parts=dict(record.get("parts") or {}),
                rule_parts=frozenset(record.get("rule_parts") or ()),
            )
        elif event == "access":
            shared = structures.get(record["obj"])
            if shared is None:
                continue
            access = Access(
                role=record.get("role"),
                process=record.get("process", "<main>"),
                kind=record["kind"],
                site=record.get("site", "<unknown>"),
                time=record.get("time", 0.0),
                generation=record.get("generation", 0),
                detail=record.get("detail", ""),
            )
            generation = max(generation, access.generation)
            det._flush_stale_bumps(generation)
            det._ingest(
                shared, record["part"], access, None,
                bool(record.get("rule_mutation")),
            )
        elif event == "bump":
            gen = record.get("generation", generation)
            det._pending_bumps = [
                pending
                for pending in det._pending_bumps
                if pending[2].generation != gen
            ]
        elif event == "resume":
            generation = record.get("generation", generation)
            det._flush_stale_bumps(generation)
    det.finish()
    return det


def _load_trace(path: str) -> List[dict]:
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read().strip()
    if not text:
        return records
    if text.startswith("["):
        return json.loads(text)
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.races",
        description=(
            "Replay a recorded shared-state access trace "
            "(pytest --race --race-trace=PATH) through the race detector."
        ),
    )
    parser.add_argument("trace", help="JSON-lines (or JSON array) trace file")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)
    try:
        records = _load_trace(args.trace)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    det = replay(records)
    if args.as_json:
        print(json.dumps(det.to_dict(), indent=2))
    else:
        print(det.report())
        print(
            f"{det.accesses} access(es) over {len(det._structures)} "
            "structure(s) replayed"
        )
    return 1 if det.violations else 0


if __name__ == "__main__":
    sys.exit(main())
