"""Failover orchestration: detection -> unfreeze -> reroute -> replay.

Ties the pieces of §3.5 together around a running core:

1. the LB stamps/logs every message through the :class:`PacketLogger`;
2. the primary's local replicas sync per event (output commit);
3. a periodic process ships state deltas to the :class:`RemoteReplica`
   and releases acknowledged log entries;
4. on failure, the probe agent detects within ~0.5 ms, the remote
   replica is unfrozen, traffic re-routes (~2 ms) while the replica
   replays logged packets (~3 ms, partially overlapped), and the UE
   never re-attaches.

The alternative the paper compares against — the 3GPP restoration
procedure — is modeled by :func:`reattach_time`: the UE must perform a
fresh registration and PDU session establishment through the target
gNB, with every buffered packet lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.costs import DEFAULT_COSTS, CostModel
from ..net.packet import Direction, PacketKind
from ..sim.engine import MS, Environment
from .bfd import ProbeAgent, ProbeTarget
from .logger import PacketLogger
from .replica import LocalReplica, RemoteReplica, StatefulNF

__all__ = ["FailoverReport", "ResiliencyFramework", "reattach_time"]


@dataclass
class FailoverReport:
    """Timeline and counts of one failover."""

    failed_at: float
    detected_at: float
    rerouted_at: float
    replayed_at: float
    resumed_at: float
    replayed_messages: int = 0
    recovered_data_packets: int = 0
    recovered_control_packets: int = 0

    @property
    def outage(self) -> float:
        """Total unavailability seen by new traffic."""
        return self.resumed_at - self.failed_at


class ResiliencyFramework:
    """The L25GC resiliency machinery around one primary 5GC node.

    Parameters
    ----------
    env:
        Simulation environment.
    primaries:
        name -> stateful NF (``snapshot``/``restore``) to replicate.
    sync_period:
        Delta checkpoint period to the remote replica.
    """

    def __init__(
        self,
        env: Environment,
        primaries: Dict[str, StatefulNF],
        costs: CostModel = DEFAULT_COSTS,
        sync_period: float = 10 * MS,
        logger: Optional[PacketLogger] = None,
    ):
        self.env = env
        self.costs = costs
        self.primaries = dict(primaries)
        self.sync_period = sync_period
        self.logger = logger or PacketLogger()
        self.local_replicas: Dict[str, LocalReplica] = {
            name: LocalReplica(name, factory=lambda nf=nf: type(nf)())
            for name, nf in self.primaries.items()
        }
        self.remote = RemoteReplica()
        self.probe_target = ProbeTarget("primary-node")
        self.probe = ProbeAgent(env)
        self.probe.watch(self.probe_target)
        self.events_committed = 0
        self._running = False
        self._last_stamped_counter = 0

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        self.probe.start()
        # Named process: the race detector attributes the loop's
        # checkpoint-store writes to the "replica" role.
        self.env.process(self._sync_loop(), name="replica")

    def stop(self) -> None:
        self._running = False
        self.probe.stop()

    def log_message(
        self, payload: Any, direction: Direction, kind: PacketKind
    ) -> int:
        """LB ingress: stamp + log one message."""
        counter = self.logger.stamp(payload, direction, kind)
        self._last_stamped_counter = counter
        return counter

    def commit_event(self):
        """Output commit: sync local replicas before releasing output.

        A generator — procedures yield from it; costs ~5 us since the
        replicas share the host's memory.
        """
        for name, nf in self.primaries.items():
            self.local_replicas[name].sync(nf.snapshot())
        self.events_committed += 1
        yield self.env.timeout(self.costs.local_sync)

    def _sync_loop(self):
        """Periodic delta shipping from the *local* replica to the
        remote node, then log release on acknowledgement."""
        while self._running:
            yield self.env.timeout(self.sync_period)
            if self.probe_target.reachable is False:
                return
            counter = self._last_stamped_counter
            for name, replica in self.local_replicas.items():
                # The local replica is already in sync with the primary
                # (output commit), so the delta is computed from it,
                # never blocking the primary.
                replica.store.update(self.primaries[name].snapshot())
                delta = replica.store.delta_since_last(counter)
                if delta.empty:
                    continue
                yield self.env.timeout(self.costs.checkpoint_send)
                self.remote.receive_delta(name, delta)
            # Remote ACK releases everything it now covers.
            self.logger.release_through(self.remote.synced_counter)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def fail_primary(self) -> None:
        """Inject a node/link failure of the primary 5GC."""
        self.probe_target.fail()

    def run_failover(self):
        """The failover process; returns a :class:`FailoverReport`.

        Call after :meth:`fail_primary`; models §5.5.1's timeline:
        detection < 0.5 ms, re-route 2 ms and replay 3 ms with partial
        overlap.
        """
        costs = self.costs
        failed_at = self.env.now
        yield self.env.timeout(self.probe.detection_time)
        detected_at = self.env.now

        # Unfreeze the remote replica (cgroup thaw).
        yield self.env.timeout(costs.unfreeze)
        self.remote.activate()

        # Re-route and replay overlap; replay is the longer pole.
        replay_entries = self.logger.replay_order(
            after_counter=self.remote.synced_counter
        )
        reroute_done = self.env.now + costs.reroute
        replay_done = self.env.now + costs.replay
        yield self.env.timeout(max(costs.reroute, costs.replay))
        self.remote.replayed += len(replay_entries)

        data = sum(
            1 for entry in replay_entries if entry.kind is PacketKind.DATA
        )
        control = len(replay_entries) - data
        return FailoverReport(
            failed_at=failed_at,
            detected_at=detected_at,
            rerouted_at=reroute_done,
            replayed_at=replay_done,
            resumed_at=self.env.now,
            replayed_messages=len(replay_entries),
            recovered_data_packets=data,
            recovered_control_packets=control,
        )


def reattach_time(costs: CostModel = DEFAULT_COSTS) -> float:
    """The 3GPP restoration alternative, from the baseline's measured
    procedure times: failure detection + notification, then a fresh
    registration and PDU session establishment through the target gNB.

    Using the free5GC event times this lands at ~287 ms of procedures
    plus detection/notification — which is why a handover interrupted
    halfway (~115 ms in) completes only at ~400 ms (§5.5.1).
    """
    # Measured free5GC procedure times from the Fig 8 experiment; we
    # re-derive them here from the message sequences to avoid constants.
    from ..baselines import free5gc
    from ..cp.procedures import ProcedureRunner

    env = Environment()
    core = free5gc(env)
    runner = ProcedureRunner(core)
    ue = core.add_ue("imsi-208930000000099")
    durations: Dict[str, float] = {}

    def scenario():
        registration = yield from runner.register_ue(ue, gnb_id=2)
        durations["registration"] = registration.duration
        session = yield from runner.establish_session(ue)
        durations["session"] = session.duration

    env.process(scenario())
    env.run()
    return (
        costs.failure_detection
        + costs.sctp_message  # failure notification to the UE via gNB
        + durations["registration"]
        + durations["session"]
    )
