"""Failure resiliency: replication, packet logging, detection, failover."""

from .bfd import ProbeAgent, ProbeTarget
from .checkpoint import CheckpointStore, StateDelta, apply_delta, compute_delta
from .failover import FailoverReport, ResiliencyFramework, reattach_time
from .logger import LoggedPacket, PacketLogger
from .replica import LocalReplica, RemoteReplica

__all__ = [
    "ProbeAgent",
    "ProbeTarget",
    "CheckpointStore",
    "StateDelta",
    "apply_delta",
    "compute_delta",
    "FailoverReport",
    "ResiliencyFramework",
    "reattach_time",
    "LoggedPacket",
    "PacketLogger",
    "LocalReplica",
    "RemoteReplica",
]
