"""The load balancer's counter + packet logger (§3.5.1).

Every message entering the 5GC through the LB is stamped with a
monotonically increasing counter and a copy is kept in the
PacketLogger.  The logger is split into **four queues** — UL-control,
UL-data, DL-control, DL-data — so control packets survive even if a
data flood overflows the buffer.  On failover the replica replays from
the queue heads in counter order, reconstructing state updates lost
since the last checkpoint *and* recovering in-flight data packets
(which Neutrino does not).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..net.packet import Direction, PacketKind

__all__ = ["LoggedPacket", "PacketLogger"]


@dataclass
class LoggedPacket:
    """One logged message with its LB counter stamp."""

    counter: int
    direction: Direction
    kind: PacketKind
    payload: Any


class PacketLogger:
    """Counter stamping plus the four bounded replay queues.

    Parameters
    ----------
    data_capacity:
        Per-queue capacity for the two data queues (tail drop).
    control_capacity:
        Per-queue capacity for the two control queues; sized larger
        relative to their traffic so control is never lost to a data
        burst.
    """

    QUEUES: Tuple[Tuple[Direction, PacketKind], ...] = (
        (Direction.UPLINK, PacketKind.CONTROL),
        (Direction.UPLINK, PacketKind.DATA),
        (Direction.DOWNLINK, PacketKind.CONTROL),
        (Direction.DOWNLINK, PacketKind.DATA),
    )

    def __init__(self, data_capacity: int = 4096, control_capacity: int = 4096):
        self._counter = itertools.count(1)
        self._queues: Dict[Tuple[Direction, PacketKind], List[LoggedPacket]] = {
            key: [] for key in self.QUEUES
        }
        self._capacities = {
            key: control_capacity if key[1] is PacketKind.CONTROL else data_capacity
            for key in self.QUEUES
        }
        self.logged = 0
        self.dropped = 0
        self.released = 0
        #: Highest counter acknowledged by the remote replica.
        self.acked_counter = 0

    # ------------------------------------------------------------------
    def stamp(
        self, payload: Any, direction: Direction, kind: PacketKind
    ) -> int:
        """Stamp a message with the next counter and log a copy.

        Returns the counter value.  Overflowing a *data* queue drops
        the oldest data entry; control queues are protected by their
        own capacity, so a data flood cannot evict control packets.
        """
        counter = next(self._counter)
        queue = self._queues[(direction, kind)]
        if len(queue) >= self._capacities[(direction, kind)]:
            queue.pop(0)
            self.dropped += 1
        queue.append(
            LoggedPacket(
                counter=counter, direction=direction, kind=kind, payload=payload
            )
        )
        self.logged += 1
        return counter

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queue_depth(self, direction: Direction, kind: PacketKind) -> int:
        return len(self._queues[(direction, kind)])

    # ------------------------------------------------------------------
    def release_through(self, counter: int) -> int:
        """Drop logged entries with counter <= ``counter``.

        Called when the primary confirms the remote replica has
        synchronized state through that counter (step 3 of §3.5.1).
        """
        removed = 0
        for queue in self._queues.values():
            keep = [entry for entry in queue if entry.counter > counter]
            removed += len(queue) - len(keep)
            queue[:] = keep
        self.released += removed
        self.acked_counter = max(self.acked_counter, counter)
        return removed

    # ------------------------------------------------------------------
    def replay_order(self, after_counter: int = 0) -> List[LoggedPacket]:
        """All logged entries newer than ``after_counter`` in counter
        order, merged across the four queues.

        This is the replica's replay stream: repeatedly pick the queue
        whose head has the lowest counter, preserving the original
        processing order.
        """
        heads = {key: 0 for key in self.QUEUES}
        merged: List[LoggedPacket] = []
        while True:
            best_key: Optional[Tuple[Direction, PacketKind]] = None
            best_counter = None
            for key in self.QUEUES:
                queue = self._queues[key]
                index = heads[key]
                while index < len(queue) and queue[index].counter <= after_counter:
                    index += 1
                heads[key] = index
                if index < len(queue):
                    counter = queue[index].counter
                    if best_counter is None or counter < best_counter:
                        best_counter = counter
                        best_key = key
            if best_key is None:
                return merged
            merged.append(self._queues[best_key][heads[best_key]])
            heads[best_key] += 1
