"""Seamless-BFD-style failure detection (§3.5.2, RFC 7881).

Two detectors cooperate in L25GC: the NF manager polls registered NFs
every few milliseconds for *software* failures (local resiliency), and
the LB's probe agent runs S-BFD toward each 5GC node for *node/link*
failures (remote resiliency), detecting within ~0.5 ms.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim.engine import US, Environment

__all__ = ["ProbeAgent", "ProbeTarget"]


class ProbeTarget:
    """Something the probe agent can ping: a node or link endpoint."""

    def __init__(self, name: str):
        self.name = name
        self.reachable = True

    def fail(self) -> None:
        self.reachable = False

    def recover(self) -> None:
        self.reachable = True


class ProbeAgent:
    """S-BFD initiator at the LB node.

    Parameters
    ----------
    interval:
        Probe transmission interval.  With the paper's configuration
        the detection time (probe interval x miss threshold) stays
        under 0.5 ms.
    miss_threshold:
        Consecutive unanswered probes before declaring failure.
    """

    def __init__(
        self,
        env: Environment,
        interval: float = 150 * US,
        miss_threshold: int = 3,
    ):
        if miss_threshold <= 0:
            raise ValueError("miss_threshold must be positive")
        self.env = env
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.targets: Dict[str, ProbeTarget] = {}
        self._misses: Dict[str, int] = {}
        self.listeners: List[Callable[[ProbeTarget, float], None]] = []
        self.detections: List[tuple] = []
        self._running = False

    @property
    def detection_time(self) -> float:
        """Worst-case detection latency."""
        return self.interval * self.miss_threshold

    def watch(self, target: ProbeTarget) -> None:
        self.targets[target.name] = target
        self._misses[target.name] = 0

    def start(self) -> None:
        if self._running:
            raise RuntimeError("probe agent already started")
        self._running = True
        self.env.process(self._run())

    def stop(self) -> None:
        self._running = False

    def _run(self):
        notified: set = set()
        while self._running:
            yield self.env.timeout(self.interval)
            for name, target in self.targets.items():
                if target.reachable:
                    self._misses[name] = 0
                    notified.discard(name)
                    continue
                self._misses[name] += 1
                if (
                    self._misses[name] >= self.miss_threshold
                    and name not in notified
                ):
                    notified.add(name)
                    self.detections.append((name, self.env.now))
                    for listener in self.listeners:
                        listener(target, self.env.now)
