"""State checkpointing for NF replication (§3.5).

The local replica stays synchronized per UE event (no-replay scheme,
output commit); the remote replica receives *periodic deltas* of the
state snapshot, which keeps update sizes small and — unlike per-event
sync (Neutrino) — lets the framework also recover data packets lost
between checkpoints by replaying the LB's logs.

State is represented as nested plain dicts (the NFs expose
``snapshot()``/``restore()``); a delta is the set of key paths whose
values changed, plus deletions.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import races as _races

__all__ = ["StateDelta", "CheckpointStore", "compute_delta", "apply_delta"]

#: A flattened state path: the chain of dict keys to a leaf.
Path = Tuple[str, ...]


@dataclass
class StateDelta:
    """Changes between two snapshots.

    Paths are tuples of dict keys, so arbitrary key strings are safe.
    """

    #: path -> new value (deep-copied).
    changed: Dict[Path, Any] = field(default_factory=dict)
    #: paths removed.
    removed: List[Path] = field(default_factory=list)
    #: Counter value of the last message folded into this delta.
    counter: int = 0

    @property
    def empty(self) -> bool:
        return not self.changed and not self.removed

    def size_bytes(self) -> int:
        """Approximate wire size of the delta (JSON encoding)."""
        payload = {
            "changed": [[list(path), value] for path, value in self.changed.items()],
            "removed": [list(path) for path in self.removed],
        }
        return len(json.dumps(payload, default=str))


def _flatten(state: Dict[str, Any], prefix: Path = ()) -> Dict[Path, Any]:
    flat: Dict[Path, Any] = {}
    for key, value in state.items():
        path = prefix + (str(key),)
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
            if not value:
                flat[path] = {}
        else:
            flat[path] = value
    return flat


def compute_delta(
    old: Dict[str, Any], new: Dict[str, Any], counter: int = 0
) -> StateDelta:
    """The delta transforming snapshot ``old`` into ``new``."""
    flat_old = _flatten(old)
    flat_new = _flatten(new)
    delta = StateDelta(counter=counter)
    for path, value in flat_new.items():
        if path not in flat_old or flat_old[path] != value:
            delta.changed[path] = copy.deepcopy(value)
    for path in flat_old:
        if path not in flat_new:
            delta.removed.append(path)
    return delta


def _set_path(state: Dict[str, Any], path: Path, value: Any) -> None:
    parts = path
    node = state
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    node[parts[-1]] = copy.deepcopy(value)


def _delete_path(state: Dict[str, Any], path: Path) -> None:
    parts = path
    chain = [state]
    node = state
    for part in parts[:-1]:
        if part not in node or not isinstance(node[part], dict):
            return
        node = node[part]
        chain.append(node)
    node.pop(parts[-1], None)
    # Prune ancestors emptied by the deletion; dicts that are *meant*
    # to be empty appear in the delta's ``changed`` map and are
    # re-created when changes apply (changes run after removals).
    for index in range(len(chain) - 1, 0, -1):
        if chain[index]:
            break
        chain[index - 1].pop(parts[index - 1], None)


def apply_delta(state: Dict[str, Any], delta: StateDelta) -> Dict[str, Any]:
    """Apply a delta in place (and return the state)."""
    for path in delta.removed:
        _delete_path(state, path)
    for path, value in delta.changed.items():
        _set_path(state, path, value)
    return state


class CheckpointStore:
    """Tracks the snapshot history of one NF's state.

    The primary side calls :meth:`delta_since_last` each sync period;
    the replica side folds deltas with :meth:`apply`.
    """

    def __init__(self, initial: Optional[Dict[str, Any]] = None):
        self.state: Dict[str, Any] = copy.deepcopy(initial or {})
        self._last_synced: Dict[str, Any] = copy.deepcopy(self.state)
        self.applied_counter = 0
        self.deltas_sent = 0
        self.bytes_sent = 0

    def update(self, snapshot: Dict[str, Any]) -> None:
        """Record the primary's current state."""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(self, "state", detail="update(snapshot)")
        self.state = copy.deepcopy(snapshot)

    def delta_since_last(self, counter: int) -> StateDelta:
        """Delta vs. the last sync; marks the new state as synced."""
        delta = compute_delta(self._last_synced, self.state, counter)
        self._last_synced = copy.deepcopy(self.state)
        if not delta.empty:
            self.deltas_sent += 1
            self.bytes_sent += delta.size_bytes()
        return delta

    def apply(self, delta: StateDelta) -> None:
        """Replica side: fold a received delta."""
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_write(
                self, "state", detail=f"apply(delta@{delta.counter})"
            )
        apply_delta(self.state, delta)
        self.applied_counter = max(self.applied_counter, delta.counter)
