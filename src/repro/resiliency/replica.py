"""NF replicas: frozen local standbys and the remote replica node.

Local resiliency (§3.5.1): each NF has a same-host replica that is
kept consistent with a no-replay scheme — the primary does not release
any response until the replica is synchronized (*output commit*), which
costs ~5 us over shared memory.  The replica process sits in the cgroup
freezer consuming **zero CPU** until the NF manager unfreezes it.

Remote resiliency: a replica node holds periodically-synced state
deltas; external synchrony means normal operation never blocks on the
WAN round trip.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol

from ..analysis import races as _races
from .checkpoint import CheckpointStore, StateDelta

__all__ = ["StatefulNF", "LocalReplica", "RemoteReplica"]


class StatefulNF(Protocol):
    """Anything replicable: exposes snapshot()/restore()."""

    def snapshot(self) -> Dict[str, Any]: ...

    def restore(self, data: Dict[str, Any]) -> None: ...


class LocalReplica:
    """A frozen same-host standby of one NF.

    ``sync`` is called per UE event before the primary's response is
    released (output commit); ``activate`` unfreezes the standby and
    hands it the synchronized state.
    """

    def __init__(self, name: str, factory: Callable[[], StatefulNF]):
        self.name = name
        self._factory = factory
        self.store = CheckpointStore()
        self.frozen = True
        self.syncs = 0
        #: CPU seconds consumed while frozen — stays exactly zero; the
        #: tests assert this invariant (the paper's "consuming no CPU
        #: cycles" claim).
        self.cpu_while_frozen = 0.0
        self.instance: Optional[StatefulNF] = None
        detector = _races.active()
        if detector is not None:
            # Checkpoint state has a single writer: the replica
            # machinery (sync on the primary side, apply/restore on
            # the standby side) — never the NFs themselves.
            detector.register(
                self.store,
                label=f"replica({name}).store",
                owner="replica",
            )

    def sync(self, snapshot: Dict[str, Any]) -> None:
        """Fold the primary's current state (no-replay scheme)."""
        detector = _races.active()
        if detector is None:
            self.store.update(snapshot)
        else:
            with detector.role("replica"):
                self.store.update(snapshot)
        self.syncs += 1

    def activate(self) -> StatefulNF:
        """Unfreeze: instantiate the NF from the synchronized state."""
        self.frozen = False
        self.instance = self._factory()
        detector = _races.active()
        if detector is None:
            self.instance.restore(self.store.state)
        else:
            with detector.role("replica"):
                detector.on_read(self.store, "state")
                self.instance.restore(self.store.state)
        return self.instance


class RemoteReplica:
    """The replica 5GC node: per-NF checkpoint stores + replay hook.

    Receives periodic state deltas from the primary's *local* replica
    (so the primary itself is never blocked), acknowledges the counter
    each delta covers, and on failover reconstructs any newer state by
    replaying the LB's logged packets.
    """

    def __init__(self, name: str = "remote-replica"):
        self.name = name
        self.stores: Dict[str, CheckpointStore] = {}
        self.frozen = True
        self.synced_counter = 0
        self.deltas_received = 0
        self.replayed = 0

    def ensure_store(self, nf_name: str) -> CheckpointStore:
        if nf_name not in self.stores:
            store = CheckpointStore()
            self.stores[nf_name] = store
            detector = _races.active()
            if detector is not None:
                detector.register(
                    store,
                    label=f"{self.name}.store({nf_name})",
                    owner="replica",
                )
        return self.stores[nf_name]

    def receive_delta(self, nf_name: str, delta: StateDelta) -> int:
        """Apply a delta; returns the acknowledged counter."""
        detector = _races.active()
        if detector is None:
            self.ensure_store(nf_name).apply(delta)
        else:
            with detector.role("replica"):
                self.ensure_store(nf_name).apply(delta)
        self.deltas_received += 1
        self.synced_counter = max(self.synced_counter, delta.counter)
        return self.synced_counter

    def activate(self) -> None:
        self.frozen = False

    def state_of(self, nf_name: str) -> Dict[str, Any]:
        store = self.ensure_store(nf_name)
        detector = _races.active()
        if detector is not None:
            detector.on_read(store, "state")
        return store.state
