"""Assembly of a complete 5G core: NFs, UPF, RAN, transports.

:class:`FiveGCore` wires the control-plane NFs, the factored UPF, the
gNBs and UEs onto a :class:`~repro.core.transport.MessageBus`.  The
:class:`SystemConfig` selects between the three systems the paper
evaluates — the shared-memory channels, fast-path forwarding, smart
handover buffering and the PDR classifier are all configuration, while
the 3GPP message sequences are identical across systems (that is the
paper's 3GPP-compliance claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..classifier.base import Classifier
from ..classifier.linear import LinearClassifier
from ..classifier.partition_sort import PartitionSortClassifier
from ..core.costs import DEFAULT_COSTS, Channel, CostModel
from ..core.transport import MessageBus
from ..net.addresses import AddressAllocator, ip_to_int
from ..net.packet import Direction, Packet
from ..obs.metrics import MetricsRegistry
from ..pfcp.messages import PFCPMessage, SessionReportRequest, SessionReportResponse
from ..ran.gnb import DEFAULT_GNB_BUFFER_PACKETS, GNodeB
from ..ran.ue import UserEquipment
from ..sbi.messages import NFDiscoveryRequest, NFDiscoveryResponse, SBIMessage
from ..sim.engine import Environment, Event
from ..up import (
    DEFAULT_UPF_BUFFER_PACKETS,
    SessionTable,
    UPFControlPlane,
    UPFUserPlane,
)
from .nfs import AMF, AUSF, NRF, PCF, SMF, UDM

__all__ = ["SystemConfig", "FiveGCore"]


@dataclass
class SystemConfig:
    """Which of the paper's systems this core instance models."""

    name: str = "l25gc"
    #: SBI transport: HTTP/JSON (free5GC) or shared memory (L25GC).
    sbi_channel: Channel = Channel.SHARED_MEMORY
    #: N4 transport: UDP/PFCP (free5GC) or shared memory (L25GC).
    n4_channel: Channel = Channel.SHARED_MEMORY
    #: DPDK poll-mode forwarding (True) vs kernel gtp5g (False).
    fast_path: bool = True
    #: Buffer handover DL traffic at the UPF (L25GC §3.3) instead of
    #: the source gNB with hairpin routing (3GPP default).
    smart_handover_buffering: bool = True
    #: Model free5GC's per-call NRF discovery round trips on the SBI.
    nrf_discovery: bool = True
    #: L25GC buffers per session (§3.3); free5GC's paging/HO buffer
    #: shares memory with other sessions' kernel backlog.
    session_scoped_buffering: bool = True
    #: PDR lookup structure for new sessions.
    classifier_class: Type[Classifier] = PartitionSortClassifier
    upf_buffer_packets: int = DEFAULT_UPF_BUFFER_PACKETS
    gnb_buffer_packets: int = DEFAULT_GNB_BUFFER_PACKETS
    #: Memoize the UPF-U per-packet decision in an exact-match flow
    #: cache (off by default: the paper's numbers are uncached).
    flow_cache: bool = False
    #: Independent UPF-U workers behind RSS dispatch (1 = the paper's
    #: single pipeline; >1 activates :mod:`repro.deploy.sharded`).
    upf_shards: int = 1
    #: Packets the UPF-U handles per burst (DPDK-style amortization).
    #: 1 = today's one-packet-per-call pipeline; >1 routes platform
    #: batches and ``inject_*_burst`` through ``process_burst``.
    #: Property-tested equivalent, so this only trades Python-level
    #: overhead.
    burst_size: int = 1

    @classmethod
    def free5gc(cls) -> "SystemConfig":
        """Vanilla free5GC: kernel UPF, HTTP SBI, UDP PFCP, linear PDRs."""
        return cls(
            name="free5gc",
            sbi_channel=Channel.HTTP_JSON,
            n4_channel=Channel.UDP_PFCP,
            fast_path=False,
            smart_handover_buffering=False,
            session_scoped_buffering=False,
            classifier_class=LinearClassifier,
        )

    @classmethod
    def onvm_upf(cls) -> "SystemConfig":
        """The hybrid of Fig 8: ONVM data plane, free5GC control plane.

        Only the N4 interface rides shared memory; the SBI stays on
        HTTP/REST.
        """
        return cls(
            name="onvm-upf",
            sbi_channel=Channel.HTTP_JSON,
            n4_channel=Channel.SHARED_MEMORY,
            fast_path=True,
            smart_handover_buffering=False,
            session_scoped_buffering=True,
            classifier_class=LinearClassifier,
        )

    @classmethod
    def shm_sbi_only(cls) -> "SystemConfig":
        """Ablation point: shared-memory SBI but free5GC's N4 and data
        plane.  Not evaluated in the paper; isolates the SBI's share of
        the event-time reduction."""
        return cls(
            name="shm-sbi-only",
            sbi_channel=Channel.SHARED_MEMORY,
            n4_channel=Channel.UDP_PFCP,
            fast_path=False,
            smart_handover_buffering=False,
            session_scoped_buffering=False,
            classifier_class=LinearClassifier,
        )

    @classmethod
    def l25gc(cls) -> "SystemConfig":
        """The full L25GC: shared memory everywhere, PDR-PS, smart HO."""
        return cls(name="l25gc")


class FiveGCore:
    """One 5GC unit plus its RAN, ready to run procedures.

    Parameters
    ----------
    env:
        Simulation environment.
    config:
        System selection (see :class:`SystemConfig`).
    costs:
        The calibrated cost model.
    num_gnbs:
        gNBs instantiated up front (procedures reference them by id,
        starting at 1).
    """

    UPF_ADDRESS = ip_to_int("192.168.1.2")
    DN_ADDRESS = ip_to_int("8.8.8.8")

    def __init__(
        self,
        env: Environment,
        config: Optional[SystemConfig] = None,
        costs: CostModel = DEFAULT_COSTS,
        num_gnbs: int = 2,
    ):
        self.env = env
        self.config = config or SystemConfig.l25gc()
        self.costs = costs
        self.bus = MessageBus(
            env, costs, default_channel=self.config.sbi_channel
        )

        # Control-plane NFs.
        self.amf = AMF()
        self.smf = SMF()
        self.ausf = AUSF()
        self.udm = UDM()
        self.pcf = PCF()
        self.nrf = NRF()
        for nf in (self.amf, self.smf, self.ausf, self.udm, self.pcf, self.nrf):
            self.bus.register(nf.name, nf.handle_message)
            self.nrf.register_nf(nf.name.upper(), f"{nf.name}-inst-1", nf.name)

        # User plane: one pipeline, or N sharded workers behind RSS
        # dispatch (function-level import: repro.deploy pulls this
        # module back in through deploy.unit).
        if self.config.upf_shards > 1:
            from ..deploy.sharded import (
                ShardedUPFControlPlane,
                ShardedUserPlane,
            )

            self.upf_u = ShardedUserPlane(
                env,
                self.config.upf_shards,
                uplink_sink=self._uplink_to_dn,
                downlink_sink=self._downlink_to_ran,
                fast_path=self.config.fast_path,
                session_scoped_buffering=(
                    self.config.session_scoped_buffering
                ),
                flow_cache=self.config.flow_cache,
                burst_size=self.config.burst_size,
                costs=costs,
            )
            self.sessions = self.upf_u.sessions
            self.upf_c = ShardedUPFControlPlane(
                self.upf_u,
                address=self.UPF_ADDRESS,
                classifier_class=self.config.classifier_class,
                send_report=self._report_to_smf,
                buffer_capacity=self.config.upf_buffer_packets,
            )
        else:
            self.sessions = SessionTable()
            self.upf_u = UPFUserPlane(
                env,
                self.sessions,
                uplink_sink=self._uplink_to_dn,
                downlink_sink=self._downlink_to_ran,
                fast_path=self.config.fast_path,
                session_scoped_buffering=(
                    self.config.session_scoped_buffering
                ),
                flow_cache=self.config.flow_cache,
                burst_size=self.config.burst_size,
                costs=costs,
            )
            self.upf_c = UPFControlPlane(
                self.sessions,
                upf_u=self.upf_u,
                address=self.UPF_ADDRESS,
                classifier_class=self.config.classifier_class,
                send_report=self._report_to_smf,
                buffer_capacity=self.config.upf_buffer_packets,
            )
        self.upf_u.notify_cp = self.upf_c.on_buffered_data
        self.upf_u.usage_report_sink = self.upf_c.on_usage_threshold
        self.bus.register("upf-c", lambda message, bus: None)

        # RAN.
        self.gnbs: Dict[int, GNodeB] = {}
        for gnb_id in range(1, num_gnbs + 1):
            self.add_gnb(gnb_id)
        self.ues: Dict[str, UserEquipment] = {}
        self.bus.register("ran", lambda message, bus: None)

        self.ue_ip_pool = AddressAllocator("10.60.0.0", 16)
        #: DL routing: TEID -> (gNB, UE); kept by the procedures.
        self.dl_routes: Dict[int, Tuple[GNodeB, UserEquipment]] = {}
        #: Packets that reached the data network (UL sink).
        self.dn_received: List[Packet] = []
        #: Called when a downlink data report arrives at the SMF
        #: (paging trigger); installed by the procedure runner.
        self.on_report: Optional[Callable[[SessionReportRequest], None]] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_gnb(self, gnb_id: int) -> GNodeB:
        gnb = GNodeB(
            self.env,
            gnb_id=gnb_id,
            address=ip_to_int(f"192.168.2.{gnb_id}"),
            buffer_packets=self.config.gnb_buffer_packets,
        )
        self.gnbs[gnb_id] = gnb
        return gnb

    def add_n3iwf(self, n3iwf_id: int = 100):
        """Attach an N3IWF for non-3GPP (WiFi) access.

        It registers in the RAN-node table alongside the gNBs, so the
        standard procedures (session establishment, paging) work
        unchanged — exactly the paper's point about N3IWF access.
        """
        from ..ran.n3iwf import N3IWF

        if n3iwf_id in self.gnbs:
            raise ValueError(f"RAN node id {n3iwf_id} already in use")
        n3iwf = N3IWF(
            self.env,
            n3iwf_id=n3iwf_id,
            address=ip_to_int(f"192.168.3.{n3iwf_id % 250 + 1}"),
        )
        self.gnbs[n3iwf_id] = n3iwf  # duck-typed RAN node
        return n3iwf

    def add_ue(self, supi: str) -> UserEquipment:
        ue = UserEquipment(supi=supi)
        self.ues[supi] = ue
        self.udm.provision(supi)
        return ue

    def gnb_by_address(self, address: int) -> Optional[GNodeB]:
        for gnb in self.gnbs.values():
            if gnb.address == address:
                return gnb
        return None

    # ------------------------------------------------------------------
    # Control-plane exchange helpers (generators for procedures)
    # ------------------------------------------------------------------
    def sbi_exchange(
        self,
        source: str,
        destination: str,
        request: SBIMessage,
        response: SBIMessage,
        discovery: Optional[bool] = None,
        request_handler_time: Optional[float] = None,
        response_handler_time: Optional[float] = None,
    ):
        """One SBI request/response, optionally preceded by NRF discovery.

        free5GC consults the NRF when the client has no cached profile
        for the producer; modelling it as an explicit exchange keeps the
        message counts honest for both systems (L25GC also discovers —
        just over shared memory).
        """
        if discovery is None:
            discovery = self.config.nrf_discovery
        if discovery:
            yield self.bus.send(
                source,
                "nrf",
                NFDiscoveryRequest(
                    target_nf_type=destination.upper(),
                    requester_nf_type=source.upper(),
                ),
                size=512,
                handler_time=self.costs.handler_processing / 2,
                interface="sbi",
            )
            self.nrf.discover(destination.upper())
            yield self.bus.send(
                "nrf",
                source,
                NFDiscoveryResponse(),
                size=1500,
                handler_time=self.costs.handler_processing / 2,
                interface="sbi",
            )
        yield self.bus.send(
            source,
            destination,
            request,
            size=1024,
            handler_time=request_handler_time,
            interface="sbi",
        )
        yield self.bus.send(
            destination,
            source,
            response,
            size=768,
            handler_time=response_handler_time,
            interface="sbi",
        )
        return response

    def n4_exchange(self, message: PFCPMessage):
        """One PFCP request/response applied to the UPF-C.

        The request's rule changes take effect exactly when the UPF-C
        handler runs — ordering that matters for buffering/flush races.
        """
        yield self.bus.send(
            "smf",
            "upf-c",
            message,
            channel=self.config.n4_channel,
            size=len(message.encode()),
            handler_time=message.HANDLER_TIME,
            interface="n4",
        )
        response = self.upf_c.handle(message)
        yield self.bus.send(
            "upf-c",
            "smf",
            response,
            channel=self.config.n4_channel,
            size=len(response.encode()),
            handler_time=response.HANDLER_TIME,
            interface="n4",
        )
        return response

    def ngap_send(
        self, source: str, destination: str, message: Any,
        handler_time: Optional[float] = None,
    ) -> Event:
        """One NGAP message over SCTP (identical for all systems)."""
        return self.bus.send(
            source,
            destination,
            message,
            channel=Channel.SCTP_NGAP,
            size=getattr(message, "size", 256),
            handler_time=(
                handler_time
                if handler_time is not None
                else self.costs.handler_processing
            ),
            interface="ngap",
        )

    # ------------------------------------------------------------------
    # Data-plane plumbing
    # ------------------------------------------------------------------
    def _uplink_to_dn(self, packet: Packet) -> None:
        packet.delivered_at = self.env.now
        self.dn_received.append(packet)

    def _downlink_to_ran(self, packet: Packet, teid: int, address: int) -> None:
        route = self.dl_routes.get(teid)
        if route is None:
            return
        gnb, ue = route
        # N3 wire + forwarding latency of the selected data path,
        # inflated by concurrent-session contention; packets released
        # from (or queued behind) a buffer drain additionally carry the
        # extra delay the UPF-U computed.
        active = max(1, len(self.sessions))
        delay = (
            self.costs.forward_latency(self.config.fast_path, active)
            + self.costs.lan_propagation
            + packet.meta.pop("extra_delay", 0.0)
        )

        def _deliver():
            yield self.env.timeout(delay)
            gnb.receive_downlink(packet, ue)

        self.env.process(_deliver())

    def _report_to_smf(self, report: SessionReportRequest) -> None:
        """UPF-C -> SMF downlink data report, then the paging hook."""

        def _notify():
            yield self.bus.send(
                "upf-c",
                "smf",
                report,
                channel=self.config.n4_channel,
                size=len(report.encode()),
                handler_time=report.HANDLER_TIME,
                interface="n4",
            )
            response = SessionReportResponse(
                seid=report.seid, sequence=report.sequence
            )
            yield self.bus.send(
                "smf",
                "upf-c",
                response,
                channel=self.config.n4_channel,
                size=len(response.encode()),
                handler_time=response.HANDLER_TIME,
                interface="n4",
            )
            if self.on_report is not None:
                self.on_report(report)

        self.env.process(_notify())

    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """Assemble one registry over the core's live tallies.

        The bus counters, the UPF-U rings and forwarding stats, and the
        session count are all registered as the *same* objects (or
        callback gauges over them) — a snapshot view, not a copy.
        """
        registry = MetricsRegistry()
        for metric in self.bus.metrics:
            registry.register(metric)
        if getattr(self.upf_u, "shards", None) is not None:
            # Sharded facade: per-shard series plus aggregate gauges
            # under the same names the single pipeline exports.
            self.upf_u.register_into(registry)
        else:
            self.upf_u.stats.register_into(registry)
            self.upf_u.rx_ring.register_into(registry)
            self.upf_u.tx_ring.register_into(registry)
            if self.upf_u.flow_cache is not None:
                self.upf_u.flow_cache.register_into(registry)
            self.sessions.hot_store.register_into(registry)
        registry.gauge("sessions.active").set_function(
            lambda: len(self.sessions)
        )
        return registry

    # ------------------------------------------------------------------
    def inject_downlink(self, packet: Packet) -> None:
        """A DL packet arrives from the DN at the UPF-U (N6)."""
        self.upf_u.process(packet)

    def inject_uplink(self, packet: Packet) -> None:
        """A UL packet arrives from a gNB at the UPF-U (N3)."""
        packet.direction = Direction.UPLINK
        self.upf_u.process(packet)

    def inject_downlink_burst(self, packets) -> list:
        """A DL burst arrives from the DN (N6), ``burst_size`` at a time."""
        return self._inject_burst(packets)

    def inject_uplink_burst(self, packets) -> list:
        """A UL burst arrives from the RAN (N3), ``burst_size`` at a time."""
        for packet in packets:
            packet.direction = Direction.UPLINK
        return self._inject_burst(packets)

    def _inject_burst(self, packets) -> list:
        burst_size = max(1, self.config.burst_size)
        outcomes: list = []
        for begin in range(0, len(packets), burst_size):
            outcomes.extend(
                self.upf_u.process_burst(packets[begin:begin + burst_size])
            )
        return outcomes
