"""The 3GPP control-plane procedures (TS 23.502), as DES processes.

Each procedure is a generator that drives the exact message sequence of
the specification over the core's configured transports: UE
registration (§4.2.2.2), PDU session establishment (§4.3.2.2), the N2
handover (§4.9.1.3) and paging / network-triggered service request
(§4.2.3.3).  The sequences are *identical* for free5GC and L25GC —
only the per-message channel costs differ, which is precisely how the
paper argues 3GPP compliance while cutting latency.

Every procedure returns an :class:`EventResult` with its completion
time and message count; the Fig 8 experiment is a thin sweep over
these.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..net.packet import Direction, Packet, PacketKind
from ..obs import spans as _tracing
from ..pfcp.builder import (
    build_buffering_update,
    build_forward_update,
    build_path_switch,
    build_session_establishment,
)
from ..pfcp.ies import FTeidIE
from ..pfcp.messages import SessionDeletionRequest
from ..ran import ngap
from ..ran.ue import PDUSession, UserEquipment
from ..sbi import messages as sbi
from .context import HOState
from .core5g import FiveGCore

__all__ = ["EventResult", "ProcedureRunner"]


@dataclass
class EventResult:
    """Outcome of one control-plane procedure."""

    event: str
    system: str
    started_at: float
    completed_at: float
    messages: int
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at


class ProcedureRunner:
    """Runs the 3GPP procedures on a :class:`FiveGCore`."""

    def __init__(self, core: FiveGCore):
        self.core = core
        self.env = core.env
        self.costs = core.costs

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _radio(self, duration: float):
        tracer = _tracing.active()
        if tracer is not None:
            # The radio leg's extent is known up front; record it
            # without adding any event beyond the timeout itself.
            tracer.add_span(
                "radio",
                start=self.env.now,
                end=self.env.now + duration,
                category="radio",
            )
        return self.env.timeout(duration)

    def _step(self, name: str, **attrs: Any) -> Optional[_tracing.Span]:
        """Open a named semantic step span (paper-named sub-phases)."""
        tracer = _tracing.active()
        if tracer is None:
            return None
        return tracer.begin(name, **attrs)

    def _end_step(self, step: Optional[_tracing.Span], **attrs: Any) -> None:
        if step is None:
            return
        tracer = _tracing.active()
        if tracer is not None:
            tracer.finish(step, **attrs)

    def _needs_discovery(self, source: str, destination: str) -> bool:
        # free5GC consults the NRF per SBI request (its OpenAPI
        # consumers do not cache producer profiles); L25GC issues the
        # same discovery exchanges, only over shared memory.  N4 and
        # NGAP legs never involve the NRF.
        return self.core.config.nrf_discovery

    def _sbi(
        self,
        source: str,
        destination: str,
        request: sbi.SBIMessage,
        response: sbi.SBIMessage,
        request_handler_time: Optional[float] = None,
        response_handler_time: Optional[float] = None,
    ):
        return self.core.sbi_exchange(
            source,
            destination,
            request,
            response,
            discovery=self._needs_discovery(source, destination),
            request_handler_time=request_handler_time,
            response_handler_time=response_handler_time,
        )

    def _result(
        self, event: str, started_at: float, messages_before: int, **detail: Any
    ) -> EventResult:
        return EventResult(
            event=event,
            system=self.core.config.name,
            started_at=started_at,
            completed_at=self.env.now,
            messages=self.core.bus.total_messages() - messages_before,
            detail=detail,
        )

    # ------------------------------------------------------------------
    # UE registration (TS 23.502 §4.2.2.2)
    # ------------------------------------------------------------------
    @_tracing.traced("registration")
    def register_ue(self, ue: UserEquipment, gnb_id: int = 1):
        """Initial registration: auth, security mode, policy, accept."""
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        gnb = core.gnbs[gnb_id]
        gnb.connect(ue)

        # 1. RRC setup + Registration Request over N1/N2.
        yield self._radio(costs.radio_message + costs.ue_nas_processing)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.InitialUEMessage(nas=ngap.RegistrationRequest(supi=ue.supi)),
        )
        core.amf.begin_authentication(ue.supi)

        # 2. Authentication: AMF -> AUSF -> UDM (vector derivation).
        yield from self._sbi(
            "amf",
            "ausf",
            sbi.UEAuthenticationRequest(),
            sbi.UEAuthenticationResponse(),
            request_handler_time=costs.auth_processing,
        )
        yield from self._sbi(
            "ausf",
            "udm",
            sbi.SubscriptionDataRequest(
                supi=ue.supi, dataset_names=["AUTH"]
            ),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.suci_deconcealment,
        )
        supi = core.udm.deconceal_suci(ue.supi)
        vector = core.ausf.challenge(
            supi, "5G:mnc093.mcc208.3gppnetwork.org",
            core.udm.subscriber_key(ue.supi),
        )

        # 3. Challenge to the UE and its response.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.DownlinkNASTransport(
                nas=ngap.AuthenticationRequest(rand=vector.rand, autn=vector.autn)
            ),
        )
        yield self._radio(2 * costs.radio_message + costs.ue_nas_processing)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.UplinkNASTransport(nas=ngap.AuthenticationResponse()),
        )
        yield from self._sbi(
            "amf",
            "ausf",
            sbi.AuthConfirmationRequest(),
            sbi.UEAuthenticationResponse(),
            request_handler_time=costs.auth_processing,
        )

        # 4. NAS security mode.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.DownlinkNASTransport(nas=ngap.SecurityModeCommand()),
        )
        yield self._radio(2 * costs.radio_message + costs.ue_nas_processing)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.UplinkNASTransport(nas=ngap.SecurityModeComplete()),
        )
        core.amf.complete_security(ue.supi, "kseaf")

        # 5. UDM registration + subscription data + AM policy.
        yield from self._sbi(
            "amf",
            "udm",
            sbi.SubscriptionDataRequest(supi=ue.supi, dataset_names=["AM"]),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.subscription_fetch,
        )
        yield from self._sbi(
            "amf",
            "udm",
            sbi.SubscriptionDataRequest(
                supi=ue.supi, dataset_names=["SMF_SEL", "UEC_SMF"]
            ),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.subscription_fetch,
        )
        yield from self._sbi(
            "amf",
            "pcf",
            sbi.AmPolicyCreateRequest(supi=ue.supi),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.policy_decision,
        )
        core.pcf.create_am_policy(ue.supi)

        # 6. Registration Accept / Complete.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.InitialContextSetupRequest(nas=ngap.RegistrationAccept()),
            handler_time=costs.gnb_processing,
        )
        yield self._radio(2 * costs.radio_message + costs.ue_nas_processing)
        yield core.ngap_send("ran", "amf", ngap.InitialContextSetupResponse())
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.UplinkNASTransport(nas=ngap.RegistrationComplete()),
        )
        guti = core.amf.complete_registration(ue.supi, gnb_id)
        ue.register(gnb_id, guti)
        return self._result("registration", started_at, messages_before)

    # ------------------------------------------------------------------
    # Registration via untrusted non-3GPP access (TS 23.502 §4.12.2)
    # ------------------------------------------------------------------
    @_tracing.traced("registration-non3gpp")
    def register_ue_non3gpp(self, ue: UserEquipment, n3iwf_id: int = 100):
        """Registration through an N3IWF with EAP-AKA' authentication.

        The WiFi/IoT access path the paper calls out (§2.2): IKEv2
        SA_INIT, EAP-AKA' carried in IKE_AUTH exchanges, an IPsec
        signalling SA, then NAS over IPsec for the registration accept.
        """
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        n3iwf = core.gnbs[n3iwf_id]
        wifi_rtt = 2 * n3iwf.wifi_latency

        # 1. IKE_SA_INIT exchange (DH + nonces) over WiFi.
        yield self._radio(wifi_rtt + costs.gnb_processing)

        # 2. IKE_AUTH #1: the UE's identity reaches the AMF.
        yield self._radio(wifi_rtt)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.InitialUEMessage(nas=ngap.RegistrationRequest(supi=ue.supi)),
        )
        core.amf.begin_authentication(ue.supi)

        # 3. EAP-AKA' start: AMF -> AUSF -> UDM.
        yield from self._sbi(
            "amf",
            "ausf",
            sbi.UEAuthenticationRequest(),
            sbi.UEAuthenticationResponse(auth_type="EAP_AKA_PRIME"),
            request_handler_time=costs.auth_processing,
        )
        yield from self._sbi(
            "ausf",
            "udm",
            sbi.SubscriptionDataRequest(supi=ue.supi, dataset_names=["AUTH"]),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.suci_deconcealment,
        )
        network_name = "5G:NR:non3gpp"
        vector = core.ausf.eap_aka_prime_challenge(
            ue.supi, network_name, core.udm.subscriber_key(ue.supi)
        )

        # 4. EAP-Request/AKA'-Challenge down to the UE (IKE_AUTH leg),
        #    EAP-Response back up.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.DownlinkNASTransport(
                nas=ngap.AuthenticationRequest(
                    rand=vector.rand, autn=vector.autn
                )
            ),
        )
        yield self._radio(wifi_rtt + costs.ue_nas_processing)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.UplinkNASTransport(nas=ngap.AuthenticationResponse()),
        )
        yield from self._sbi(
            "amf",
            "ausf",
            sbi.AuthConfirmationRequest(),
            sbi.UEAuthenticationResponse(auth_type="EAP_AKA_PRIME"),
            request_handler_time=costs.auth_processing,
        )

        # 5. EAP-Success + the IPsec signalling SA comes up.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.DownlinkNASTransport(nas=ngap.SecurityModeCommand()),
        )
        yield self._radio(wifi_rtt + costs.ue_nas_processing)
        signalling_sa = n3iwf.establish_signalling_sa(ue)
        core.amf.complete_security(ue.supi, "kseaf-eap")

        # 6. Subscription + policy, as for 3GPP access.
        yield from self._sbi(
            "amf",
            "udm",
            sbi.SubscriptionDataRequest(supi=ue.supi, dataset_names=["AM"]),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.subscription_fetch,
        )
        yield from self._sbi(
            "amf",
            "pcf",
            sbi.AmPolicyCreateRequest(
                supi=ue.supi, access_type="NON_3GPP_ACCESS"
            ),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.policy_decision,
        )
        core.pcf.create_am_policy(ue.supi)

        # 7. Registration Accept over NAS-in-IPsec.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.InitialContextSetupRequest(nas=ngap.RegistrationAccept()),
            handler_time=costs.gnb_processing,
        )
        yield self._radio(wifi_rtt + costs.ue_nas_processing)
        yield core.ngap_send("ran", "amf", ngap.InitialContextSetupResponse())
        guti = core.amf.complete_registration(ue.supi, n3iwf_id)
        ue.register(n3iwf_id, guti)
        return self._result(
            "registration-non3gpp",
            started_at,
            messages_before,
            signalling_spi=signalling_sa.spi,
        )

    @_tracing.traced("session-request-non3gpp")
    def establish_session_non3gpp(
        self, ue: UserEquipment, pdu_session_id: int = 1
    ):
        """PDU session over non-3GPP access: the standard procedure
        plus an IPsec child SA for the user plane."""
        core = self.core
        n3iwf = core.gnbs[ue.serving_gnb_id]
        result = yield from self.establish_session(ue, pdu_session_id)
        child_sa = n3iwf.establish_child_sa(ue, pdu_session_id)
        result.detail["child_spi"] = child_sa.spi
        return result

    # ------------------------------------------------------------------
    # PDU session establishment (TS 23.502 §4.3.2.2)
    # ------------------------------------------------------------------
    @_tracing.traced("session-request")
    def establish_session(
        self, ue: UserEquipment, pdu_session_id: int = 1
    ):
        """UE-requested PDU session establishment."""
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        gnb = core.gnbs[ue.serving_gnb_id]

        # 1. NAS request rides N1 to the AMF.
        yield self._radio(costs.radio_message + costs.ue_nas_processing)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.UplinkNASTransport(
                nas=ngap.PDUSessionEstablishmentRequest(
                    supi=ue.supi, pdu_session_id=pdu_session_id
                )
            ),
        )

        # 2. AMF -> SMF: create the SM context.
        yield from self._sbi(
            "amf",
            "smf",
            sbi.PostSmContextsRequest(
                supi=ue.supi, pdu_session_id=pdu_session_id
            ),
            sbi.PostSmContextsResponse(),
            request_handler_time=costs.smf_context_setup,
        )
        sm = core.smf.create_sm_context(ue.supi, pdu_session_id)
        sm.ue_ip = core.ue_ip_pool.allocate()

        # 3. SMF fetches SM subscription data and the SM policy.
        yield from self._sbi(
            "smf",
            "udm",
            sbi.SubscriptionDataRequest(
                supi=ue.supi, dataset_names=["SM"]
            ),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.subscription_fetch,
        )
        yield from self._sbi(
            "smf",
            "pcf",
            sbi.SmPolicyCreateRequest(
                supi=ue.supi, pdu_session_id=pdu_session_id
            ),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.policy_decision,
        )
        core.pcf.create_sm_policy(ue.supi, pdu_session_id)

        # 4. N4 session establishment at the UPF (UL TEID chosen later
        #    by UPF via CHOOSE is modeled as SMF-assigned here; the DL
        #    endpoint at the gNB is not known yet, so the DL FAR starts
        #    in buffering mode -- exactly free5GC's behaviour).
        # DN-side authorization (DN-AAA / address configuration); a
        # transport-independent leg of session establishment.
        yield self._radio(costs.dn_authorization)

        sm.ul_teid = core.upf_c.allocate_teid(ue_ip=sm.ue_ip)
        establishment = build_session_establishment(
            seid=sm.seid,
            sequence=core.smf.next_sequence(),
            ue_ip=sm.ue_ip,
            upf_address=core.UPF_ADDRESS,
            ul_teid=sm.ul_teid,
            gnb_address=0,
            dl_teid=0,
            smf_address=core.UPF_ADDRESS,
        )
        yield from core.n4_exchange(establishment)

        # 5. SMF -> AMF -> gNB: N2 resource setup.
        yield from self._sbi(
            "smf",
            "amf",
            sbi.N1N2MessageTransfer(pdu_session_id=pdu_session_id),
            sbi.N1N2MessageTransferResponse(),
        )
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.PDUSessionResourceSetupRequest(
                pdu_session_id=pdu_session_id,
                ul_teid=sm.ul_teid,
                upf_address=core.UPF_ADDRESS,
                nas=ngap.PDUSessionEstablishmentAccept(
                    pdu_session_id=pdu_session_id
                ),
            ),
            handler_time=costs.gnb_processing,
        )
        yield self._radio(2 * costs.radio_message + costs.ue_nas_processing)
        dl_teid = gnb.allocate_dl_teid()
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.PDUSessionResourceSetupResponse(
                pdu_session_id=pdu_session_id,
                dl_teid=dl_teid,
                gnb_address=gnb.address,
            ),
        )

        # 6. AMF -> SMF -> UPF: install the gNB endpoint (activates DL).
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(up_cnx_state="ACTIVATING"),
            sbi.UpdateSmContextResponse(),
        )
        switch = build_forward_update(
            seid=sm.seid,
            sequence=core.smf.next_sequence(),
            gnb_address=gnb.address,
            dl_teid=dl_teid,
        )
        yield from core.n4_exchange(switch)
        sm.dl_teid = dl_teid
        sm.gnb_address = gnb.address
        sm.bump()
        core.dl_routes[dl_teid] = (gnb, ue)
        ue.add_session(
            PDUSession(session_id=pdu_session_id, ue_ip=sm.ue_ip)
        )
        return self._result(
            "session-request",
            started_at,
            messages_before,
            seid=sm.seid,
            ue_ip=sm.ue_ip,
            ul_teid=sm.ul_teid,
            dl_teid=dl_teid,
        )

    # ------------------------------------------------------------------
    # AN release: UE goes idle (paging precondition)
    # ------------------------------------------------------------------
    @_tracing.traced("release-to-idle")
    def release_to_idle(self, ue: UserEquipment, pdu_session_id: int = 1):
        """UE-inactivity AN release: DL FAR flips to BUFF+NOCP."""
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        sm = core.smf.context_for(ue.supi, pdu_session_id)

        yield core.ngap_send(
            "ran", "amf", ngap.UEContextReleaseCommand()
        )
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(up_cnx_state="DEACTIVATED"),
            sbi.UpdateSmContextResponse(),
        )
        buffering = build_buffering_update(
            seid=sm.seid,
            sequence=core.smf.next_sequence(),
            notify_cp=True,
        )
        yield from core.n4_exchange(buffering)
        sm.up_active = False
        sm.bump()
        yield core.ngap_send("amf", "ran", ngap.UEContextReleaseComplete())
        ue.go_idle()
        core.amf.release_connection(ue.supi)
        return self._result("an-release", started_at, messages_before)

    # ------------------------------------------------------------------
    # Paging / network-triggered service request (TS 23.502 §4.2.3.3)
    # ------------------------------------------------------------------
    @_tracing.traced("paging")
    def page_ue(self, ue: UserEquipment, pdu_session_id: int = 1):
        """From the DL data report to reactivated DL forwarding.

        Entered after the UPF's SessionReportRequest reached the SMF
        (that exchange is accounted by the caller /
        :meth:`FiveGCore._report_to_smf`).
        """
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        sm = core.smf.context_for(ue.supi, pdu_session_id)
        gnb = core.gnbs[ue.serving_gnb_id]

        # 1. SMF asks the AMF to reach the UE.
        yield from self._sbi(
            "smf",
            "amf",
            sbi.N1N2MessageTransfer(pdu_session_id=pdu_session_id),
            sbi.N1N2MessageTransferResponse(
                cause="ATTEMPTING_TO_REACH_UE"
            ),
        )

        # 2. The AMF pages; the UE wakes and sends a Service Request.
        yield core.ngap_send(
            "amf", "ran", ngap.PagingMessage(supi=ue.supi)
        )
        yield self._radio(
            costs.paging_wakeup + costs.radio_message + costs.ue_nas_processing
        )
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.InitialUEMessage(nas=ngap.ServiceRequest(supi=ue.supi)),
        )

        # 3. AMF -> SMF: activate the user plane.
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(up_cnx_state="ACTIVATING"),
            sbi.UpdateSmContextResponse(),
        )

        # 4. N2 context setup towards the gNB and the radio leg.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.InitialContextSetupRequest(nas=ngap.ServiceAccept()),
            handler_time=costs.gnb_processing,
        )
        yield self._radio(costs.radio_message)
        yield core.ngap_send(
            "ran", "amf", ngap.InitialContextSetupResponse()
        )

        # 5. SMF -> UPF: forward again (drains the smart buffer) once
        #    the RAN resources are in place (TS 23.502 §4.2.3.2 order).
        reactivate = build_forward_update(
            seid=sm.seid,
            sequence=core.smf.next_sequence(),
            gnb_address=sm.gnb_address,
            dl_teid=sm.dl_teid,
        )
        yield from core.n4_exchange(reactivate)
        sm.up_active = True
        sm.bump()
        ue.wake()
        core.amf.resume_connection(ue.supi)
        return self._result("paging", started_at, messages_before)

    # ------------------------------------------------------------------
    # N2 handover (TS 23.502 §4.9.1.3)
    # ------------------------------------------------------------------
    @_tracing.traced("handover")
    def handover(
        self,
        ue: UserEquipment,
        target_gnb_id: int,
        pdu_session_id: int = 1,
    ):
        """N2 (inter-gNB via AMF) handover of one PDU session.

        Downlink packets are buffered during the handover: at the UPF
        (smart buffering, both evaluated systems per Fig 8's setup), or
        at the source gNB with hairpin re-routing when
        ``smart_handover_buffering`` is off (the 3GPP default analyzed
        in §5.4.2).
        """
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        sm = core.smf.context_for(ue.supi, pdu_session_id)
        source_gnb = core.gnbs[ue.serving_gnb_id]
        target_gnb = core.gnbs[target_gnb_id]
        smart = core.config.smart_handover_buffering

        # 1. Measurement report; source gNB decides to hand over.
        yield self._radio(costs.radio_message)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.HandoverRequired(target_gnb_id=target_gnb_id),
        )

        # 2. AMF -> SMF: handover preparation.
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(ho_state="PREPARING"),
            sbi.UpdateSmContextResponse(ho_state="PREPARING"),
        )
        sm.ho_state = HOState.PREPARING
        sm.bump()

        # 3. SMF -> UPF: allocate a TEID for the target; L25GC
        #    piggybacks the BUFF action on this same message (§3.3).
        prep = build_buffering_update(
            seid=sm.seid,
            sequence=core.smf.next_sequence(),
            notify_cp=False,
            choose_new_teid=True,
            upf_address=core.UPF_ADDRESS,
        )
        if not smart:
            # 3GPP flow: the UPF keeps forwarding; the *source gNB*
            # buffers from the moment the UE detaches.
            prep = replace(
                prep, ies=[ie for ie in prep.ies if isinstance(ie, FTeidIE)]
            )
            source_gnb.start_buffering(ue)
        step = self._step(
            "pfcp-session-modification-buffering", buffering_ie=smart
        )
        response = yield from core.n4_exchange(prep)
        self._end_step(step)
        allocated = response.find(FTeidIE)
        forwarding_teid = allocated.teid if allocated else 0

        # 4. SMF -> AMF: N2 SM information for the target gNB.
        yield from self._sbi(
            "smf",
            "amf",
            sbi.N1N2MessageTransfer(pdu_session_id=pdu_session_id),
            sbi.N1N2MessageTransferResponse(),
        )

        # 5. AMF -> target gNB: Handover Request / Acknowledge.  The
        #    target may refuse (admission control) — preparation
        #    failure cancels the handover and reverts the UPF state.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.HandoverRequest(
                pdu_session_id=pdu_session_id,
                ul_teid=sm.ul_teid,
                upf_address=core.UPF_ADDRESS,
            ),
            handler_time=costs.gnb_processing,
        )
        if not target_gnb.can_admit(ue):
            yield core.ngap_send(
                "ran", "amf", ngap.HandoverRequired(cause="no-resources")
            )
            yield from self._sbi(
                "amf",
                "smf",
                sbi.UpdateSmContextRequest(cause="HO_PREPARATION_FAILURE"),
                sbi.UpdateSmContextResponse(),
            )
            # Revert: resume direct forwarding / drain anything held.
            revert = build_forward_update(
                seid=sm.seid,
                sequence=core.smf.next_sequence(),
                gnb_address=sm.gnb_address,
                dl_teid=sm.dl_teid,
            )
            yield from core.n4_exchange(revert)
            if not smart:
                for packet in source_gnb.drain_buffer(ue):
                    core.upf_u.process(packet)
            sm.ho_state = HOState.NONE
            sm.target_gnb_address = 0
            sm.target_dl_teid = 0
            sm.bump()
            return self._result(
                "handover-cancelled",
                started_at,
                messages_before,
                cause="no-resources",
            )
        target_dl_teid = target_gnb.allocate_dl_teid()
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.HandoverRequestAcknowledge(
                pdu_session_id=pdu_session_id,
                dl_teid=target_dl_teid,
                gnb_address=target_gnb.address,
            ),
        )
        sm.target_gnb_address = target_gnb.address
        sm.target_dl_teid = target_dl_teid
        sm.ho_state = HOState.PREPARED
        sm.bump()

        # 6. AMF -> SMF: handover prepared (target tunnel staged).
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(
                ho_state="PREPARED",
                n2_sm_info_type="HANDOVER_REQ_ACK",
            ),
            sbi.UpdateSmContextResponse(ho_state="PREPARED"),
        )

        # 7. Handover Command to the UE via the source gNB.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.HandoverCommand(target_gnb_id=target_gnb_id),
        )
        yield self._radio(costs.radio_message)
        # The UE detaches: from here DL data must be buffered.
        source_gnb.disconnect(ue)
        target_gnb.connect(ue)

        # 8. The UE synchronizes with the target cell.
        yield self._radio(costs.radio_sync)
        ue.hand_over(target_gnb_id)
        yield core.ngap_send("ran", "amf", ngap.HandoverNotify())

        # 9. AMF -> SMF: handover complete.
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(ho_state="COMPLETED"),
            sbi.UpdateSmContextResponse(ho_state="COMPLETED"),
        )

        # 10. Mobility registration update with the UDM, source
        #     resource release, and the PCF mobility update.  The SMF
        #     defers the FAR path switch until the whole handover
        #     transaction commits (as free5GC does when tearing down
        #     indirect forwarding), so buffering spans the procedure.
        yield from self._sbi(
            "amf",
            "udm",
            sbi.SubscriptionDataRequest(
                supi=ue.supi, dataset_names=["AM"]
            ),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.subscription_fetch / 2,
        )
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(cause="SOURCE_RESOURCES_RELEASED"),
            sbi.UpdateSmContextResponse(),
        )
        yield from self._sbi(
            "amf",
            "pcf",
            sbi.AmPolicyCreateRequest(supi=ue.supi),
            sbi.SubscriptionDataResponse(),
            request_handler_time=costs.policy_decision,
        )

        # 11. SMF -> UPF: switch the DL path to the target gNB (the
        #     same message drains the smart buffer, in order).
        switch = build_path_switch(
            seid=sm.seid,
            sequence=core.smf.next_sequence(),
            new_gnb_address=target_gnb.address,
            new_dl_teid=target_dl_teid,
        )
        core.dl_routes[target_dl_teid] = (target_gnb, ue)
        # The UPF-C applies the FAR flip inside this exchange, so the
        # smart buffer's drain span nests under the path-switch step.
        step = self._step("pfcp-path-switch")
        yield from core.n4_exchange(switch)
        self._end_step(step)
        sm.commit_handover()

        hairpinned = 0
        if not smart:
            # 3GPP indirect forwarding: the source gNB's buffered
            # packets hairpin back through the UPF to the target gNB.
            for packet in source_gnb.drain_buffer(ue):
                hairpinned += 1
                packet.meta["hairpinned"] = True
                core.upf_u.process(packet)

        # GTP-U End Marker towards the source gNB: tells it no more
        # packets will arrive on the old tunnel (TS 29.281 §5.1).
        end_marker = Packet(
            size=36,
            kind=PacketKind.CONTROL,
            teid=sm.dl_teid,
            meta={"gtp_message": "end-marker"},
        )
        source_gnb.receive_downlink(end_marker, ue)

        yield core.ngap_send(
            "amf", "ran", ngap.UEContextReleaseCommand()
        )
        core.amf.relocate(ue.supi, target_gnb_id)
        return self._result(
            "handover",
            started_at,
            messages_before,
            target_dl_teid=target_dl_teid,
            forwarding_teid=forwarding_teid,
            hairpinned=hairpinned,
        )

    # ------------------------------------------------------------------
    # Xn handover (TS 23.502 §4.9.1.2)
    # ------------------------------------------------------------------
    @_tracing.traced("xn-handover")
    def xn_handover(
        self,
        ue: UserEquipment,
        target_gnb_id: int,
        pdu_session_id: int = 1,
    ):
        """Xn-based (gNB-to-gNB) handover with a path switch request.

        The preparation happens over the inter-gNB Xn interface without
        the 5GC; only the final Path Switch Request touches the AMF/SMF.
        The paper notes X2/Xn-style handover "is relatively small (or
        nonexistent)" in deployments — this procedure exists for the
        comparison: far fewer core messages than the N2 flow.
        """
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        sm = core.smf.context_for(ue.supi, pdu_session_id)
        source_gnb = core.gnbs[ue.serving_gnb_id]
        target_gnb = core.gnbs[target_gnb_id]

        # 1. Xn preparation: measurement, HO request/ack between gNBs
        #    (radio/backhaul legs, no core involvement).
        yield self._radio(costs.radio_message)
        yield self._radio(2 * costs.sctp_message + costs.gnb_processing)
        target_dl_teid = target_gnb.allocate_dl_teid()

        # 2. Execution: the UE moves; the source forwards in-flight
        #    data directly to the target over Xn (no hairpin).
        source_gnb.start_buffering(ue)
        yield self._radio(costs.radio_message)
        source_gnb.disconnect(ue)
        target_gnb.connect(ue)
        yield self._radio(costs.radio_sync)
        ue.hand_over(target_gnb_id)
        for packet in source_gnb.drain_buffer(ue):
            target_gnb.receive_downlink(packet, ue)

        # 3. Path Switch Request through the AMF to the SMF/UPF.
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.PathSwitchRequest(
                dl_teid=target_dl_teid, gnb_address=target_gnb.address
            ),
        )
        yield from self._sbi(
            "amf",
            "smf",
            sbi.UpdateSmContextRequest(
                ho_state="COMPLETED", n2_sm_info_type="PATH_SWITCH_REQ"
            ),
            sbi.UpdateSmContextResponse(),
        )
        switch = build_path_switch(
            seid=sm.seid,
            sequence=core.smf.next_sequence(),
            new_gnb_address=target_gnb.address,
            new_dl_teid=target_dl_teid,
        )
        core.dl_routes[target_dl_teid] = (target_gnb, ue)
        yield from core.n4_exchange(switch)
        sm.gnb_address = target_gnb.address
        sm.dl_teid = target_dl_teid
        sm.bump()
        yield core.ngap_send(
            "amf", "ran", ngap.PathSwitchRequest()  # acknowledge
        )
        core.amf.relocate(ue.supi, target_gnb_id)
        return self._result(
            "xn-handover",
            started_at,
            messages_before,
            target_dl_teid=target_dl_teid,
        )

    # ------------------------------------------------------------------
    # UE-initiated deregistration (TS 23.502 §4.2.2.3)
    # ------------------------------------------------------------------
    @_tracing.traced("deregistration")
    def deregister_ue(self, ue: UserEquipment):
        """Tear everything down: sessions, policies, registration."""
        core, costs = self.core, self.costs
        started_at = self.env.now
        messages_before = core.bus.total_messages()
        gnb = core.gnbs[ue.serving_gnb_id]

        # 1. NAS Deregistration Request.
        yield self._radio(costs.radio_message + costs.ue_nas_processing)
        yield core.ngap_send(
            "ran",
            "amf",
            ngap.UplinkNASTransport(nas=ngap.RegistrationRequest(
                supi=ue.supi, registration_type="deregistration"
            )),
        )

        # 2. Release every PDU session: AMF -> SMF -> UPF (N4 delete),
        #    SMF -> PCF policy termination.
        for session_id in list(ue.sessions):
            sm = core.smf.context_for(ue.supi, session_id)
            yield from self._sbi(
                "amf",
                "smf",
                sbi.UpdateSmContextRequest(cause="REL_DUE_TO_DEREGISTRATION"),
                sbi.UpdateSmContextResponse(),
            )
            deletion = SessionDeletionRequest(
                seid=sm.seid, sequence=core.smf.next_sequence()
            )
            yield from core.n4_exchange(deletion)
            core.dl_routes.pop(sm.dl_teid, None)
            core.ue_ip_pool.release(sm.ue_ip)
            yield from self._sbi(
                "smf",
                "pcf",
                sbi.SmPolicyCreateRequest(
                    supi=ue.supi, pdu_session_id=session_id
                ),
                sbi.SubscriptionDataResponse(),
            )

        # 3. AMF: UDM deregistration + AM policy termination.
        yield from self._sbi(
            "amf",
            "udm",
            sbi.SubscriptionDataRequest(supi=ue.supi, dataset_names=["DEREG"]),
            sbi.SubscriptionDataResponse(),
        )
        yield from self._sbi(
            "amf",
            "pcf",
            sbi.AmPolicyCreateRequest(supi=ue.supi),
            sbi.SubscriptionDataResponse(),
        )

        # 4. Deregistration Accept + AN release.
        yield core.ngap_send(
            "amf",
            "ran",
            ngap.DownlinkNASTransport(nas=ngap.RegistrationAccept()),
        )
        yield self._radio(costs.radio_message)
        yield core.ngap_send("amf", "ran", ngap.UEContextReleaseCommand())
        yield core.ngap_send("ran", "amf", ngap.UEContextReleaseComplete())
        gnb.disconnect(ue)
        ue.deregister()
        core.amf.context(ue.supi).cm_connected = False
        return self._result("deregistration", started_at, messages_before)
