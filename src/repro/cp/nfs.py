"""The 5GC control-plane network functions.

Each NF is a small, stateful service: the AMF owns UE contexts, the SMF
owns SM contexts and drives N4, the AUSF derives 5G-AKA vectors (real
hash-chain derivations, not placeholders), the UDM/UDR hold the
subscriber database, the PCF issues policies and the NRF is the service
registry.  They communicate exclusively through the
:class:`~repro.core.transport.MessageBus`, so flipping the bus channel
between HTTP/JSON and shared memory converts free5GC into L25GC without
touching any NF logic — exactly the paper's claim of 3GPP compliance.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .context import RegistrationState, SMContext, UEContext

__all__ = ["AMF", "SMF", "AUSF", "UDM", "PCF", "NRF", "AuthVector"]


@dataclass
class AuthVector:
    """A 5G-AKA authentication vector."""

    rand: str
    autn: str
    hxres_star: str
    kausf: str


def _digest(*parts: str) -> str:
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:32]


class AMF:
    """Access and Mobility Management Function."""

    def __init__(self, name: str = "amf"):
        self.name = name
        self.ue_contexts: Dict[str, UEContext] = {}
        self._guti_counter = itertools.count(1)
        self.handled = 0

    def context(self, supi: str) -> UEContext:
        if supi not in self.ue_contexts:
            self.ue_contexts[supi] = UEContext(supi=supi)
        return self.ue_contexts[supi]

    def begin_authentication(self, supi: str) -> None:
        ctx = self.context(supi)
        ctx.state = RegistrationState.AUTHENTICATING
        ctx.bump()

    def complete_security(self, supi: str, kseaf: str) -> None:
        ctx = self.context(supi)
        ctx.security_context = kseaf
        ctx.state = RegistrationState.SECURITY
        ctx.bump()

    def complete_registration(self, supi: str, gnb_id: int) -> str:
        ctx = self.context(supi)
        ctx.state = RegistrationState.REGISTERED
        ctx.serving_gnb_id = gnb_id
        ctx.cm_connected = True
        ctx.guti = f"5g-guti-20893cafe{next(self._guti_counter):010d}"
        ctx.bump()
        return ctx.guti

    def release_connection(self, supi: str) -> None:
        ctx = self.context(supi)
        ctx.cm_connected = False
        ctx.bump()

    def resume_connection(self, supi: str) -> None:
        ctx = self.context(supi)
        ctx.cm_connected = True
        ctx.bump()

    def relocate(self, supi: str, target_gnb_id: int) -> None:
        ctx = self.context(supi)
        ctx.serving_gnb_id = target_gnb_id
        ctx.bump()

    def handle_message(self, message: Any, bus: Any) -> None:
        self.handled += 1

    # -- resiliency hooks --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            supi: ctx.snapshot() for supi, ctx in self.ue_contexts.items()
        }

    def restore(self, data: Dict[str, Any]) -> None:
        self.ue_contexts = {
            supi: UEContext.restore(ctx) for supi, ctx in data.items()
        }


class SMF:
    """Session Management Function."""

    def __init__(self, name: str = "smf"):
        self.name = name
        self.sm_contexts: Dict[int, SMContext] = {}
        self._seid_counter = itertools.count(1)
        self._seq_counter = itertools.count(1)
        self.handled = 0

    def create_sm_context(
        self, supi: str, pdu_session_id: int, dnn: str = "internet"
    ) -> SMContext:
        seid = next(self._seid_counter)
        ctx = SMContext(
            supi=supi, pdu_session_id=pdu_session_id, seid=seid, dnn=dnn
        )
        self.sm_contexts[seid] = ctx
        return ctx

    def context_for(self, supi: str, pdu_session_id: int) -> SMContext:
        for ctx in self.sm_contexts.values():
            if ctx.supi == supi and ctx.pdu_session_id == pdu_session_id:
                return ctx
        raise KeyError(f"no SM context for {supi}/{pdu_session_id}")

    def next_sequence(self) -> int:
        return next(self._seq_counter)

    def handle_message(self, message: Any, bus: Any) -> None:
        self.handled += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            seid: ctx.snapshot() for seid, ctx in self.sm_contexts.items()
        }

    def restore(self, data: Dict[str, Any]) -> None:
        self.sm_contexts = {
            int(seid): SMContext.restore(ctx) for seid, ctx in data.items()
        }


class AUSF:
    """Authentication Server Function (5G-AKA, hash-chain derived)."""

    def __init__(self, name: str = "ausf"):
        self.name = name
        self.pending: Dict[str, AuthVector] = {}
        self.handled = 0

    def challenge(self, supi: str, serving_network: str, key: str) -> AuthVector:
        """Derive the AKA vector from the subscriber key."""
        rand = _digest("rand", supi, serving_network)
        autn = _digest("autn", key, rand)
        xres_star = _digest("xres*", key, rand, serving_network)
        vector = AuthVector(
            rand=rand,
            autn=autn,
            hxres_star=_digest("hxres*", xres_star),
            kausf=_digest("kausf", key, rand),
        )
        self.pending[supi] = vector
        return vector

    def confirm(self, supi: str, res_star: str, key: str) -> Optional[str]:
        """Verify RES*; returns KSEAF on success, None on failure."""
        vector = self.pending.get(supi)
        if vector is None:
            return None
        expected = _digest(
            "xres*", key, vector.rand, "5G:mnc093.mcc208.3gppnetwork.org"
        )
        if res_star != expected:
            return None
        del self.pending[supi]
        return _digest("kseaf", vector.kausf)

    # -- EAP-AKA' (RFC 5448 / TS 33.501 Annex F) --------------------------
    def eap_aka_prime_challenge(
        self, supi: str, network_name: str, key: str
    ) -> AuthVector:
        """EAP-AKA' challenge for non-3GPP access (via N3IWF).

        CK'/IK' bind the keys to the access network name, which is what
        distinguishes AKA' from plain AKA.
        """
        rand = _digest("eap-rand", supi, network_name)
        ck_prime = _digest("ck'", key, rand, network_name)
        ik_prime = _digest("ik'", key, rand, network_name)
        vector = AuthVector(
            rand=rand,
            autn=_digest("eap-autn", key, rand),
            hxres_star=_digest("mk", ik_prime, ck_prime, supi),
            kausf=_digest("emsk", ik_prime, ck_prime),
        )
        self.pending[f"eap:{supi}"] = vector
        return vector

    def eap_aka_prime_confirm(
        self, supi: str, response: str, network_name: str, key: str
    ) -> Optional[str]:
        """Verify the AT_RES; returns KSEAF (from EMSK) on success."""
        vector = self.pending.get(f"eap:{supi}")
        if vector is None:
            return None
        expected = _digest("at-res", key, vector.rand, network_name)
        if response != expected:
            return None
        del self.pending[f"eap:{supi}"]
        return _digest("kseaf", vector.kausf)

    def handle_message(self, message: Any, bus: Any) -> None:
        self.handled += 1


class UDM:
    """Unified Data Management + Repository (subscriber database)."""

    def __init__(self, name: str = "udm"):
        self.name = name
        self.subscribers: Dict[str, Dict[str, Any]] = {}
        self.handled = 0

    def provision(
        self, supi: str, key: str = "465b5ce8b199b49faa5f0a2ee238a6bc"
    ) -> None:
        """Add a subscriber record (the free5GC test-subscriber shape)."""
        self.subscribers[supi] = {
            "key": key,
            "am_data": {
                "subscribedUeAmbr": {"uplink": "1 Gbps", "downlink": "2 Gbps"},
                "nssai": {"defaultSingleNssais": [{"sst": 1, "sd": "010203"}]},
            },
            "sm_data": {"dnnConfigurations": {"internet": {"pduSessionTypes": ["IPV4"]}}},
        }

    def subscriber_key(self, supi: str) -> str:
        if supi not in self.subscribers:
            raise KeyError(f"unknown subscriber: {supi}")
        return self.subscribers[supi]["key"]

    def subscription_data(self, supi: str, dataset: str) -> Dict[str, Any]:
        if supi not in self.subscribers:
            raise KeyError(f"unknown subscriber: {supi}")
        return self.subscribers[supi].get(dataset, {})

    def deconceal_suci(self, suci: str) -> str:
        """Map a SUCI back to its SUPI (ECIES deconcealment, modeled)."""
        # suci-0-<mcc>-<mnc>-0000-0-0-<msin> -> imsi-<mcc><mnc><msin>
        parts = suci.split("-")
        if len(parts) >= 8 and parts[0] == "suci":
            return f"imsi-{parts[2]}{parts[3]}{parts[7]}"
        return suci

    def handle_message(self, message: Any, bus: Any) -> None:
        self.handled += 1


class PCF:
    """Policy Control Function."""

    def __init__(self, name: str = "pcf"):
        self.name = name
        self.am_policies: Dict[str, Dict[str, Any]] = {}
        self.sm_policies: Dict[str, Dict[str, Any]] = {}
        self._policy_counter = itertools.count(1)
        self.handled = 0

    def create_am_policy(self, supi: str) -> str:
        policy_id = f"am-policy-{next(self._policy_counter)}"
        self.am_policies[supi] = {
            "id": policy_id,
            "rfsp": 1,
            "serviceAreaRestriction": None,
        }
        return policy_id

    def create_sm_policy(self, supi: str, pdu_session_id: int) -> str:
        policy_id = f"sm-policy-{next(self._policy_counter)}"
        self.sm_policies[f"{supi}/{pdu_session_id}"] = {
            "id": policy_id,
            "sessionRules": {"rule-1": {"authSessAmbr": {"uplink": "1 Gbps"}}},
            "pccRules": {"pcc-1": {"precedence": 255, "qfi": 9}},
        }
        return policy_id

    def handle_message(self, message: Any, bus: Any) -> None:
        self.handled += 1


class NRF:
    """NF Repository Function: the service registry."""

    def __init__(self, name: str = "nrf"):
        self.name = name
        self.profiles: Dict[str, Dict[str, Any]] = {}
        self.discoveries = 0
        self.handled = 0

    def register_nf(self, nf_type: str, instance_id: str, address: str) -> None:
        self.profiles[instance_id] = {
            "nfType": nf_type,
            "nfInstanceId": instance_id,
            "address": address,
            "nfStatus": "REGISTERED",
        }

    def discover(self, target_nf_type: str) -> List[Dict[str, Any]]:
        self.discoveries += 1
        return [
            profile
            for profile in self.profiles.values()
            if profile["nfType"] == target_nf_type
        ]

    def handle_message(self, message: Any, bus: Any) -> None:
        self.handled += 1
