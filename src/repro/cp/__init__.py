"""Control plane: NFs, contexts, 5GC assembly, 3GPP procedures."""

from .context import HOState, RegistrationState, SMContext, UEContext
from .core5g import FiveGCore, SystemConfig
from .nfs import AMF, AUSF, NRF, PCF, SMF, UDM, AuthVector
from .procedures import EventResult, ProcedureRunner

__all__ = [
    "HOState",
    "RegistrationState",
    "SMContext",
    "UEContext",
    "FiveGCore",
    "SystemConfig",
    "AMF",
    "AUSF",
    "NRF",
    "PCF",
    "SMF",
    "UDM",
    "AuthVector",
    "EventResult",
    "ProcedureRunner",
]
