"""Control-plane contexts: the state the NFs keep per UE/session.

The AMF holds a :class:`UEContext` (registration, security, serving
gNB); the SMF holds an :class:`SMContext` per PDU session (SEID, TEIDs,
UE IP, handover state).  The resiliency framework checkpoints exactly
these objects (see :mod:`repro.resiliency.checkpoint`), so they expose
``snapshot``/``restore`` with plain-dict state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["RegistrationState", "HOState", "UEContext", "SMContext"]


class RegistrationState(Enum):
    """AMF-side registration state machine."""

    DEREGISTERED = "deregistered"
    AUTHENTICATING = "authenticating"
    SECURITY = "security-mode"
    REGISTERED = "registered"


class HOState(Enum):
    """SMF-side handover state (TS 29.502 hoState)."""

    NONE = "none"
    PREPARING = "preparing"
    PREPARED = "prepared"
    COMPLETED = "completed"


@dataclass
class UEContext:
    """Per-UE state at the AMF."""

    supi: str
    state: RegistrationState = RegistrationState.DEREGISTERED
    guti: Optional[str] = None
    serving_gnb_id: Optional[int] = None
    security_context: Optional[str] = None
    am_policy_id: Optional[str] = None
    cm_connected: bool = False
    #: Monotonic event counter for replica synchronization.
    version: int = 0

    def bump(self) -> None:
        self.version += 1

    def snapshot(self) -> Dict[str, Any]:
        data = asdict(self)
        data["state"] = self.state.value
        return data

    @classmethod
    def restore(cls, data: Dict[str, Any]) -> "UEContext":
        data = dict(data)
        data["state"] = RegistrationState(data["state"])
        return cls(**data)


@dataclass
class SMContext:
    """Per-PDU-session state at the SMF."""

    supi: str
    pdu_session_id: int
    seid: int = 0
    dnn: str = "internet"
    ue_ip: int = 0
    ul_teid: int = 0
    dl_teid: int = 0
    gnb_address: int = 0
    ho_state: HOState = HOState.NONE
    #: Target endpoints staged during handover preparation.
    target_gnb_address: int = 0
    target_dl_teid: int = 0
    up_active: bool = True
    version: int = 0

    def bump(self) -> None:
        self.version += 1

    def snapshot(self) -> Dict[str, Any]:
        data = asdict(self)
        data["ho_state"] = self.ho_state.value
        return data

    @classmethod
    def restore(cls, data: Dict[str, Any]) -> "SMContext":
        data = dict(data)
        data["ho_state"] = HOState(data["ho_state"])
        return cls(**data)

    def commit_handover(self) -> None:
        """Promote the staged target endpoints after HO completion."""
        if self.ho_state is not HOState.PREPARED:
            raise RuntimeError(
                f"cannot commit handover in state {self.ho_state.value}"
            )
        self.gnb_address = self.target_gnb_address
        self.dl_teid = self.target_dl_teid
        self.target_gnb_address = 0
        self.target_dl_teid = 0
        self.ho_state = HOState.COMPLETED
        self.bump()
