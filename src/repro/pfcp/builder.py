"""Convenience builders for the PFCP session messages the SMF emits.

The SMF composes the same IE trees over and over (UL/DL PDR pairs,
path-switch FAR updates, buffering FAR updates).  These helpers build
them exactly once so both the free5GC baseline and L25GC share the same
3GPP-compliant message content and only the transport differs.
"""

from __future__ import annotations

from typing import List, Optional

from . import ies, qos_ies
from .messages import (
    SessionEstablishmentRequest,
    SessionModificationRequest,
    SessionReportRequest,
)

__all__ = [
    "build_session_establishment",
    "build_path_switch",
    "build_buffering_update",
    "build_forward_update",
    "build_downlink_report",
    "build_qos_rules",
]


def build_qos_rules(
    qer_id: int = 1,
    qfi: int = 9,
    mbr_ul_kbps: int = 0,
    mbr_dl_kbps: int = 0,
    urr_id: Optional[int] = None,
    volume_threshold_bytes: Optional[int] = None,
) -> List[ies.IE]:
    """Create QER (gate + MBR) and optionally a URR with a volume
    threshold — the per-flow QoS treatment of §3.4/Appendix A."""
    out: List[ies.IE] = [
        qos_ies.CreateQerIE(
            children=[
                ies.QerIdIE(rule_id=qer_id),
                ies.QfiIE(qfi=qfi),
                qos_ies.GateStatusIE(),
                qos_ies.MbrIE(ul_kbps=mbr_ul_kbps, dl_kbps=mbr_dl_kbps),
            ]
        )
    ]
    if urr_id is not None:
        children: List[ies.IE] = [
            qos_ies.UrrIdIE(rule_id=urr_id),
            qos_ies.MeasurementMethodIE(volume=True),
        ]
        if volume_threshold_bytes is not None:
            children.append(
                qos_ies.VolumeThresholdIE(total_bytes=volume_threshold_bytes)
            )
        out.append(qos_ies.CreateUrrIE(children=children))
    return out


def _uplink_pdr(pdr_id: int, teid: int, upf_address: int, far_id: int) -> ies.CreatePdrIE:
    """UL PDR: match the GTP tunnel from the gNB, strip the outer header."""
    pdi = ies.PdiIE(
        children=[
            ies.SourceInterfaceIE(interface=ies.ACCESS),
            ies.FTeidIE(teid=teid, address=upf_address),
            ies.NetworkInstanceIE(instance="internet"),
        ]
    )
    return ies.CreatePdrIE(
        children=[
            ies.PdrIdIE(rule_id=pdr_id),
            ies.PrecedenceIE(precedence=32),
            pdi,
            ies.OuterHeaderRemovalIE(),
            ies.FarIdIE(rule_id=far_id),
        ]
    )


def _downlink_pdr(pdr_id: int, ue_ip: int, far_id: int) -> ies.CreatePdrIE:
    """DL PDR: match the UE IP as destination on the core side."""
    pdi = ies.PdiIE(
        children=[
            ies.SourceInterfaceIE(interface=ies.CORE),
            ies.UeIpAddressIE(address=ue_ip, source_or_destination=1),
            ies.NetworkInstanceIE(instance="internet"),
        ]
    )
    return ies.CreatePdrIE(
        children=[
            ies.PdrIdIE(rule_id=pdr_id),
            ies.PrecedenceIE(precedence=32),
            pdi,
            ies.FarIdIE(rule_id=far_id),
        ]
    )


def build_session_establishment(
    seid: int,
    sequence: int,
    ue_ip: int,
    upf_address: int,
    ul_teid: int,
    gnb_address: int,
    dl_teid: int,
    smf_address: int = 0,
    qos_rules: Optional[List[ies.IE]] = None,
    qer_id: Optional[int] = None,
    urr_id: Optional[int] = None,
) -> SessionEstablishmentRequest:
    """The SMF's N4 session establishment: UL+DL PDRs and FARs.

    ``qos_rules`` (from :func:`build_qos_rules`) attaches QER/URR
    creations; ``qer_id``/``urr_id`` reference them from both PDRs.
    """
    ul_far = ies.CreateFarIE(
        children=[
            ies.FarIdIE(rule_id=1),
            ies.ApplyActionIE(flags=ies.ACTION_FORW),
            ies.ForwardingParametersIE(
                children=[ies.DestinationInterfaceIE(interface=ies.CORE)]
            ),
        ]
    )
    dl_far = ies.CreateFarIE(
        children=[
            ies.FarIdIE(rule_id=2),
            ies.ApplyActionIE(flags=ies.ACTION_FORW),
            ies.ForwardingParametersIE(
                children=[
                    ies.DestinationInterfaceIE(interface=ies.ACCESS),
                    ies.OuterHeaderCreationIE(teid=dl_teid, address=gnb_address),
                ]
            ),
        ]
    )
    ul_pdr = _uplink_pdr(1, ul_teid, upf_address, 1)
    dl_pdr = _downlink_pdr(2, ue_ip, 2)
    for pdr in (ul_pdr, dl_pdr):
        if qer_id is not None:
            pdr.children.append(ies.QerIdIE(rule_id=qer_id))
        if urr_id is not None:
            pdr.children.append(qos_ies.UrrIdIE(rule_id=urr_id))
    message_ies: List[ies.IE] = [
        ies.NodeIdIE(address=smf_address),
        ies.FSeidIE(seid=seid, address=smf_address),
        ul_pdr,
        dl_pdr,
        ul_far,
        dl_far,
    ]
    if qos_rules:
        message_ies.extend(qos_rules)
    return SessionEstablishmentRequest(
        seid=seid, sequence=sequence, ies=message_ies
    )


def build_path_switch(
    seid: int,
    sequence: int,
    new_gnb_address: int,
    new_dl_teid: int,
) -> SessionModificationRequest:
    """Switch the DL FAR to the target gNB after handover completes.

    Flipping a buffering FAR to FORW drains the smart buffer first;
    the UPF's serial re-injection keeps delivery in order (§3.3).
    """
    flags = ies.ACTION_FORW
    update = ies.UpdateFarIE(
        children=[
            ies.FarIdIE(rule_id=2),
            ies.ApplyActionIE(flags=flags),
            ies.ForwardingParametersIE(
                children=[
                    ies.DestinationInterfaceIE(interface=ies.ACCESS),
                    ies.OuterHeaderCreationIE(
                        teid=new_dl_teid, address=new_gnb_address
                    ),
                ]
            ),
        ]
    )
    return SessionModificationRequest(
        seid=seid, sequence=sequence, ies=[update]
    )


def build_buffering_update(
    seid: int,
    sequence: int,
    notify_cp: bool = False,
    choose_new_teid: bool = False,
    upf_address: int = 0,
) -> SessionModificationRequest:
    """Buffer DL packets at the UPF (paging, or L25GC handover start).

    For handover, L25GC piggybacks the BUFF flag on the same session
    modification that allocates a new F-TEID for the target gNB (§3.3)
    — ``choose_new_teid`` adds that F-TEID with the CHOOSE flag.
    """
    flags = ies.ACTION_BUFF | (ies.ACTION_NOCP if notify_cp else 0)
    children: List[ies.IE] = [
        ies.FarIdIE(rule_id=2),
        ies.ApplyActionIE(flags=flags),
    ]
    update = ies.UpdateFarIE(children=children)
    message_ies: List[ies.IE] = [update]
    if choose_new_teid:
        message_ies.append(
            ies.FTeidIE(teid=0, address=upf_address, choose=True)
        )
    return SessionModificationRequest(
        seid=seid, sequence=sequence, ies=message_ies
    )


def build_forward_update(
    seid: int, sequence: int, gnb_address: int, dl_teid: int
) -> SessionModificationRequest:
    """Re-activate forwarding after paging (FORW towards the gNB)."""
    return build_path_switch(seid, sequence, gnb_address, dl_teid)


def build_downlink_report(
    seid: int, sequence: int, pdr_id: int = 2
) -> SessionReportRequest:
    """UPF -> SMF: first DL packet arrived for an idle UE."""
    return SessionReportRequest(
        seid=seid,
        sequence=sequence,
        ies=[
            ies.ReportTypeIE(dldr=True),
            ies.DownlinkDataReportIE(
                children=[ies.PdrIdIE(rule_id=pdr_id)]
            ),
        ],
    )
