"""PFCP Information Elements (3GPP TS 29.244) with real TLV codecs.

The N4 interface between SMF and UPF carries Packet Forwarding Control
Protocol messages built from type-length-value encoded IEs.  We
implement the subset the 5GC session procedures need — PDR/FAR/QER
creation and update, F-TEID and UE IP addressing, the Apply Action whose
BUFF flag L25GC piggybacks for smart handover buffering (§3.3), and the
downlink data report that triggers paging.

Each IE class knows its 3GPP type code and encodes its payload to real
bytes; grouped IEs nest child IEs.  ``decode_ies`` parses a buffer back
into typed objects through the registry.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Type

__all__ = [
    "IE",
    "CauseIE",
    "NodeIdIE",
    "FSeidIE",
    "PdrIdIE",
    "FarIdIE",
    "QerIdIE",
    "PrecedenceIE",
    "SourceInterfaceIE",
    "DestinationInterfaceIE",
    "FTeidIE",
    "UeIpAddressIE",
    "NetworkInstanceIE",
    "SdfFilterIE",
    "QfiIE",
    "ApplyActionIE",
    "OuterHeaderCreationIE",
    "OuterHeaderRemovalIE",
    "ReportTypeIE",
    "PdiIE",
    "CreatePdrIE",
    "ForwardingParametersIE",
    "CreateFarIE",
    "UpdateFarIE",
    "DownlinkDataReportIE",
    "decode_ies",
    "encode_ies",
    "IE_REGISTRY",
]

IE_REGISTRY: Dict[int, Type["IE"]] = {}

# Interface values (TS 29.244 §8.2.2 / §8.2.24)
ACCESS = 0
CORE = 1

# Apply Action flag bits (§8.2.26)
ACTION_DROP = 0x01
ACTION_FORW = 0x02
ACTION_BUFF = 0x04
ACTION_NOCP = 0x08  # Notify the CP function
ACTION_DUPL = 0x10

# Cause values (§8.2.1)
CAUSE_ACCEPTED = 1
CAUSE_REQUEST_REJECTED = 64
CAUSE_SESSION_NOT_FOUND = 65


def _register(cls: Type["IE"]) -> Type["IE"]:
    IE_REGISTRY[cls.IE_TYPE] = cls
    return cls


@dataclass(frozen=True)
class IE:
    """Base information element."""

    IE_TYPE: ClassVar[int] = 0
    GROUPED: ClassVar[bool] = False

    def payload(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def parse(cls, data: bytes) -> "IE":
        raise NotImplementedError

    def encode(self) -> bytes:
        body = self.payload()
        return struct.pack("!HH", self.IE_TYPE, len(body)) + body


def encode_ies(ies: List[IE]) -> bytes:
    """Concatenate the TLV encodings of a list of IEs."""
    return b"".join(ie.encode() for ie in ies)


def decode_ies(data: bytes) -> List[IE]:
    """Parse a buffer of TLVs into typed IEs (unknown types skipped)."""
    out: List[IE] = []
    pos = 0
    while pos < len(data):
        if pos + 4 > len(data):
            raise ValueError("truncated IE header")
        ie_type, length = struct.unpack_from("!HH", data, pos)
        pos += 4
        body = data[pos : pos + length]
        if len(body) < length:
            raise ValueError(f"truncated IE {ie_type} body")
        pos += length
        cls = IE_REGISTRY.get(ie_type)
        if cls is not None:
            try:
                out.append(cls.parse(body))
            except (struct.error, IndexError) as exc:
                raise ValueError(
                    f"malformed IE {ie_type}: {exc}"
                ) from exc
    return out


def _first(ies: List[IE], cls: Type[IE]) -> Optional[IE]:
    for ie in ies:
        if isinstance(ie, cls):
            return ie
    return None


# ---------------------------------------------------------------------------
# Scalar IEs
# ---------------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class CauseIE(IE):
    """Cause (type 19)."""

    IE_TYPE: ClassVar[int] = 19
    cause: int = CAUSE_ACCEPTED

    def payload(self) -> bytes:
        return struct.pack("!B", self.cause)

    @classmethod
    def parse(cls, data: bytes) -> "CauseIE":
        return cls(cause=data[0])

    @property
    def accepted(self) -> bool:
        return self.cause == CAUSE_ACCEPTED


@_register
@dataclass(frozen=True)
class NodeIdIE(IE):
    """Node ID (type 60), IPv4 form."""

    IE_TYPE: ClassVar[int] = 60
    address: int = 0

    def payload(self) -> bytes:
        return struct.pack("!BI", 0, self.address)  # 0 = IPv4

    @classmethod
    def parse(cls, data: bytes) -> "NodeIdIE":
        _kind, address = struct.unpack("!BI", data[:5])
        return cls(address=address)


@_register
@dataclass(frozen=True)
class FSeidIE(IE):
    """F-SEID (type 57): session endpoint id + IPv4."""

    IE_TYPE: ClassVar[int] = 57
    seid: int = 0
    address: int = 0

    def payload(self) -> bytes:
        return struct.pack("!BQI", 0x02, self.seid, self.address)  # V4 flag

    @classmethod
    def parse(cls, data: bytes) -> "FSeidIE":
        _flags, seid, address = struct.unpack("!BQI", data[:13])
        return cls(seid=seid, address=address)


@_register
@dataclass(frozen=True)
class PdrIdIE(IE):
    """PDR ID (type 56)."""

    IE_TYPE: ClassVar[int] = 56
    rule_id: int = 0

    def payload(self) -> bytes:
        return struct.pack("!H", self.rule_id)

    @classmethod
    def parse(cls, data: bytes) -> "PdrIdIE":
        return cls(rule_id=struct.unpack("!H", data[:2])[0])


@_register
@dataclass(frozen=True)
class FarIdIE(IE):
    """FAR ID (type 108)."""

    IE_TYPE: ClassVar[int] = 108
    rule_id: int = 0

    def payload(self) -> bytes:
        return struct.pack("!I", self.rule_id)

    @classmethod
    def parse(cls, data: bytes) -> "FarIdIE":
        return cls(rule_id=struct.unpack("!I", data[:4])[0])


@_register
@dataclass(frozen=True)
class QerIdIE(IE):
    """QER ID (type 109)."""

    IE_TYPE: ClassVar[int] = 109
    rule_id: int = 0

    def payload(self) -> bytes:
        return struct.pack("!I", self.rule_id)

    @classmethod
    def parse(cls, data: bytes) -> "QerIdIE":
        return cls(rule_id=struct.unpack("!I", data[:4])[0])


@_register
@dataclass(frozen=True)
class PrecedenceIE(IE):
    """Precedence (type 29): lower value wins."""

    IE_TYPE: ClassVar[int] = 29
    precedence: int = 255

    def payload(self) -> bytes:
        return struct.pack("!I", self.precedence)

    @classmethod
    def parse(cls, data: bytes) -> "PrecedenceIE":
        return cls(precedence=struct.unpack("!I", data[:4])[0])


@_register
@dataclass(frozen=True)
class SourceInterfaceIE(IE):
    """Source Interface (type 20): ACCESS (UL) or CORE (DL)."""

    IE_TYPE: ClassVar[int] = 20
    interface: int = ACCESS

    def payload(self) -> bytes:
        return struct.pack("!B", self.interface)

    @classmethod
    def parse(cls, data: bytes) -> "SourceInterfaceIE":
        return cls(interface=data[0] & 0x0F)


@_register
@dataclass(frozen=True)
class DestinationInterfaceIE(IE):
    """Destination Interface (type 42)."""

    IE_TYPE: ClassVar[int] = 42
    interface: int = CORE

    def payload(self) -> bytes:
        return struct.pack("!B", self.interface)

    @classmethod
    def parse(cls, data: bytes) -> "DestinationInterfaceIE":
        return cls(interface=data[0] & 0x0F)


@_register
@dataclass(frozen=True)
class FTeidIE(IE):
    """F-TEID (type 21): local tunnel endpoint.

    The CHOOSE flag asks the UPF to allocate a TEID itself — used by
    the handover flow when the SMF requests a new endpoint for the
    target gNB.
    """

    IE_TYPE: ClassVar[int] = 21
    teid: int = 0
    address: int = 0
    choose: bool = False

    def payload(self) -> bytes:
        flags = 0x01  # V4
        if self.choose:
            flags |= 0x04  # CH
        return struct.pack("!BIIB", flags, self.teid, self.address, 0)

    @classmethod
    def parse(cls, data: bytes) -> "FTeidIE":
        flags, teid, address, _choose_id = struct.unpack("!BIIB", data[:10])
        return cls(teid=teid, address=address, choose=bool(flags & 0x04))


@_register
@dataclass(frozen=True)
class UeIpAddressIE(IE):
    """UE IP Address (type 93)."""

    IE_TYPE: ClassVar[int] = 93
    address: int = 0
    source_or_destination: int = 0  # 0 = source (UL), 1 = destination (DL)

    def payload(self) -> bytes:
        flags = 0x02  # V4
        if self.source_or_destination:
            flags |= 0x04  # S/D
        return struct.pack("!BI", flags, self.address)

    @classmethod
    def parse(cls, data: bytes) -> "UeIpAddressIE":
        flags, address = struct.unpack("!BI", data[:5])
        return cls(
            address=address, source_or_destination=1 if flags & 0x04 else 0
        )


@_register
@dataclass(frozen=True)
class NetworkInstanceIE(IE):
    """Network Instance (type 22): the DNN's transport domain."""

    IE_TYPE: ClassVar[int] = 22
    instance: str = "internet"

    def payload(self) -> bytes:
        return self.instance.encode("ascii")

    @classmethod
    def parse(cls, data: bytes) -> "NetworkInstanceIE":
        return cls(instance=data.decode("ascii"))


@_register
@dataclass(frozen=True)
class SdfFilterIE(IE):
    """SDF Filter (type 23): an IP-filter flow description.

    The paper expands the SDF filter into IP 5-tuples plus extra fields
    (§2.3 challenge 3); we encode the flow description string exactly as
    TS 29.244 does and carry parsed match ranges alongside.
    """

    IE_TYPE: ClassVar[int] = 23
    flow_description: str = "permit out ip from any to assigned"
    tos: Optional[int] = None
    spi: Optional[int] = None
    flow_label: Optional[int] = None
    filter_id: Optional[int] = None

    def payload(self) -> bytes:
        flags = 0x01  # FD present
        if self.tos is not None:
            flags |= 0x02
        if self.spi is not None:
            flags |= 0x04
        if self.flow_label is not None:
            flags |= 0x08
        if self.filter_id is not None:
            flags |= 0x10
        raw = self.flow_description.encode("ascii")
        out = struct.pack("!BBH", flags, 0, len(raw)) + raw
        if self.tos is not None:
            out += struct.pack("!H", self.tos)
        if self.spi is not None:
            out += struct.pack("!I", self.spi)
        if self.flow_label is not None:
            out += struct.pack("!I", self.flow_label & 0xFFFFFF)
        if self.filter_id is not None:
            out += struct.pack("!I", self.filter_id)
        return out

    @classmethod
    def parse(cls, data: bytes) -> "SdfFilterIE":
        flags = data[0]
        pos = 2
        fields: Dict[str, object] = {"flow_description": ""}
        if flags & 0x01:
            (length,) = struct.unpack_from("!H", data, pos)
            pos += 2
            fields["flow_description"] = data[pos : pos + length].decode(
                "ascii"
            )
            pos += length
        if flags & 0x02:
            (fields["tos"],) = struct.unpack_from("!H", data, pos)
            pos += 2
        if flags & 0x04:
            (fields["spi"],) = struct.unpack_from("!I", data, pos)
            pos += 4
        if flags & 0x08:
            (fields["flow_label"],) = struct.unpack_from("!I", data, pos)
            pos += 4
        if flags & 0x10:
            (fields["filter_id"],) = struct.unpack_from("!I", data, pos)
            pos += 4
        return cls(**fields)


@_register
@dataclass(frozen=True)
class QfiIE(IE):
    """QoS Flow Identifier (type 124)."""

    IE_TYPE: ClassVar[int] = 124
    qfi: int = 9

    def payload(self) -> bytes:
        return struct.pack("!B", self.qfi & 0x3F)

    @classmethod
    def parse(cls, data: bytes) -> "QfiIE":
        return cls(qfi=data[0] & 0x3F)


@_register
@dataclass(frozen=True)
class ApplyActionIE(IE):
    """Apply Action (type 44): DROP/FORW/BUFF/NOCP/DUPL flags.

    L25GC's smart buffering is provisioned purely through this IE's
    standard BUFF flag piggybacked on a session modification — no new
    message types (§3.3).
    """

    IE_TYPE: ClassVar[int] = 44
    flags: int = ACTION_FORW

    def payload(self) -> bytes:
        return struct.pack("!B", self.flags)

    @classmethod
    def parse(cls, data: bytes) -> "ApplyActionIE":
        return cls(flags=data[0])

    @property
    def forward(self) -> bool:
        return bool(self.flags & ACTION_FORW)

    @property
    def buffer(self) -> bool:
        return bool(self.flags & ACTION_BUFF)

    @property
    def drop(self) -> bool:
        return bool(self.flags & ACTION_DROP)

    @property
    def notify_cp(self) -> bool:
        return bool(self.flags & ACTION_NOCP)


@_register
@dataclass(frozen=True)
class OuterHeaderCreationIE(IE):
    """Outer Header Creation (type 84): GTP-U/UDP/IPv4 towards a gNB."""

    IE_TYPE: ClassVar[int] = 84
    teid: int = 0
    address: int = 0

    def payload(self) -> bytes:
        return struct.pack("!HII", 0x0100, self.teid, self.address)

    @classmethod
    def parse(cls, data: bytes) -> "OuterHeaderCreationIE":
        _desc, teid, address = struct.unpack("!HII", data[:10])
        return cls(teid=teid, address=address)


@_register
@dataclass(frozen=True)
class OuterHeaderRemovalIE(IE):
    """Outer Header Removal (type 95)."""

    IE_TYPE: ClassVar[int] = 95
    description: int = 0  # 0 = GTP-U/UDP/IPv4

    def payload(self) -> bytes:
        return struct.pack("!B", self.description)

    @classmethod
    def parse(cls, data: bytes) -> "OuterHeaderRemovalIE":
        return cls(description=data[0])


@_register
@dataclass(frozen=True)
class ReportTypeIE(IE):
    """Report Type (type 39).

    DLDR = downlink data report (paging trigger); USAR = usage report
    (URR volume threshold).
    """

    IE_TYPE: ClassVar[int] = 39
    dldr: bool = True
    usar: bool = False

    def payload(self) -> bytes:
        flags = (0x01 if self.dldr else 0x00) | (0x02 if self.usar else 0x00)
        return struct.pack("!B", flags)

    @classmethod
    def parse(cls, data: bytes) -> "ReportTypeIE":
        return cls(dldr=bool(data[0] & 0x01), usar=bool(data[0] & 0x02))


# ---------------------------------------------------------------------------
# Grouped IEs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _GroupedIE(IE):
    """Base for IEs whose payload is a list of child IEs."""

    GROUPED: ClassVar[bool] = True
    children: List[IE] = field(default_factory=list)

    def payload(self) -> bytes:
        return encode_ies(self.children)

    @classmethod
    def parse(cls, data: bytes) -> "_GroupedIE":
        return cls(children=decode_ies(data))

    def child(self, cls_: Type[IE]) -> Optional[IE]:
        return _first(self.children, cls_)

    def children_of(self, cls_: Type[IE]) -> List[IE]:
        return [ie for ie in self.children if isinstance(ie, cls_)]


@_register
@dataclass(frozen=True)
class PdiIE(_GroupedIE):
    """Packet Detection Information (type 2, grouped)."""

    IE_TYPE: ClassVar[int] = 2


@_register
@dataclass(frozen=True)
class CreatePdrIE(_GroupedIE):
    """Create PDR (type 1, grouped): PDR ID, precedence, PDI, FAR ID."""

    IE_TYPE: ClassVar[int] = 1


@_register
@dataclass(frozen=True)
class ForwardingParametersIE(_GroupedIE):
    """Forwarding Parameters (type 4, grouped)."""

    IE_TYPE: ClassVar[int] = 4


@_register
@dataclass(frozen=True)
class CreateFarIE(_GroupedIE):
    """Create FAR (type 3, grouped): FAR ID, apply action, fwd params."""

    IE_TYPE: ClassVar[int] = 3


@_register
@dataclass(frozen=True)
class UpdateFarIE(_GroupedIE):
    """Update FAR (type 10, grouped) — carries the handover buffering
    action and the new outer header towards the target gNB."""

    IE_TYPE: ClassVar[int] = 10


@_register
@dataclass(frozen=True)
class DownlinkDataReportIE(_GroupedIE):
    """Downlink Data Report (type 83, grouped): PDR ID that saw DL data."""

    IE_TYPE: ClassVar[int] = 83
