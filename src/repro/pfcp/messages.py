"""PFCP messages (3GPP TS 29.244) with header codec.

Implements the node and session messages the 5GC session procedures
exchange on N4: association setup, heartbeat, session establishment /
modification / deletion / report.  Message encode/decode produces real
bytes (header + TLV IEs) and is exercised both by unit tests and by the
Fig 7 benchmark.

Each message class also carries ``HANDLER_TIME`` — the UPF-C/SMF
handler processing cost the paper identifies as the dominant, channel-
independent part of Fig 7's totals.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Type

from ..sim.engine import US
from .ies import IE, decode_ies, encode_ies

__all__ = [
    "PFCPHeader",
    "PFCPMessage",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "AssociationSetupRequest",
    "AssociationSetupResponse",
    "SessionEstablishmentRequest",
    "SessionEstablishmentResponse",
    "SessionModificationRequest",
    "SessionModificationResponse",
    "SessionDeletionRequest",
    "SessionDeletionResponse",
    "SessionReportRequest",
    "SessionReportResponse",
    "decode_message",
    "MESSAGE_TYPES",
]

MESSAGE_TYPES: Dict[int, Type["PFCPMessage"]] = {}


def _register(cls: Type["PFCPMessage"]) -> Type["PFCPMessage"]:
    MESSAGE_TYPES[cls.MESSAGE_TYPE] = cls
    return cls


@dataclass(frozen=True)
class PFCPHeader:
    """The PFCP message header (version 1).

    Session messages carry an 8-byte SEID; node messages do not.
    """

    message_type: int = 0
    seid: Optional[int] = None
    sequence: int = 0

    def pack(self, body_length: int) -> bytes:
        has_seid = self.seid is not None
        flags = 0x20 | (0x01 if has_seid else 0x00)  # version 1, S flag
        seq_spare = (self.sequence & 0xFFFFFF) << 8
        length = body_length + (12 if has_seid else 4)
        out = struct.pack("!BBH", flags, self.message_type, length)
        if has_seid:
            out += struct.pack("!Q", self.seid)
        out += struct.pack("!I", seq_spare)
        return out

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[PFCPHeader, bytes]":
        if len(data) < 8:
            raise ValueError("truncated PFCP header")
        flags, message_type, _length = struct.unpack_from("!BBH", data, 0)
        if flags >> 5 != 1:
            raise ValueError(f"unsupported PFCP version {flags >> 5}")
        pos = 4
        seid = None
        if flags & 0x01:
            if len(data) < pos + 12:
                raise ValueError("truncated PFCP session header")
            (seid,) = struct.unpack_from("!Q", data, pos)
            pos += 8
        if len(data) < pos + 4:
            raise ValueError("truncated PFCP sequence field")
        (seq_spare,) = struct.unpack_from("!I", data, pos)
        pos += 4
        header = cls(
            message_type=message_type, seid=seid, sequence=seq_spare >> 8
        )
        return header, data[pos:]


@dataclass(frozen=True)
class PFCPMessage:
    """Base PFCP message: a header plus a list of IEs."""

    MESSAGE_TYPE: ClassVar[int] = 0
    HAS_SEID: ClassVar[bool] = True
    #: UPF/SMF handler processing for this message type (seconds).
    #: Establishment installs full rule sets; modification touches
    #: existing ones; reports only notify.  These land Fig 7's totals
    #: in the paper's 21-39 % reduction band.
    HANDLER_TIME: ClassVar[float] = 450.0 * US

    seid: int = 0
    sequence: int = 0
    ies: List[IE] = field(default_factory=list)

    @property
    def name(self) -> str:
        return type(self).__name__

    def encode(self) -> bytes:
        body = encode_ies(self.ies)
        header = PFCPHeader(
            message_type=self.MESSAGE_TYPE,
            seid=self.seid if self.HAS_SEID else None,
            sequence=self.sequence,
        )
        return header.pack(len(body)) + body

    @classmethod
    def from_ies(cls, header: PFCPHeader, ies: List[IE]) -> "PFCPMessage":
        return cls(
            seid=header.seid or 0, sequence=header.sequence, ies=ies
        )

    def find(self, ie_class: Type[IE]) -> Optional[IE]:
        """First top-level IE of the given class, or None."""
        for ie in self.ies:
            if isinstance(ie, ie_class):
                return ie
        return None

    def find_all(self, ie_class: Type[IE]) -> List[IE]:
        return [ie for ie in self.ies if isinstance(ie, ie_class)]


def decode_message(data: bytes) -> PFCPMessage:
    """Decode bytes into the appropriate typed message."""
    header, body = PFCPHeader.unpack(data)
    cls = MESSAGE_TYPES.get(header.message_type)
    if cls is None:
        raise ValueError(f"unknown PFCP message type {header.message_type}")
    return cls.from_ies(header, decode_ies(body))


# ---------------------------------------------------------------------------
# Node messages
# ---------------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class HeartbeatRequest(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 1
    HAS_SEID: ClassVar[bool] = False
    HANDLER_TIME: ClassVar[float] = 20.0 * US


@_register
@dataclass(frozen=True)
class HeartbeatResponse(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 2
    HAS_SEID: ClassVar[bool] = False
    HANDLER_TIME: ClassVar[float] = 20.0 * US


@_register
@dataclass(frozen=True)
class AssociationSetupRequest(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 5
    HAS_SEID: ClassVar[bool] = False
    HANDLER_TIME: ClassVar[float] = 300.0 * US


@_register
@dataclass(frozen=True)
class AssociationSetupResponse(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 6
    HAS_SEID: ClassVar[bool] = False
    HANDLER_TIME: ClassVar[float] = 300.0 * US


# ---------------------------------------------------------------------------
# Session messages
# ---------------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class SessionEstablishmentRequest(PFCPMessage):
    """SMF -> UPF: install PDRs/FARs for a new PDU session."""

    MESSAGE_TYPE: ClassVar[int] = 50
    HANDLER_TIME: ClassVar[float] = 650.0 * US


@_register
@dataclass(frozen=True)
class SessionEstablishmentResponse(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 51
    HANDLER_TIME: ClassVar[float] = 250.0 * US


@_register
@dataclass(frozen=True)
class SessionModificationRequest(PFCPMessage):
    """SMF -> UPF: update FARs — path switch, buffering, paging wake."""

    MESSAGE_TYPE: ClassVar[int] = 52
    HANDLER_TIME: ClassVar[float] = 450.0 * US


@_register
@dataclass(frozen=True)
class SessionModificationResponse(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 53
    HANDLER_TIME: ClassVar[float] = 200.0 * US


@_register
@dataclass(frozen=True)
class SessionDeletionRequest(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 54
    HANDLER_TIME: ClassVar[float] = 350.0 * US


@_register
@dataclass(frozen=True)
class SessionDeletionResponse(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 55
    HANDLER_TIME: ClassVar[float] = 150.0 * US


@_register
@dataclass(frozen=True)
class SessionReportRequest(PFCPMessage):
    """UPF -> SMF: downlink data notification (starts paging)."""

    MESSAGE_TYPE: ClassVar[int] = 56
    HANDLER_TIME: ClassVar[float] = 200.0 * US


@_register
@dataclass(frozen=True)
class SessionReportResponse(PFCPMessage):
    MESSAGE_TYPE: ClassVar[int] = 57
    HANDLER_TIME: ClassVar[float] = 100.0 * US
