"""QoS-enforcement and usage-reporting IEs (TS 29.244).

The paper's challenge 3 argues the 5GC is becoming packet-oriented:
per-flow QoS (QER) and usage metering (URR) must live in the data
plane next to the PDRs.  These IEs extend :mod:`repro.pfcp.ies` with
the rule-provisioning vocabulary the SMF uses for both.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar

from .ies import IE, IE_REGISTRY, QerIdIE, _GroupedIE, _register

__all__ = [
    "GateStatusIE",
    "MbrIE",
    "GbrIE",
    "CreateQerIE",
    "UrrIdIE",
    "MeasurementMethodIE",
    "VolumeThresholdIE",
    "CreateUrrIE",
    "VolumeMeasurementIE",
    "UsageReportIE",
    "GATE_OPEN",
    "GATE_CLOSED",
]

GATE_OPEN = 0
GATE_CLOSED = 1


@_register
@dataclass(frozen=True)
class GateStatusIE(IE):
    """Gate Status (type 25): open/closed per direction."""

    IE_TYPE: ClassVar[int] = 25
    ul_gate: int = GATE_OPEN
    dl_gate: int = GATE_OPEN

    def payload(self) -> bytes:
        return struct.pack("!B", (self.ul_gate & 0x3) << 2 | (self.dl_gate & 0x3))

    @classmethod
    def parse(cls, data: bytes) -> "GateStatusIE":
        return cls(ul_gate=(data[0] >> 2) & 0x3, dl_gate=data[0] & 0x3)

    @property
    def dl_open(self) -> bool:
        return self.dl_gate == GATE_OPEN

    @property
    def ul_open(self) -> bool:
        return self.ul_gate == GATE_OPEN


@_register
@dataclass(frozen=True)
class MbrIE(IE):
    """Maximum Bit Rate (type 26), kbps per direction."""

    IE_TYPE: ClassVar[int] = 26
    ul_kbps: int = 0
    dl_kbps: int = 0

    def payload(self) -> bytes:
        # 5-byte fields in the spec; 8 bytes here for simplicity of a
        # faithful-but-readable codec.
        return struct.pack("!QQ", self.ul_kbps, self.dl_kbps)

    @classmethod
    def parse(cls, data: bytes) -> "MbrIE":
        ul_kbps, dl_kbps = struct.unpack("!QQ", data[:16])
        return cls(ul_kbps=ul_kbps, dl_kbps=dl_kbps)


@_register
@dataclass(frozen=True)
class GbrIE(IE):
    """Guaranteed Bit Rate (type 27), kbps per direction."""

    IE_TYPE: ClassVar[int] = 27
    ul_kbps: int = 0
    dl_kbps: int = 0

    def payload(self) -> bytes:
        return struct.pack("!QQ", self.ul_kbps, self.dl_kbps)

    @classmethod
    def parse(cls, data: bytes) -> "GbrIE":
        ul_kbps, dl_kbps = struct.unpack("!QQ", data[:16])
        return cls(ul_kbps=ul_kbps, dl_kbps=dl_kbps)


@_register
@dataclass(frozen=True)
class CreateQerIE(_GroupedIE):
    """Create QER (type 7, grouped): QER ID, gate, MBR, QFI."""

    IE_TYPE: ClassVar[int] = 7


@_register
@dataclass(frozen=True)
class UrrIdIE(IE):
    """URR ID (type 81)."""

    IE_TYPE: ClassVar[int] = 81
    rule_id: int = 0

    def payload(self) -> bytes:
        return struct.pack("!I", self.rule_id)

    @classmethod
    def parse(cls, data: bytes) -> "UrrIdIE":
        return cls(rule_id=struct.unpack("!I", data[:4])[0])


@_register
@dataclass(frozen=True)
class MeasurementMethodIE(IE):
    """Measurement Method (type 62): volume and/or duration."""

    IE_TYPE: ClassVar[int] = 62
    volume: bool = True
    duration: bool = False

    def payload(self) -> bytes:
        flags = (0x02 if self.volume else 0) | (0x01 if self.duration else 0)
        return struct.pack("!B", flags)

    @classmethod
    def parse(cls, data: bytes) -> "MeasurementMethodIE":
        return cls(volume=bool(data[0] & 0x02), duration=bool(data[0] & 0x01))


@_register
@dataclass(frozen=True)
class VolumeThresholdIE(IE):
    """Volume Threshold (type 31): total bytes before a usage report."""

    IE_TYPE: ClassVar[int] = 31
    total_bytes: int = 0

    def payload(self) -> bytes:
        return struct.pack("!BQ", 0x01, self.total_bytes)  # TOVOL flag

    @classmethod
    def parse(cls, data: bytes) -> "VolumeThresholdIE":
        _flags, total = struct.unpack("!BQ", data[:9])
        return cls(total_bytes=total)


@_register
@dataclass(frozen=True)
class CreateUrrIE(_GroupedIE):
    """Create URR (type 6, grouped): URR ID, method, threshold."""

    IE_TYPE: ClassVar[int] = 6


@_register
@dataclass(frozen=True)
class VolumeMeasurementIE(IE):
    """Volume Measurement (type 66): bytes counted so far."""

    IE_TYPE: ClassVar[int] = 66
    total_bytes: int = 0
    uplink_bytes: int = 0
    downlink_bytes: int = 0

    def payload(self) -> bytes:
        return struct.pack(
            "!BQQQ", 0x07, self.total_bytes, self.uplink_bytes,
            self.downlink_bytes,
        )

    @classmethod
    def parse(cls, data: bytes) -> "VolumeMeasurementIE":
        _flags, total, uplink, downlink = struct.unpack("!BQQQ", data[:25])
        return cls(
            total_bytes=total, uplink_bytes=uplink, downlink_bytes=downlink
        )


@_register
@dataclass(frozen=True)
class UsageReportIE(_GroupedIE):
    """Usage Report (type 80, grouped): URR ID + volume measurement."""

    IE_TYPE: ClassVar[int] = 80
