"""PFCP association and heartbeat management (TS 29.244 §6.2).

Before any session can be established on N4, the SMF (CP function) and
UPF (UP function) form an *association*: an AssociationSetupRequest /
Response exchange carrying node ids and recovery timestamps.  Both
sides then exchange heartbeats; a peer that misses enough heartbeats is
declared down, and — per the 3GPP restoration rules the paper contrasts
with (§2.3 challenge 4) — all sessions of a failed peer are considered
lost unless a resiliency layer (ours: §3.5) preserves them.

The recovery timestamp doubles as a restart detector: a peer that comes
back with a *newer* timestamp has lost its state, and the association
must be re-established.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..sim.engine import MS, Environment
from .ies import CauseIE, NodeIdIE, CAUSE_ACCEPTED, CAUSE_REQUEST_REJECTED
from .messages import (
    AssociationSetupRequest,
    AssociationSetupResponse,
    HeartbeatRequest,
    HeartbeatResponse,
)

__all__ = ["AssociationState", "Association", "AssociationManager"]


class AssociationState(Enum):
    """Lifecycle of one N4 association."""

    IDLE = "idle"
    SETUP_PENDING = "setup-pending"
    ESTABLISHED = "established"
    DOWN = "down"


@dataclass
class Association:
    """One CP<->UP peering."""

    peer_address: int
    state: AssociationState = AssociationState.IDLE
    peer_recovery_timestamp: int = 0
    established_at: Optional[float] = None
    heartbeats_sent: int = 0
    heartbeats_received: int = 0
    missed_heartbeats: int = 0


class AssociationManager:
    """Runs association setup and heartbeats for one node.

    Parameters
    ----------
    env:
        Simulation environment.
    node_address:
        This node's N4 IPv4 address (integer).
    recovery_timestamp:
        Monotonic boot counter; bump it to model a restart.
    send:
        Transport callable ``send(peer_address, message)`` returning an
        event that fires with the peer's response (or ``None`` when the
        peer is unreachable).
    heartbeat_interval / miss_threshold:
        Heartbeat cadence; ``miss_threshold`` consecutive silent
        heartbeats mark the association DOWN.
    """

    def __init__(
        self,
        env: Environment,
        node_address: int,
        recovery_timestamp: int = 1,
        send: Optional[Callable] = None,
        heartbeat_interval: float = 100 * MS,
        miss_threshold: int = 3,
    ):
        if miss_threshold <= 0:
            raise ValueError("miss_threshold must be positive")
        self.env = env
        self.node_address = node_address
        self.recovery_timestamp = recovery_timestamp
        self.send = send or (lambda peer, message: None)
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold
        self.associations: Dict[int, Association] = {}
        self._sequence = itertools.count(1)
        #: Called with (association) when a peer is declared down.
        self.peer_down_listeners: List[Callable[[Association], None]] = []
        #: Called with (association) when a peer restart is detected
        #: (newer recovery timestamp).
        self.peer_restart_listeners: List[Callable[[Association], None]] = []

    # ------------------------------------------------------------------
    # Responder side
    # ------------------------------------------------------------------
    def handle_setup_request(
        self, message: AssociationSetupRequest
    ) -> AssociationSetupResponse:
        """UP-function side: accept (or refuse) an association."""
        node_id = message.find(NodeIdIE)
        if node_id is None:
            return AssociationSetupResponse(
                sequence=message.sequence,
                ies=[CauseIE(cause=CAUSE_REQUEST_REJECTED)],
            )
        association = self.associations.get(node_id.address)
        if association is None:
            association = Association(peer_address=node_id.address)
            self.associations[node_id.address] = association
        association.state = AssociationState.ESTABLISHED
        association.established_at = self.env.now
        return AssociationSetupResponse(
            sequence=message.sequence,
            ies=[
                CauseIE(cause=CAUSE_ACCEPTED),
                NodeIdIE(address=self.node_address),
            ],
        )

    def handle_heartbeat(self, message: HeartbeatRequest) -> HeartbeatResponse:
        return HeartbeatResponse(sequence=message.sequence)

    # ------------------------------------------------------------------
    # Initiator side
    # ------------------------------------------------------------------
    def establish(self, peer_address: int):
        """Association setup towards a peer (a DES generator).

        Returns the :class:`Association` (state ESTABLISHED or DOWN).
        """
        association = self.associations.get(peer_address)
        if association is None:
            association = Association(peer_address=peer_address)
            self.associations[peer_address] = association
        association.state = AssociationState.SETUP_PENDING
        request = AssociationSetupRequest(
            sequence=next(self._sequence),
            ies=[NodeIdIE(address=self.node_address)],
        )
        response = yield self.send(peer_address, request)
        if response is None or not isinstance(
            response, AssociationSetupResponse
        ):
            association.state = AssociationState.DOWN
            return association
        cause = response.find(CauseIE)
        if cause is None or not cause.accepted:
            association.state = AssociationState.DOWN
            return association
        association.state = AssociationState.ESTABLISHED
        association.established_at = self.env.now
        return association

    def start_heartbeats(self, peer_address: int) -> None:
        """Begin the periodic heartbeat process towards a peer."""
        self.env.process(self._heartbeat_loop(peer_address))

    def _heartbeat_loop(self, peer_address: int):
        association = self.associations[peer_address]
        while association.state is AssociationState.ESTABLISHED:
            yield self.env.timeout(self.heartbeat_interval)
            if association.state is not AssociationState.ESTABLISHED:
                return
            request = HeartbeatRequest(sequence=next(self._sequence))
            association.heartbeats_sent += 1
            response = yield self.send(peer_address, request)
            if isinstance(response, HeartbeatResponse):
                association.heartbeats_received += 1
                association.missed_heartbeats = 0
            else:
                association.missed_heartbeats += 1
                if association.missed_heartbeats >= self.miss_threshold:
                    association.state = AssociationState.DOWN
                    for listener in self.peer_down_listeners:
                        listener(association)
                    return

    # ------------------------------------------------------------------
    def observe_recovery_timestamp(
        self, peer_address: int, timestamp: int
    ) -> bool:
        """Check a peer's recovery timestamp; True if it restarted.

        A newer timestamp means the peer rebooted and lost its state —
        3GPP restoration would force a re-attach of every UE; L25GC's
        replicas avoid that (§3.5).
        """
        association = self.associations.get(peer_address)
        if association is None:
            return False
        restarted = (
            association.peer_recovery_timestamp != 0
            and timestamp > association.peer_recovery_timestamp
        )
        association.peer_recovery_timestamp = max(
            association.peer_recovery_timestamp, timestamp
        )
        if restarted:
            association.state = AssociationState.DOWN
            for listener in self.peer_restart_listeners:
                listener(association)
        return restarted

    def is_established(self, peer_address: int) -> bool:
        association = self.associations.get(peer_address)
        return (
            association is not None
            and association.state is AssociationState.ESTABLISHED
        )
