"""N3IWF: the Non-3GPP InterWorking Function.

The paper highlights free5GC's support for non-3GPP access (§2.2): IoT
devices on WiFi reach the core through an N3IWF, authenticating with
EAP-AKA', "without being restricted to the licensed spectrum and
production base stations".

The N3IWF terminates IKEv2/IPsec towards the UE and presents itself to
the core exactly like a gNB: N2 (NGAP) towards the AMF and N3 (GTP-U)
towards the UPF.  This class duck-types :class:`~repro.ran.gnb.GNodeB`
for the data path while adding the IPsec tunnel bookkeeping (one signal
SA per UE, one child SA per PDU session) and the ESP overhead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..net.packet import Packet
from ..sim.engine import Environment
from .ue import UserEquipment

__all__ = ["IPsecSA", "N3IWF"]

#: ESP + outer IP overhead per tunneled packet (bytes).
ESP_OVERHEAD = 73


@dataclass
class IPsecSA:
    """One IPsec security association."""

    spi: int
    ue_supi: str
    #: None = the signalling SA (IKE/NAS); int = child SA for that
    #: PDU session.
    pdu_session_id: Optional[int] = None
    established_at: float = 0.0
    packets: int = 0


class N3IWF:
    """A non-3GPP interworking function instance.

    Parameters
    ----------
    env:
        Simulation environment.
    n3iwf_id:
        Identifier in the RAN-node id space (disjoint from gNB ids).
    address:
        N3 IPv4 address for GTP tunnels with the UPF.
    wifi_latency:
        One-way UE<->N3IWF latency across the WiFi/untrusted leg
        (substantially above a gNB's radio leg).
    ipsec_overhead:
        Per-packet ESP processing time at the N3IWF.
    """

    def __init__(
        self,
        env: Environment,
        n3iwf_id: int,
        address: int,
        wifi_latency: float = 4e-3,
        ipsec_overhead: float = 15e-6,
    ):
        self.env = env
        self.n3iwf_id = n3iwf_id
        self.gnb_id = n3iwf_id  # RAN-node id alias for the AMF's tables
        self.address = address
        self.wifi_latency = wifi_latency
        self.ipsec_overhead = ipsec_overhead
        self.connected: Dict[str, UserEquipment] = {}
        self._sas: Dict[int, IPsecSA] = {}
        self._spi_counter = itertools.count(0x100)
        self._next_dl_teid = n3iwf_id * 10000 + 1
        self.delivered = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # IKE / IPsec
    # ------------------------------------------------------------------
    def establish_signalling_sa(self, ue: UserEquipment) -> IPsecSA:
        """The IKE SA carrying NAS over IPsec (after EAP-AKA')."""
        sa = IPsecSA(
            spi=next(self._spi_counter),
            ue_supi=ue.supi,
            established_at=self.env.now,
        )
        self._sas[sa.spi] = sa
        self.connected[ue.supi] = ue
        return sa

    def establish_child_sa(
        self, ue: UserEquipment, pdu_session_id: int
    ) -> IPsecSA:
        """A child SA carrying one PDU session's user plane."""
        if ue.supi not in self.connected:
            raise RuntimeError(f"{ue.supi}: no signalling SA")
        sa = IPsecSA(
            spi=next(self._spi_counter),
            ue_supi=ue.supi,
            pdu_session_id=pdu_session_id,
            established_at=self.env.now,
        )
        self._sas[sa.spi] = sa
        return sa

    def sa_for(
        self, ue_supi: str, pdu_session_id: Optional[int]
    ) -> Optional[IPsecSA]:
        for sa in self._sas.values():
            if sa.ue_supi == ue_supi and sa.pdu_session_id == pdu_session_id:
                return sa
        return None

    def release_ue(self, ue: UserEquipment) -> int:
        """Tear down every SA of a UE; returns how many were removed."""
        doomed = [
            spi for spi, sa in self._sas.items() if sa.ue_supi == ue.supi
        ]
        for spi in doomed:
            del self._sas[spi]
        self.connected.pop(ue.supi, None)
        return len(doomed)

    # ------------------------------------------------------------------
    # gNB-compatible interface (used by the core's DL routing)
    # ------------------------------------------------------------------
    def connect(self, ue: UserEquipment) -> None:
        self.connected[ue.supi] = ue

    def disconnect(self, ue: UserEquipment) -> None:
        self.release_ue(ue)

    def is_connected(self, ue: UserEquipment) -> bool:
        return ue.supi in self.connected

    def allocate_dl_teid(self) -> int:
        teid = self._next_dl_teid
        self._next_dl_teid += 1
        return teid

    def receive_downlink(self, packet: Packet, ue: UserEquipment) -> None:
        """ESP-encapsulate and carry the packet over the WiFi leg."""
        sa = self.sa_for(ue.supi, packet.meta.get("pdu_session_id", 1))
        if sa is None:
            sa = self.sa_for(ue.supi, None)
        if sa is None or ue.supi not in self.connected:
            self.dropped += 1
            return
        sa.packets += 1
        packet.meta["esp_spi"] = sa.spi
        packet.size += ESP_OVERHEAD

        def _deliver():
            yield self.env.timeout(self.ipsec_overhead + self.wifi_latency)
            if ue.supi in self.connected:
                ue.deliver(packet, self.env.now)
                self.delivered += 1
            else:
                self.dropped += 1

        self.env.process(_deliver())

    def send_uplink(
        self, packet: Packet, forward: Callable[[Packet], None]
    ) -> None:
        def _deliver():
            yield self.env.timeout(self.wifi_latency + self.ipsec_overhead)
            packet.size = max(0, packet.size - ESP_OVERHEAD)
            forward(packet)

        self.env.process(_deliver())

    def __repr__(self) -> str:
        return (
            f"N3IWF(id={self.n3iwf_id}, ues={len(self.connected)}, "
            f"sas={len(self._sas)})"
        )
