"""A byte-level NAS codec (TS 24.501, simplified but real).

The N1 messages of :mod:`repro.ran.ngap` normally travel the simulator
as objects (the transport cost is identical for both systems), but a
genuine wire form is useful for trace generation and for validating
message sizes.  This codec implements the plain-5GS NAS header
(extended protocol discriminator, security header type, message type)
plus a TLV body, with encoders for the registration/authentication/
session vocabulary used by the procedures.

Encoded messages decode back to the same dataclasses; a property test
fuzzes the round trip.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Tuple, Type

from . import ngap

__all__ = ["encode_nas", "decode_nas", "NASCodecError"]

#: Extended protocol discriminators.
EPD_5GMM = 0x7E  # mobility management
EPD_5GSM = 0x2E  # session management

#: 5GMM message types (TS 24.501 Table 9.7.1).
MSG_REGISTRATION_REQUEST = 0x41
MSG_REGISTRATION_ACCEPT = 0x42
MSG_REGISTRATION_COMPLETE = 0x43
MSG_AUTHENTICATION_REQUEST = 0x56
MSG_AUTHENTICATION_RESPONSE = 0x57
MSG_SECURITY_MODE_COMMAND = 0x5D
MSG_SECURITY_MODE_COMPLETE = 0x5E
MSG_SERVICE_REQUEST = 0x4C
MSG_SERVICE_ACCEPT = 0x4E

#: 5GSM message types (Table 9.7.2).
MSG_PDU_SESSION_ESTABLISHMENT_REQUEST = 0xC1
MSG_PDU_SESSION_ESTABLISHMENT_ACCEPT = 0xC2

# IE tags (internal TLV vocabulary; 1-byte tag, 2-byte length).
_IE_SUPI = 0x01
_IE_SUCI = 0x02
_IE_GUTI = 0x03
_IE_RAND = 0x10
_IE_AUTN = 0x11
_IE_RES = 0x12
_IE_CIPHER = 0x20
_IE_INTEGRITY = 0x21
_IE_PDU_SESSION_ID = 0x30
_IE_DNN = 0x31
_IE_PDU_TYPE = 0x32
_IE_UE_IP = 0x33
_IE_SERVICE_TYPE = 0x40
_IE_REG_TYPE = 0x41


class NASCodecError(ValueError):
    """Malformed NAS bytes."""


def _tlv(tag: int, value: bytes) -> bytes:
    if len(value) > 0xFFFF:
        raise NASCodecError(f"IE {tag:#x} too long")
    return struct.pack("!BH", tag, len(value)) + value


def _text(tag: int, value: str) -> bytes:
    return _tlv(tag, value.encode("utf-8"))


def _parse_tlvs(body: bytes) -> Dict[int, bytes]:
    out: Dict[int, bytes] = {}
    pos = 0
    while pos < len(body):
        if pos + 3 > len(body):
            raise NASCodecError("truncated NAS IE header")
        tag, length = struct.unpack_from("!BH", body, pos)
        pos += 3
        value = body[pos : pos + length]
        if len(value) < length:
            raise NASCodecError(f"truncated NAS IE {tag:#x}")
        out[tag] = value
        pos += length
    return out


def _t(ies: Dict[int, bytes], tag: int, default: str = "") -> str:
    return ies[tag].decode("utf-8") if tag in ies else default


# ---------------------------------------------------------------------------
# Per-message encoders/decoders
# ---------------------------------------------------------------------------
def _enc_registration_request(msg: ngap.RegistrationRequest) -> bytes:
    return (
        _text(_IE_SUCI, msg.suci)
        + _text(_IE_SUPI, msg.supi)
        + _text(_IE_REG_TYPE, msg.registration_type)
    )


def _dec_registration_request(ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.RegistrationRequest(
        suci=_t(ies, _IE_SUCI),
        supi=_t(ies, _IE_SUPI),
        registration_type=_t(ies, _IE_REG_TYPE, "initial"),
    )


def _enc_registration_accept(msg: ngap.RegistrationAccept) -> bytes:
    return _text(_IE_GUTI, msg.guti)


def _dec_registration_accept(ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.RegistrationAccept(guti=_t(ies, _IE_GUTI))


def _enc_authentication_request(msg: ngap.AuthenticationRequest) -> bytes:
    return _tlv(_IE_RAND, bytes.fromhex(msg.rand)) + _tlv(
        _IE_AUTN, bytes.fromhex(msg.autn)
    )


def _dec_authentication_request(ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.AuthenticationRequest(
        rand=ies.get(_IE_RAND, b"").hex(),
        autn=ies.get(_IE_AUTN, b"").hex(),
    )


def _enc_authentication_response(msg: ngap.AuthenticationResponse) -> bytes:
    return _tlv(_IE_RES, bytes.fromhex(msg.res_star))


def _dec_authentication_response(ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.AuthenticationResponse(res_star=ies.get(_IE_RES, b"").hex())


def _enc_security_mode_command(msg: ngap.SecurityModeCommand) -> bytes:
    return _text(_IE_CIPHER, msg.ciphering) + _text(
        _IE_INTEGRITY, msg.integrity
    )


def _dec_security_mode_command(ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.SecurityModeCommand(
        ciphering=_t(ies, _IE_CIPHER, "NEA0"),
        integrity=_t(ies, _IE_INTEGRITY, "NIA0"),
    )


def _enc_empty(_msg: ngap.NASMessage) -> bytes:
    return b""


def _dec_security_mode_complete(_ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.SecurityModeComplete()


def _dec_registration_complete(_ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.RegistrationComplete()


def _dec_service_accept(_ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.ServiceAccept()


def _enc_service_request(msg: ngap.ServiceRequest) -> bytes:
    return _text(_IE_SERVICE_TYPE, msg.service_type)


def _dec_service_request(ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.ServiceRequest(
        service_type=_t(ies, _IE_SERVICE_TYPE, "data")
    )


def _enc_pdu_establishment_request(
    msg: ngap.PDUSessionEstablishmentRequest,
) -> bytes:
    return (
        _tlv(_IE_PDU_SESSION_ID, struct.pack("!B", msg.pdu_session_id))
        + _text(_IE_DNN, msg.dnn)
        + _text(_IE_PDU_TYPE, msg.pdu_type)
    )


def _dec_pdu_establishment_request(
    ies: Dict[int, bytes],
) -> ngap.NASMessage:
    return ngap.PDUSessionEstablishmentRequest(
        pdu_session_id=ies.get(_IE_PDU_SESSION_ID, b"\x01")[0],
        dnn=_t(ies, _IE_DNN, "internet"),
        pdu_type=_t(ies, _IE_PDU_TYPE, "IPV4"),
    )


def _enc_pdu_establishment_accept(
    msg: ngap.PDUSessionEstablishmentAccept,
) -> bytes:
    return (
        _tlv(_IE_PDU_SESSION_ID, struct.pack("!B", msg.pdu_session_id))
        + _text(_IE_UE_IP, msg.ue_ip)
    )


def _dec_pdu_establishment_accept(ies: Dict[int, bytes]) -> ngap.NASMessage:
    return ngap.PDUSessionEstablishmentAccept(
        pdu_session_id=ies.get(_IE_PDU_SESSION_ID, b"\x01")[0],
        ue_ip=_t(ies, _IE_UE_IP, "0.0.0.0"),
    )


_CODECS: Dict[
    Type[ngap.NASMessage], Tuple[int, int, Callable]
] = {
    ngap.RegistrationRequest: (
        EPD_5GMM, MSG_REGISTRATION_REQUEST, _enc_registration_request
    ),
    ngap.RegistrationAccept: (
        EPD_5GMM, MSG_REGISTRATION_ACCEPT, _enc_registration_accept
    ),
    ngap.RegistrationComplete: (
        EPD_5GMM, MSG_REGISTRATION_COMPLETE, _enc_empty
    ),
    ngap.AuthenticationRequest: (
        EPD_5GMM, MSG_AUTHENTICATION_REQUEST, _enc_authentication_request
    ),
    ngap.AuthenticationResponse: (
        EPD_5GMM, MSG_AUTHENTICATION_RESPONSE, _enc_authentication_response
    ),
    ngap.SecurityModeCommand: (
        EPD_5GMM, MSG_SECURITY_MODE_COMMAND, _enc_security_mode_command
    ),
    ngap.SecurityModeComplete: (
        EPD_5GMM, MSG_SECURITY_MODE_COMPLETE, _enc_empty
    ),
    ngap.ServiceRequest: (EPD_5GMM, MSG_SERVICE_REQUEST, _enc_service_request),
    ngap.ServiceAccept: (EPD_5GMM, MSG_SERVICE_ACCEPT, _enc_empty),
    ngap.PDUSessionEstablishmentRequest: (
        EPD_5GSM,
        MSG_PDU_SESSION_ESTABLISHMENT_REQUEST,
        _enc_pdu_establishment_request,
    ),
    ngap.PDUSessionEstablishmentAccept: (
        EPD_5GSM,
        MSG_PDU_SESSION_ESTABLISHMENT_ACCEPT,
        _enc_pdu_establishment_accept,
    ),
}

_DECODERS: Dict[Tuple[int, int], Callable] = {
    (EPD_5GMM, MSG_REGISTRATION_REQUEST): _dec_registration_request,
    (EPD_5GMM, MSG_REGISTRATION_ACCEPT): _dec_registration_accept,
    (EPD_5GMM, MSG_REGISTRATION_COMPLETE): _dec_registration_complete,
    (EPD_5GMM, MSG_AUTHENTICATION_REQUEST): _dec_authentication_request,
    (EPD_5GMM, MSG_AUTHENTICATION_RESPONSE): _dec_authentication_response,
    (EPD_5GMM, MSG_SECURITY_MODE_COMMAND): _dec_security_mode_command,
    (EPD_5GMM, MSG_SECURITY_MODE_COMPLETE): _dec_security_mode_complete,
    (EPD_5GMM, MSG_SERVICE_REQUEST): _dec_service_request,
    (EPD_5GMM, MSG_SERVICE_ACCEPT): _dec_service_accept,
    (EPD_5GSM, MSG_PDU_SESSION_ESTABLISHMENT_REQUEST):
        _dec_pdu_establishment_request,
    (EPD_5GSM, MSG_PDU_SESSION_ESTABLISHMENT_ACCEPT):
        _dec_pdu_establishment_accept,
}


def encode_nas(message: ngap.NASMessage) -> bytes:
    """Encode a NAS message: EPD + security header + type + IE TLVs."""
    entry = _CODECS.get(type(message))
    if entry is None:
        raise NASCodecError(
            f"no NAS codec for {type(message).__name__}"
        )
    epd, message_type, encoder = entry
    body = encoder(message)
    # Security header type 0 = plain NAS.
    return struct.pack("!BBB", epd, 0x00, message_type) + body


def decode_nas(data: bytes) -> ngap.NASMessage:
    """Decode NAS bytes back to the typed message."""
    if len(data) < 3:
        raise NASCodecError("truncated NAS header")
    epd, _security, message_type = struct.unpack_from("!BBB", data, 0)
    decoder = _DECODERS.get((epd, message_type))
    if decoder is None:
        raise NASCodecError(
            f"unknown NAS message: epd={epd:#x} type={message_type:#x}"
        )
    return decoder(_parse_tlvs(data[3:]))
