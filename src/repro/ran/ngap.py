"""NGAP and NAS message types for the N1/N2 interfaces.

The paper's evaluation uses a custom UE & RAN simulator speaking NGAP
over SCTP to the AMF (§5.1.1); we model the same message vocabulary.
Message classes are lightweight dataclasses — on N1/N2 the transport
cost is identical for free5GC and L25GC (both terminate SCTP at the
AMF), so no byte codec is needed, only message identity and sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "NGAPMessage",
    "InitialUEMessage",
    "DownlinkNASTransport",
    "UplinkNASTransport",
    "InitialContextSetupRequest",
    "InitialContextSetupResponse",
    "PDUSessionResourceSetupRequest",
    "PDUSessionResourceSetupResponse",
    "HandoverRequired",
    "HandoverRequest",
    "HandoverRequestAcknowledge",
    "HandoverCommand",
    "HandoverNotify",
    "PathSwitchRequest",
    "PagingMessage",
    "UEContextReleaseCommand",
    "UEContextReleaseComplete",
    # NAS payloads
    "NASMessage",
    "RegistrationRequest",
    "AuthenticationRequest",
    "AuthenticationResponse",
    "SecurityModeCommand",
    "SecurityModeComplete",
    "RegistrationAccept",
    "RegistrationComplete",
    "PDUSessionEstablishmentRequest",
    "PDUSessionEstablishmentAccept",
    "ServiceRequest",
    "ServiceAccept",
]


@dataclass(frozen=True)
class NGAPMessage:
    """Base NGAP message (N2)."""

    ran_ue_ngap_id: int = 1
    amf_ue_ngap_id: int = 1
    size: int = 256

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class NASMessage:
    """Base NAS message (N1, carried inside NGAP transports)."""

    supi: str = "imsi-208930000000003"
    size: int = 128

    @property
    def name(self) -> str:
        return type(self).__name__


# --------------------------------------------------------------------------
# NGAP procedures
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class InitialUEMessage(NGAPMessage):
    """gNB -> AMF: first uplink NAS message of a UE."""

    nas: Optional[NASMessage] = None


@dataclass(frozen=True)
class DownlinkNASTransport(NGAPMessage):
    nas: Optional[NASMessage] = None


@dataclass(frozen=True)
class UplinkNASTransport(NGAPMessage):
    nas: Optional[NASMessage] = None


@dataclass(frozen=True)
class InitialContextSetupRequest(NGAPMessage):
    security_key: str = "00" * 32
    nas: Optional[NASMessage] = None


@dataclass(frozen=True)
class InitialContextSetupResponse(NGAPMessage):
    pass


@dataclass(frozen=True)
class PDUSessionResourceSetupRequest(NGAPMessage):
    pdu_session_id: int = 1
    ul_teid: int = 0
    upf_address: int = 0
    qfi: int = 9
    nas: Optional[NASMessage] = None


@dataclass(frozen=True)
class PDUSessionResourceSetupResponse(NGAPMessage):
    pdu_session_id: int = 1
    dl_teid: int = 0
    gnb_address: int = 0


@dataclass(frozen=True)
class HandoverRequired(NGAPMessage):
    """Source gNB -> AMF: UE measured a better target cell."""

    target_gnb_id: int = 2
    cause: str = "handover-desirable-for-radio-reason"
    pdu_session_ids: tuple = (1,)


@dataclass(frozen=True)
class HandoverRequest(NGAPMessage):
    """AMF -> target gNB: prepare resources."""

    pdu_session_id: int = 1
    ul_teid: int = 0
    upf_address: int = 0


@dataclass(frozen=True)
class HandoverRequestAcknowledge(NGAPMessage):
    """Target gNB -> AMF: resources ready; new DL endpoint."""

    pdu_session_id: int = 1
    dl_teid: int = 0
    gnb_address: int = 0


@dataclass(frozen=True)
class HandoverCommand(NGAPMessage):
    """AMF -> source gNB -> UE: execute the handover."""

    target_gnb_id: int = 2


@dataclass(frozen=True)
class HandoverNotify(NGAPMessage):
    """Target gNB -> AMF: the UE has arrived."""

    pass


@dataclass(frozen=True)
class PathSwitchRequest(NGAPMessage):
    """Target gNB -> AMF (Xn handover variant)."""

    dl_teid: int = 0
    gnb_address: int = 0


@dataclass(frozen=True)
class PagingMessage(NGAPMessage):
    """AMF -> gNB(s): page an idle UE."""

    supi: str = "imsi-208930000000003"
    tac: int = 1


@dataclass(frozen=True)
class UEContextReleaseCommand(NGAPMessage):
    cause: str = "user-inactivity"


@dataclass(frozen=True)
class UEContextReleaseComplete(NGAPMessage):
    pass


# --------------------------------------------------------------------------
# NAS messages (5GMM / 5GSM)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class RegistrationRequest(NASMessage):
    registration_type: str = "initial"
    suci: str = "suci-0-208-93-0000-0-0-0000000003"
    requested_nssai: Dict[str, Any] = field(
        default_factory=lambda: {"sst": 1, "sd": "010203"}
    )


@dataclass(frozen=True)
class AuthenticationRequest(NASMessage):
    rand: str = "a2e1f8d90b4c6e1735fa0d2246c8b9e1"
    autn: str = "bb2c61d3f8e0800032f9c04dd7b8a1c5"


@dataclass(frozen=True)
class AuthenticationResponse(NASMessage):
    res_star: str = "d1e2f3a4b5c6d7e8f90a1b2c3d4e5f60"


@dataclass(frozen=True)
class SecurityModeCommand(NASMessage):
    ciphering: str = "NEA2"
    integrity: str = "NIA2"


@dataclass(frozen=True)
class SecurityModeComplete(NASMessage):
    pass


@dataclass(frozen=True)
class RegistrationAccept(NASMessage):
    guti: str = "5g-guti-20893cafe0000000001"
    tai_list: tuple = ((208, 93, 1),)


@dataclass(frozen=True)
class RegistrationComplete(NASMessage):
    pass


@dataclass(frozen=True)
class PDUSessionEstablishmentRequest(NASMessage):
    pdu_session_id: int = 1
    dnn: str = "internet"
    pdu_type: str = "IPV4"


@dataclass(frozen=True)
class PDUSessionEstablishmentAccept(NASMessage):
    pdu_session_id: int = 1
    ue_ip: str = "10.60.0.1"
    qos_rules: tuple = ((1, 9),)


@dataclass(frozen=True)
class ServiceRequest(NASMessage):
    service_type: str = "mobile-terminated-services"


@dataclass(frozen=True)
class ServiceAccept(NASMessage):
    pass
