"""The User Equipment model: 5GMM/5GSM state machines.

Tracks the 3GPP registration-management (RM) and connection-management
(CM) states, the serving gNB, allocated PDU sessions, and counts of
delivered/missed packets.  The UE is deliberately thin — procedures are
orchestrated by :mod:`repro.cp.procedures`; the UE provides state and
sanity checking (e.g. you cannot hand over a deregistered UE).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..net.packet import Packet

__all__ = ["RMState", "CMState", "PDUSession", "UserEquipment"]


class RMState(Enum):
    """Registration management (TS 24.501 §5.1.2)."""

    DEREGISTERED = "RM-DEREGISTERED"
    REGISTERED = "RM-REGISTERED"


class CMState(Enum):
    """Connection management (TS 24.501 §5.1.3)."""

    IDLE = "CM-IDLE"
    CONNECTED = "CM-CONNECTED"


@dataclass
class PDUSession:
    """One PDU session as seen by the UE."""

    session_id: int
    dnn: str = "internet"
    ue_ip: int = 0
    qfi: int = 9
    active: bool = True


class StateError(RuntimeError):
    """An operation was attempted in the wrong RM/CM state."""


class UserEquipment:
    """A simulated UE.

    Parameters
    ----------
    supi:
        Subscription permanent identifier (``imsi-...``).
    """

    def __init__(self, supi: str = "imsi-208930000000003"):
        self.supi = supi
        self.rm_state = RMState.DEREGISTERED
        self.cm_state = CMState.IDLE
        self.serving_gnb_id: Optional[int] = None
        self.guti: Optional[str] = None
        self.sessions: Dict[int, PDUSession] = {}
        self.received: List[Packet] = []
        self.sent = 0

    # -- registration ----------------------------------------------------
    def register(self, gnb_id: int, guti: str) -> None:
        self.rm_state = RMState.REGISTERED
        self.cm_state = CMState.CONNECTED
        self.serving_gnb_id = gnb_id
        self.guti = guti

    def deregister(self) -> None:
        self.rm_state = RMState.DEREGISTERED
        self.cm_state = CMState.IDLE
        self.serving_gnb_id = None
        self.sessions.clear()

    # -- connection management ---------------------------------------------
    def go_idle(self) -> None:
        """AN release: UE sleeps to save battery (paging precondition)."""
        if self.rm_state is not RMState.REGISTERED:
            raise StateError(f"{self.supi}: cannot go idle while deregistered")
        self.cm_state = CMState.IDLE

    def wake(self) -> None:
        """Service request completion: back to CM-CONNECTED."""
        if self.rm_state is not RMState.REGISTERED:
            raise StateError(f"{self.supi}: cannot wake while deregistered")
        self.cm_state = CMState.CONNECTED

    def hand_over(self, target_gnb_id: int) -> None:
        if self.rm_state is not RMState.REGISTERED:
            raise StateError(f"{self.supi}: cannot hand over unregistered UE")
        self.serving_gnb_id = target_gnb_id

    # -- sessions ---------------------------------------------------------
    def add_session(self, session: PDUSession) -> None:
        if self.rm_state is not RMState.REGISTERED:
            raise StateError(
                f"{self.supi}: PDU session requires RM-REGISTERED"
            )
        self.sessions[session.session_id] = session

    def session(self, session_id: int) -> PDUSession:
        if session_id not in self.sessions:
            raise KeyError(f"{self.supi}: no PDU session {session_id}")
        return self.sessions[session_id]

    # -- data -------------------------------------------------------------
    def deliver(self, packet: Packet, now: float) -> None:
        """Record a downlink packet reaching the UE."""
        packet.delivered_at = now
        self.received.append(packet)

    def __repr__(self) -> str:
        return (
            f"UE({self.supi}, {self.rm_state.value}/{self.cm_state.value}, "
            f"gnb={self.serving_gnb_id}, sessions={len(self.sessions)})"
        )
