"""The gNodeB model, including its limited downlink buffer.

The paper estimates macro-cell base stations buffer about 2 MB
(~1300 full-MTU packets) per radio-connected UE (§2.3, challenge 2).
During a 3GPP-style handover the *source* gNB must buffer in-flight
downlink packets and later hairpin them back through the 5GC to the
target gNB — precisely the path L25GC's smart buffering at the UPF
avoids.  The buffer here is a real bounded queue with tail drop, so the
packet-loss arithmetic of §5.4.2 (Eq. 1) emerges from the model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.packet import Packet
from ..sim.engine import Environment
from ..sim.queues import Store
from .ue import UserEquipment

__all__ = ["GNodeB", "DEFAULT_GNB_BUFFER_PACKETS"]

#: ~2 MB of full-MTU packets per radio-connected UE (paper estimate).
DEFAULT_GNB_BUFFER_PACKETS = 1300


class GNodeB:
    """A 5G base station.

    Parameters
    ----------
    env:
        Simulation environment.
    gnb_id:
        NGAP global gNB id.
    address:
        N3 IPv4 address (integer) for GTP tunnels.
    buffer_packets:
        DL buffer capacity per UE during handover.
    radio_latency:
        One-way UE<->gNB air latency for data packets.
    """

    def __init__(
        self,
        env: Environment,
        gnb_id: int,
        address: int,
        buffer_packets: int = DEFAULT_GNB_BUFFER_PACKETS,
        radio_latency: float = 0.5e-3,
        max_ues: Optional[int] = None,
    ):
        self.env = env
        self.gnb_id = gnb_id
        self.address = address
        self.radio_latency = radio_latency
        #: Admission control: refuse handover preparation when full
        #: (None = unlimited).
        self.max_ues = max_ues
        self.connected: Dict[str, UserEquipment] = {}
        self._buffers: Dict[str, Store] = {}
        self._buffer_capacity = buffer_packets
        self._next_dl_teid = gnb_id * 10000 + 1
        self.delivered = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # RRC / attachment
    # ------------------------------------------------------------------
    def can_admit(self, ue: UserEquipment) -> bool:
        """Admission control for handover preparation."""
        if ue.supi in self.connected:
            return True
        return self.max_ues is None or len(self.connected) < self.max_ues

    def connect(self, ue: UserEquipment) -> None:
        """Radio-resource connect a UE to this cell."""
        self.connected[ue.supi] = ue

    def disconnect(self, ue: UserEquipment) -> None:
        """Detach the UE's radio connection.

        Any handover buffer is retained: the 3GPP flow forwards it
        indirectly after the UE has left (see :meth:`drain_buffer`).
        """
        self.connected.pop(ue.supi, None)

    def is_connected(self, ue: UserEquipment) -> bool:
        return ue.supi in self.connected

    def allocate_dl_teid(self) -> int:
        """A fresh DL tunnel endpoint for a PDU session or handover."""
        teid = self._next_dl_teid
        self._next_dl_teid += 1
        return teid

    # ------------------------------------------------------------------
    # Downlink data
    # ------------------------------------------------------------------
    def start_buffering(self, ue: UserEquipment) -> None:
        """Begin buffering DL packets for a UE (3GPP handover mode)."""
        self._buffers.setdefault(
            ue.supi, Store(self.env, capacity=self._buffer_capacity)
        )

    def is_buffering(self, ue_supi: str) -> bool:
        return ue_supi in self._buffers

    def buffered_count(self, ue_supi: str) -> int:
        store = self._buffers.get(ue_supi)
        return len(store) if store else 0

    def receive_downlink(self, packet: Packet, ue: UserEquipment) -> None:
        """A DL packet arrived from the UPF over N3.

        Buffering mode queues it (tail drop — the limited gNB buffer of
        challenge 2); otherwise it goes over the air to the UE.
        """
        store = self._buffers.get(ue.supi)
        if store is not None:
            if not store.put_nowait_drop(packet):
                self.dropped += 1
            return
        self.env.process(self._air_delivery(packet, ue))

    def drain_buffer(self, ue: UserEquipment) -> List[Packet]:
        """Release all buffered packets for hairpin forwarding.

        In the 3GPP flow the source gNB sends these back through the
        core to the target gNB; the caller owns the onward routing.
        """
        store = self._buffers.pop(ue.supi, None)
        if store is None:
            return []
        return store.clear()

    def _air_delivery(self, packet: Packet, ue: UserEquipment):
        yield self.env.timeout(self.radio_latency)
        if ue.supi in self.connected:
            ue.deliver(packet, self.env.now)
            self.delivered += 1
        else:
            # The UE left mid-flight (handover race): the packet is lost.
            self.dropped += 1

    # ------------------------------------------------------------------
    # Uplink data
    # ------------------------------------------------------------------
    def send_uplink(
        self, packet: Packet, forward: Callable[[Packet], None]
    ) -> None:
        """Carry a UE's UL packet over the air, then into the N3 tunnel."""

        def _deliver():
            yield self.env.timeout(self.radio_latency)
            forward(packet)

        self.env.process(_deliver())

    def __repr__(self) -> str:
        return (
            f"GNodeB(id={self.gnb_id}, ues={len(self.connected)}, "
            f"buffers={list(self._buffers)})"
        )
