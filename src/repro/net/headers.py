"""Real byte-level protocol header codecs.

The data-plane model usually passes :class:`~repro.net.packet.Packet`
objects around without touching bytes (that is the whole point of
zero-copy descriptor passing), but wherever the paper's system really
serializes — GTP-U encapsulation, PFCP TLVs, pcap-style trace dumps —
we encode and decode actual bytes.  These classes implement Ethernet,
IPv4, UDP and TCP headers with correct checksums.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "TCPHeader",
    "internet_checksum",
    "PROTO_TCP",
    "PROTO_UDP",
    "ETHERTYPE_IPV4",
]

PROTO_TCP = 6
PROTO_UDP = 17
ETHERTYPE_IPV4 = 0x0800


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _parse_mac(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {mac!r}")
    return bytes(int(p, 16) for p in parts)


def _format_mac(data: bytes) -> str:
    return ":".join(f"{b:02x}" for b in data)


@dataclass
class EthernetHeader:
    """An Ethernet II header (14 bytes on the wire)."""

    src: str = "02:00:00:00:00:01"
    dst: str = "02:00:00:00:00:02"
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def pack(self) -> bytes:
        return (
            _parse_mac(self.dst)
            + _parse_mac(self.src)
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["EthernetHeader", bytes]:
        if len(data) < cls.LENGTH:
            raise ValueError("truncated Ethernet header")
        dst = _format_mac(data[0:6])
        src = _format_mac(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(src=src, dst=dst, ethertype=ethertype), data[14:]


@dataclass
class IPv4Header:
    """An IPv4 header without options (20 bytes on the wire).

    Addresses are integers (see :mod:`repro.net.addresses`).
    """

    src: int = 0
    dst: int = 0
    protocol: int = PROTO_UDP
    total_length: int = 20
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    flags: int = 0

    LENGTH = 20

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        tos = self.dscp << 2
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            tos,
            self.total_length,
            self.identification,
            self.flags << 13,
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src,
            self.dst,
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["IPv4Header", bytes]:
        if len(data) < cls.LENGTH:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBHII", data[:20])
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        ihl = (version_ihl & 0xF) * 4
        if internet_checksum(data[:ihl]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        header = cls(
            src=src,
            dst=dst,
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            flags=flags_frag >> 13,
        )
        return header, data[ihl:]


@dataclass
class UDPHeader:
    """A UDP header (8 bytes on the wire).

    The checksum is computed over the pseudo-header when ``pack`` is
    given the enclosing IPv4 src/dst.
    """

    src_port: int = 0
    dst_port: int = 0
    length: int = 8

    LENGTH = 8

    def pack(self, payload: bytes = b"", src_ip: int = 0, dst_ip: int = 0) -> bytes:
        length = self.LENGTH + len(payload)
        header = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        pseudo = struct.pack("!IIBBH", src_ip, dst_ip, 0, PROTO_UDP, length)
        checksum = internet_checksum(pseudo + header + payload)
        if checksum == 0:
            checksum = 0xFFFF
        return struct.pack("!HHHH", self.src_port, self.dst_port, length, checksum)

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["UDPHeader", bytes]:
        if len(data) < cls.LENGTH:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, _checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port=src_port, dst_port=dst_port, length=length), data[8:]


@dataclass
class TCPHeader:
    """A TCP header without options (20 bytes on the wire)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    LENGTH = 20
    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def pack(self, payload: bytes = b"", src_ip: int = 0, dst_ip: int = 0) -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        header = struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            0,
            0,
        )
        length = self.LENGTH + len(payload)
        pseudo = struct.pack("!IIBBH", src_ip, dst_ip, 0, PROTO_TCP, length)
        checksum = internet_checksum(pseudo + header + payload)
        return header[:16] + struct.pack("!H", checksum) + header[18:]

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["TCPHeader", bytes]:
        if len(data) < cls.LENGTH:
            raise ValueError("truncated TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags,
            window,
            _checksum,
            _urgent,
        ) = struct.unpack("!HHIIHHHH", data[:20])
        offset = (offset_flags >> 12) * 4
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x3F,
            window=window,
        )
        return header, data[offset:]
