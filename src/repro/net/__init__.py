"""Packet and protocol substrate: addresses, headers, GTP-U, packet model."""

from .addresses import (
    AddressAllocator,
    int_to_ip,
    ip_in_prefix,
    ip_to_int,
    prefix_mask,
    prefix_range,
)
from .gtp import GTPU_PORT, GTPUHeader, decapsulate, encapsulate
from .headers import (
    ETHERTYPE_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    internet_checksum,
)
from .packet import Direction, FiveTuple, Packet, PacketKind
from .pcap import PcapWriter, read_pcap, write_gtp_trace

__all__ = [
    "AddressAllocator",
    "int_to_ip",
    "ip_in_prefix",
    "ip_to_int",
    "prefix_mask",
    "prefix_range",
    "GTPU_PORT",
    "GTPUHeader",
    "decapsulate",
    "encapsulate",
    "ETHERTYPE_IPV4",
    "PROTO_TCP",
    "PROTO_UDP",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "UDPHeader",
    "internet_checksum",
    "PcapWriter",
    "read_pcap",
    "write_gtp_trace",
    "Direction",
    "FiveTuple",
    "Packet",
    "PacketKind",
]
