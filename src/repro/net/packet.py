"""The in-simulator packet model.

Inside the discrete-event simulation, packets are Python objects rather
than byte strings: the zero-copy data plane passes *descriptors* around
and only the size of the wire representation matters for timing.  A
:class:`Packet` carries the five-tuple used by the classifier, GTP tunnel
metadata, measurement timestamps and an optional payload object (e.g. a
control-plane message).

The real byte-level codecs live in :mod:`repro.net.headers` and
:mod:`repro.net.gtp`; :meth:`Packet.to_bytes` bridges the two worlds when
a component genuinely serializes (trace dumps, GTP encap tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Dict, Optional

from .headers import PROTO_TCP, PROTO_UDP, IPv4Header, TCPHeader, UDPHeader

__all__ = ["Direction", "PacketKind", "FiveTuple", "Packet"]

_packet_ids = itertools.count(1)

#: Bytes of L2 + L3 + L4 framing assumed for a minimal data packet.
MIN_FRAME = 64
#: Ethernet + IPv4 + UDP overhead bytes.
HEADER_OVERHEAD = 14 + 20 + 8
#: GTP-U adds outer IPv4 + UDP + GTP (8B base + 8B ext) on N3.
GTP_OVERHEAD = 20 + 8 + 16


class Direction(Enum):
    """Traffic direction relative to the UE."""

    UPLINK = "UL"
    DOWNLINK = "DL"


class PacketKind(Enum):
    """Coarse packet class used by the resiliency logger's four queues."""

    DATA = "data"
    CONTROL = "control"


@dataclass(frozen=True)
class FiveTuple:
    """The classic IP five-tuple, with integer addresses."""

    src_ip: int = 0
    dst_ip: int = 0
    src_port: int = 0
    dst_port: int = 0
    protocol: int = PROTO_UDP

    def reversed(self) -> "FiveTuple":
        """The tuple of the reverse flow (for replies/ACKs)."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )


@dataclass
class Packet:
    """A simulated packet / descriptor.

    Attributes
    ----------
    size:
        Wire size in bytes including framing (used for timing and
        throughput accounting).
    flow:
        Classifier five-tuple of the *inner* user packet.
    teid:
        GTP tunnel endpoint id when encapsulated on N3 (None otherwise).
    qfi:
        QoS flow identifier carried in the PDU session container.
    kind:
        Control vs. data, for the resiliency logger's queue split.
    created_at / delivered_at:
        Measurement timestamps maintained by the traffic tooling.
    payload:
        Arbitrary object riding in the packet (e.g. an SBI message).
    meta:
        Scratch space for model components (never serialized).
    """

    size: int = MIN_FRAME
    flow: FiveTuple = field(default_factory=FiveTuple)
    direction: Direction = Direction.DOWNLINK
    kind: PacketKind = PacketKind.DATA
    teid: Optional[int] = None
    qfi: Optional[int] = None
    tos: int = 0
    seq: Optional[int] = None
    created_at: Optional[float] = None
    delivered_at: Optional[float] = None
    payload: Any = None
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def copy(self) -> "Packet":
        """A shallow copy with a fresh packet id (used by retransmits)."""
        duplicate = replace(self, meta=dict(self.meta))
        object.__setattr__(duplicate, "packet_id", next(_packet_ids))
        return duplicate

    @property
    def payload_size(self) -> int:
        """Inner payload bytes, i.e. size minus L2-L4 framing."""
        return max(0, self.size - HEADER_OVERHEAD)

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency if both timestamps were recorded."""
        if self.created_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def encapsulated_size(self) -> int:
        """Wire size once wrapped in GTP-U on the N3 interface."""
        return self.size + GTP_OVERHEAD

    def to_bytes(self) -> bytes:
        """Render the inner user packet as real bytes.

        The payload area is zero-filled to the declared size; the
        headers are genuine so the result survives a decode round trip.
        """
        payload = b"\x00" * self.payload_size
        if self.flow.protocol == PROTO_TCP:
            l4 = TCPHeader(
                src_port=self.flow.src_port, dst_port=self.flow.dst_port
            )
            l4_bytes = l4.pack(payload, self.flow.src_ip, self.flow.dst_ip)
            l4_bytes += payload
        else:
            l4 = UDPHeader(
                src_port=self.flow.src_port, dst_port=self.flow.dst_port
            )
            l4_bytes = l4.pack(payload, self.flow.src_ip, self.flow.dst_ip)
            l4_bytes += payload
        ip = IPv4Header(
            src=self.flow.src_ip,
            dst=self.flow.dst_ip,
            protocol=self.flow.protocol,
            total_length=IPv4Header.LENGTH + len(l4_bytes),
            dscp=self.tos >> 2,
        )
        return ip.pack() + l4_bytes

    @classmethod
    def from_bytes(cls, data: bytes, **kwargs: Any) -> "Packet":
        """Parse real bytes back into a simulated packet."""
        ip, rest = IPv4Header.unpack(data)
        if ip.protocol == PROTO_TCP:
            l4, _ = TCPHeader.unpack(rest)
        elif ip.protocol == PROTO_UDP:
            l4, _ = UDPHeader.unpack(rest)
        else:
            raise ValueError(f"unsupported protocol: {ip.protocol}")
        flow = FiveTuple(
            src_ip=ip.src,
            dst_ip=ip.dst,
            src_port=l4.src_port,
            dst_port=l4.dst_port,
            protocol=ip.protocol,
        )
        return cls(
            size=len(data) + 14,  # add back Ethernet framing
            flow=flow,
            tos=ip.dscp << 2,
            **kwargs,
        )
