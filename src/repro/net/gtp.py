"""GTP-U (GPRS Tunnelling Protocol, user plane) encapsulation.

The N3 interface between a gNB and the UPF carries user IP packets inside
GTP-U tunnels identified by a TEID (tunnel endpoint identifier).  This
module implements the 3GPP TS 29.281 v1 header, including the optional
extension header used by 5G for the PDU Session Container (QFI marking),
plus helpers to encapsulate/decapsulate full IPv4 payloads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from .headers import IPv4Header, UDPHeader, PROTO_UDP

__all__ = [
    "GTPU_PORT",
    "GTPUHeader",
    "encapsulate",
    "decapsulate",
]

#: Well-known UDP port for GTP-U.
GTPU_PORT = 2152

#: Message type for G-PDU (a tunnelled user packet).
MSG_GPDU = 0xFF
#: Message type for Echo Request (path management).
MSG_ECHO_REQUEST = 1
#: Message type for Echo Response.
MSG_ECHO_RESPONSE = 2
#: Message type for End Marker (handover path switch).
MSG_END_MARKER = 254

#: Extension header type: PDU Session Container (carries the QFI).
EXT_PDU_SESSION_CONTAINER = 0x85


@dataclass
class GTPUHeader:
    """A GTPv1-U header.

    The mandatory part is 8 bytes; when ``qfi`` is set the header grows
    by the 4-byte option field plus a PDU Session Container extension
    header, exactly as emitted by a 5G gNB/UPF.
    """

    teid: int = 0
    message_type: int = MSG_GPDU
    length: int = 0
    sequence: Optional[int] = None
    qfi: Optional[int] = None
    #: PDU type inside the PDU Session Container: 0 = DL, 1 = UL.
    pdu_type: int = 0

    BASE_LENGTH = 8

    def pack(self) -> bytes:
        has_ext = self.qfi is not None
        has_seq = self.sequence is not None
        flags = 0x30  # version 1, protocol type GTP
        if has_ext:
            flags |= 0x04
        if has_seq:
            flags |= 0x02
        body = b""
        if has_ext or has_seq:
            seq = self.sequence or 0
            next_ext = EXT_PDU_SESSION_CONTAINER if has_ext else 0
            body += struct.pack("!HBB", seq, 0, next_ext)
        if has_ext:
            # PDU Session Container: len(4-byte units), payload, next-ext.
            container = struct.pack("!BB", (self.pdu_type & 0xF) << 4, self.qfi & 0x3F)
            body += struct.pack("!B", 1) + container + struct.pack("!B", 0)
        length = self.length + len(body)
        return struct.pack("!BBHI", flags, self.message_type, length, self.teid) + body

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["GTPUHeader", bytes]:
        if len(data) < cls.BASE_LENGTH:
            raise ValueError("truncated GTP-U header")
        flags, message_type, length, teid = struct.unpack("!BBHI", data[:8])
        if flags >> 5 != 1:
            raise ValueError(f"unsupported GTP version: {flags >> 5}")
        rest = data[8:]
        header = cls(teid=teid, message_type=message_type)
        consumed = 0
        if flags & 0x07:
            if len(rest) < 4:
                raise ValueError("truncated GTP-U option field")
            seq, _npdu, next_ext = struct.unpack("!HBB", rest[:4])
            if flags & 0x02:
                header.sequence = seq
            consumed = 4
            while next_ext:
                if consumed >= len(rest):
                    raise ValueError("truncated GTP-U extension header")
                ext_len = rest[consumed] * 4
                if ext_len == 0:
                    raise ValueError("zero-length GTP-U extension header")
                ext = rest[consumed : consumed + ext_len]
                if len(ext) < ext_len:
                    raise ValueError("truncated GTP-U extension header")
                if next_ext == EXT_PDU_SESSION_CONTAINER:
                    header.pdu_type = ext[1] >> 4
                    header.qfi = ext[2] & 0x3F
                next_ext = ext[ext_len - 1]
                consumed += ext_len
        header.length = length - consumed
        return header, rest[consumed:]


def encapsulate(
    inner: bytes,
    teid: int,
    outer_src: int,
    outer_dst: int,
    qfi: Optional[int] = None,
    pdu_type: int = 0,
) -> bytes:
    """Wrap an inner IP packet in GTP-U / UDP / IPv4 (the N3 stack).

    Returns the full outer IPv4 packet bytes.
    """
    gtp = GTPUHeader(teid=teid, length=len(inner), qfi=qfi, pdu_type=pdu_type)
    gtp_bytes = gtp.pack() + inner
    udp = UDPHeader(src_port=GTPU_PORT, dst_port=GTPU_PORT)
    udp_bytes = udp.pack(gtp_bytes, outer_src, outer_dst) + gtp_bytes
    ip = IPv4Header(
        src=outer_src,
        dst=outer_dst,
        protocol=PROTO_UDP,
        total_length=IPv4Header.LENGTH + len(udp_bytes),
    )
    return ip.pack() + udp_bytes


def decapsulate(outer: bytes) -> Tuple[GTPUHeader, bytes]:
    """Strip the outer IPv4/UDP/GTP-U headers, returning (gtp, inner)."""
    _ip, rest = IPv4Header.unpack(outer)
    udp, rest = UDPHeader.unpack(rest)
    if udp.dst_port != GTPU_PORT:
        raise ValueError(f"not a GTP-U packet (dst port {udp.dst_port})")
    gtp, inner = GTPUHeader.unpack(rest)
    if gtp.message_type != MSG_GPDU:
        return gtp, b""
    return gtp, inner
