"""A real pcap (libpcap classic format) writer and reader.

The paper's artifact ships "scripts to generate GTP encapsulated data
plane pcap traces" for MoonGen to replay (Appendix E).  This module
produces the same kind of trace from simulated packets: each
:class:`~repro.net.packet.Packet` is rendered to genuine bytes
(Ethernet / IPv4 / UDP-or-TCP, optionally wrapped in GTP-U) and written
with microsecond timestamps.  The traces open in Wireshark/tcpdump.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, List, Optional, Tuple

from .gtp import encapsulate
from .headers import EthernetHeader
from .packet import Packet

__all__ = ["PcapWriter", "read_pcap", "write_gtp_trace"]

_MAGIC = 0xA1B2C3D4
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
_LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Writes a classic pcap file.

    Usage::

        with open("trace.pcap", "wb") as handle:
            writer = PcapWriter(handle)
            writer.write(timestamp=0.0, frame=some_bytes)
    """

    def __init__(self, handle: BinaryIO, snaplen: int = 65535):
        self._handle = handle
        self.packets_written = 0
        handle.write(
            struct.pack(
                "!IHHiIII",
                _MAGIC,
                _VERSION_MAJOR,
                _VERSION_MINOR,
                0,  # timezone offset
                0,  # timestamp accuracy
                snaplen,
                _LINKTYPE_ETHERNET,
            )
        )

    def write(self, timestamp: float, frame: bytes) -> None:
        """Append one frame with the given timestamp (seconds)."""
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1e6))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        self._handle.write(
            struct.pack(
                "!IIII", seconds, microseconds, len(frame), len(frame)
            )
        )
        self._handle.write(frame)
        self.packets_written += 1

    def write_packet(
        self,
        packet: Packet,
        timestamp: Optional[float] = None,
        gtp_teid: Optional[int] = None,
        outer_src: int = 0,
        outer_dst: int = 0,
        qfi: Optional[int] = None,
    ) -> None:
        """Render a simulated packet to bytes and append it.

        With ``gtp_teid`` the inner IP packet is wrapped in
        GTP-U/UDP/IPv4, producing the N3-style trace the paper's
        artifact replays with MoonGen.
        """
        inner = packet.to_bytes()
        if gtp_teid is not None:
            ip_frame = encapsulate(
                inner,
                teid=gtp_teid,
                outer_src=outer_src,
                outer_dst=outer_dst,
                qfi=qfi if qfi is not None else packet.qfi,
            )
        else:
            ip_frame = inner
        frame = EthernetHeader().pack() + ip_frame
        when = timestamp
        if when is None:
            when = packet.created_at if packet.created_at is not None else 0.0
        self.write(when, frame)


def read_pcap(handle: BinaryIO) -> List[Tuple[float, bytes]]:
    """Read a classic pcap file into (timestamp, frame) pairs."""
    header = handle.read(24)
    if len(header) < 24:
        raise ValueError("truncated pcap global header")
    (magic,) = struct.unpack("!I", header[:4])
    if magic == _MAGIC:
        endian = "!"
    elif magic == 0xD4C3B2A1:
        endian = "<"
    else:
        raise ValueError(f"not a pcap file (magic {magic:#x})")
    out: List[Tuple[float, bytes]] = []
    while True:
        record = handle.read(16)
        if not record:
            break
        if len(record) < 16:
            raise ValueError("truncated pcap record header")
        seconds, microseconds, caplen, _origlen = struct.unpack(
            endian + "IIII", record
        )
        frame = handle.read(caplen)
        if len(frame) < caplen:
            raise ValueError("truncated pcap frame")
        out.append((seconds + microseconds / 1e6, frame))
    return out


def write_gtp_trace(
    handle: BinaryIO,
    packets: Iterable[Packet],
    teid: int,
    upf_address: int,
    gnb_address: int,
    rate_pps: float = 10_000,
) -> int:
    """Write a constant-rate GTP-U trace (the artifact's generator).

    Returns the number of frames written.  Packets missing timestamps
    are spaced at ``rate_pps``.
    """
    writer = PcapWriter(handle)
    interval = 1.0 / rate_pps
    when = 0.0
    for packet in packets:
        timestamp = (
            packet.created_at if packet.created_at is not None else when
        )
        writer.write_packet(
            packet,
            timestamp=timestamp,
            gtp_teid=teid,
            outer_src=upf_address,
            outer_dst=gnb_address,
        )
        when += interval
    return writer.packets_written
