"""IPv4 address utilities used across the data plane.

Addresses are carried as plain ``int`` (host byte order) inside the
simulator for speed; these helpers convert to and from dotted-quad
strings and handle prefix arithmetic for the classifier.
"""

from __future__ import annotations

import struct
from typing import Iterator, Tuple

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "prefix_range",
    "prefix_mask",
    "ip_in_prefix",
    "AddressAllocator",
]

_MAX_IPV4 = 0xFFFFFFFF


def ip_to_int(address: str) -> int:
    """Convert a dotted-quad IPv4 string to an integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert an integer to a dotted-quad IPv4 string.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"IPv4 integer out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_mask(length: int) -> int:
    """The netmask (as an int) of a prefix of the given length."""
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length!r}")
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4


def prefix_range(address: int, length: int) -> Tuple[int, int]:
    """The inclusive ``(low, high)`` integer range covered by a prefix."""
    mask = prefix_mask(length)
    low = address & mask
    high = low | (~mask & _MAX_IPV4)
    return low, high


def ip_in_prefix(value: int, address: int, length: int) -> bool:
    """True if ``value`` falls inside ``address/length``."""
    low, high = prefix_range(address, length)
    return low <= value <= high


def pack_ipv4(value: int) -> bytes:
    """Pack an integer IPv4 address to 4 network-order bytes."""
    return struct.pack("!I", value)


def unpack_ipv4(data: bytes) -> int:
    """Unpack 4 network-order bytes into an integer IPv4 address."""
    if len(data) != 4:
        raise ValueError(f"expected 4 bytes, got {len(data)}")
    return struct.unpack("!I", data)[0]


class AddressAllocator:
    """Sequential allocator of UE IPv4 addresses from a pool prefix.

    The UPF hands one address per PDU session; addresses can be released
    and are then reused in FIFO order.

    >>> alloc = AddressAllocator("10.60.0.0", 16)
    >>> int_to_ip(alloc.allocate())
    '10.60.0.1'
    """

    def __init__(self, base: str, prefix_len: int):
        self._low, self._high = prefix_range(ip_to_int(base), prefix_len)
        self._next = self._low + 1  # skip the network address
        self._released: list = []
        self._in_use: set = set()

    def allocate(self) -> int:
        """Return a free address; raises RuntimeError when exhausted."""
        if self._released:
            address = self._released.pop(0)
        else:
            if self._next >= self._high:  # keep broadcast unused
                raise RuntimeError("UE address pool exhausted")
            address = self._next
            self._next += 1
        self._in_use.add(address)
        return address

    def release(self, address: int) -> None:
        """Return an address to the pool."""
        if address not in self._in_use:
            raise ValueError(f"address not allocated: {int_to_ip(address)}")
        self._in_use.remove(address)
        self._released.append(address)

    @property
    def in_use(self) -> int:
        """Number of currently allocated addresses."""
        return len(self._in_use)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._in_use))
