"""Receive Side Scaling: spreading packets across cores / 5GC units.

Modern NICs hash configurable header fields into a receive-queue index
(§4: "we leverage RSS offered by modern NICs to segregate incoming
packets into different receive queues...").  We implement the Toeplitz
hash used by Intel NICs over the IPv4 five-tuple, plus the indirection
table mapping hash values to queues.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple

from ..net.packet import FiveTuple, Packet

__all__ = [
    "toeplitz_hash",
    "toeplitz_hash32",
    "RSSIndirection",
    "DEFAULT_RSS_KEY",
]

#: Microsoft's verification RSS key, the de-facto default.
DEFAULT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


def toeplitz_hash(data: bytes, key: bytes = DEFAULT_RSS_KEY) -> int:
    """The Toeplitz hash over ``data`` with the given key."""
    if len(key) < len(data) + 4:
        raise ValueError("RSS key too short for input")
    result = 0
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    window_shift = key_bits - 32
    bit_index = 0
    for byte in data:
        for bit in range(7, -1, -1):
            if byte & (1 << bit):
                window = (key_int >> (window_shift - bit_index)) & 0xFFFFFFFF
                result ^= window
            bit_index += 1
    return result


def toeplitz_windows(key: bytes = DEFAULT_RSS_KEY, bits: int = 32) -> List[int]:
    """The per-input-bit 32-bit key windows of the Toeplitz hash.

    ``windows[p]`` is the hash of an input whose only set bit is bit
    ``p`` (counting from the MSB of the input).  Toeplitz is linear
    over GF(2) — ``hash(a ^ b) == hash(a) ^ hash(b)`` — so these
    windows fully determine the hash; the sharded deployment uses them
    to *steer* allocated TEIDs into a chosen indirection bucket.
    """
    key_int = int.from_bytes(key, "big")
    window_shift = len(key) * 8 - 32
    if window_shift < bits:
        raise ValueError("RSS key too short for input")
    return [
        (key_int >> (window_shift - p)) & 0xFFFFFFFF for p in range(bits)
    ]


_BYTE_TABLE_CACHE: Dict[bytes, Tuple[List[int], ...]] = {}


def _byte_tables(key: bytes) -> Tuple[List[int], ...]:
    """4 x 256 precomputed tables: Toeplitz of each byte position."""
    tables = _BYTE_TABLE_CACHE.get(key)
    if tables is not None:
        return tables
    windows = toeplitz_windows(key, bits=32)
    built: List[List[int]] = []
    for byte_index in range(4):
        table = []
        for byte in range(256):
            acc = 0
            for bit in range(8):
                if byte & (0x80 >> bit):
                    acc ^= windows[byte_index * 8 + bit]
            table.append(acc)
        built.append(table)
    tables = tuple(built)
    _BYTE_TABLE_CACHE[key] = tables
    return tables


def toeplitz_hash32(value: int, key: bytes = DEFAULT_RSS_KEY) -> int:
    """Toeplitz hash of one 32-bit big-endian word (TEID or IPv4).

    Equivalent to ``toeplitz_hash(struct.pack("!I", value), key)`` but
    via four byte-table lookups — the form that survives a 1M-session
    sweep.  The sharded dispatcher hashes the UL TEID and the DL UE IP
    through this.
    """
    t0, t1, t2, t3 = _byte_tables(key)
    return (
        t0[(value >> 24) & 0xFF]
        ^ t1[(value >> 16) & 0xFF]
        ^ t2[(value >> 8) & 0xFF]
        ^ t3[value & 0xFF]
    )


def hash_five_tuple(flow: FiveTuple, key: bytes = DEFAULT_RSS_KEY) -> int:
    """RSS input for TCP/UDP over IPv4: src ip, dst ip, src/dst port."""
    data = struct.pack(
        "!IIHH", flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port
    )
    return toeplitz_hash(data, key)


class RSSIndirection:
    """The NIC's indirection table: hash LSBs -> receive queue.

    >>> rss = RSSIndirection(num_queues=4)
    >>> 0 <= rss.queue_for(FiveTuple(src_ip=1, dst_ip=2)) < 4
    True
    """

    def __init__(self, num_queues: int, table_size: int = 128):
        if num_queues <= 0:
            raise ValueError("need at least one queue")
        self.num_queues = num_queues
        self.table: List[int] = [
            index % num_queues for index in range(table_size)
        ]

    def queue_for(self, flow: FiveTuple, key: bytes = DEFAULT_RSS_KEY) -> int:
        value = hash_five_tuple(flow, key)
        return self.table[value % len(self.table)]

    def queue_for_word(
        self, value: int, key: bytes = DEFAULT_RSS_KEY
    ) -> int:
        """Queue for a single 32-bit hash input (TEID / UE IP)."""
        return self.table[toeplitz_hash32(value, key) % len(self.table)]

    def dispatch(self, packets: Sequence[Packet]) -> List[List[Packet]]:
        """Split a burst into per-queue lists (same flow -> same queue)."""
        queues: List[List[Packet]] = [[] for _ in range(self.num_queues)]
        for packet in packets:
            queues[self.queue_for(packet.flow)].append(packet)
        return queues
