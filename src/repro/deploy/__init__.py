"""Deployment: 5GC units, UE-aware LB, RSS, sharding, canary, placement."""

from .lb import UEAwareLoadBalancer, UnitHandle
from .rss import (
    DEFAULT_RSS_KEY,
    RSSIndirection,
    hash_five_tuple,
    toeplitz_hash,
    toeplitz_hash32,
)
from .sharded import (
    ShardedSessionTable,
    ShardedUPFControlPlane,
    ShardedUserPlane,
    ShardRouter,
    UPFShard,
)
from .slicing import NetworkSlice, SliceManager, SNssai
from .unit import CanaryController, FiveGCUnit, NodeSpec, PlacementEngine

__all__ = [
    "UEAwareLoadBalancer",
    "UnitHandle",
    "DEFAULT_RSS_KEY",
    "RSSIndirection",
    "hash_five_tuple",
    "toeplitz_hash",
    "toeplitz_hash32",
    "ShardRouter",
    "ShardedSessionTable",
    "ShardedUserPlane",
    "ShardedUPFControlPlane",
    "UPFShard",
    "NetworkSlice",
    "SliceManager",
    "SNssai",
    "CanaryController",
    "FiveGCUnit",
    "NodeSpec",
    "PlacementEngine",
]
