"""Deployment: 5GC units, UE-aware LB, RSS, canary rollout, placement."""

from .lb import UEAwareLoadBalancer, UnitHandle
from .rss import DEFAULT_RSS_KEY, RSSIndirection, hash_five_tuple, toeplitz_hash
from .slicing import NetworkSlice, SliceManager, SNssai
from .unit import CanaryController, FiveGCUnit, NodeSpec, PlacementEngine

__all__ = [
    "UEAwareLoadBalancer",
    "UnitHandle",
    "DEFAULT_RSS_KEY",
    "RSSIndirection",
    "hash_five_tuple",
    "toeplitz_hash",
    "NetworkSlice",
    "SliceManager",
    "SNssai",
    "CanaryController",
    "FiveGCUnit",
    "NodeSpec",
    "PlacementEngine",
]
