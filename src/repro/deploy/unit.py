"""5GC units, canary rollout and placement (§4).

A *5GC unit* is one consolidated core instance (all NFs on a node,
sharing a private memory pool).  Multiple units serve a region behind
the UE-aware LB; network slices map to service-id ranges; canary
rollout shifts a configured traffic fraction to a new NF version via
the NF manager's weighted instance selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import FiveGCore, SystemConfig
from ..sim.engine import Environment

__all__ = ["FiveGCUnit", "CanaryController", "PlacementEngine", "NodeSpec"]


@dataclass
class NodeSpec:
    """A server that can host 5GC units."""

    node_id: int
    cores: int = 12
    used_cores: int = 0

    def fits(self, cores: int) -> bool:
        return self.used_cores + cores <= self.cores


class FiveGCUnit:
    """One consolidated 5GC instance with its own security domain."""

    #: Cores one unit needs: manager Rx/Tx + UPF + control NFs
    #: (the paper's artifact requires >= 12 cores per node).
    CORES_REQUIRED = 6

    def __init__(
        self,
        env: Environment,
        unit_id: int,
        config: Optional[SystemConfig] = None,
        costs: CostModel = DEFAULT_COSTS,
        slice_id: int = 0,
    ):
        self.unit_id = unit_id
        self.slice_id = slice_id
        #: DPDK shared-data file prefix — the isolation boundary
        #: between units of different operators (§3.2).
        self.file_prefix = f"l25gc-unit-{unit_id}"
        self.core = FiveGCore(env, config, costs=costs)
        self.node: Optional[NodeSpec] = None

    def __repr__(self) -> str:
        return f"FiveGCUnit(id={self.unit_id}, slice={self.slice_id})"


class CanaryController:
    """Gradual rollout of a new NF version through manager weights.

    The manager identifies instances of a service by instance id; the
    controller ramps the canary's traffic share along a schedule.
    """

    def __init__(self, manager, service_id: int):
        self.manager = manager
        self.service_id = service_id
        self.stable_instance = 0
        self.canary_instance = 1
        self.history: List[float] = []

    def set_canary_share(self, fraction: float) -> None:
        """Send ``fraction`` of traffic to the canary instance."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction!r}")
        self.manager.set_canary_weights(
            self.service_id,
            {
                self.stable_instance: 1.0 - fraction,
                self.canary_instance: fraction,
            },
        )
        self.history.append(fraction)

    def promote(self) -> None:
        """Canary becomes the stable version (100 % of traffic)."""
        self.set_canary_share(1.0)

    def rollback(self) -> None:
        """Abort the rollout; all traffic back to stable."""
        self.set_canary_share(0.0)


class PlacementEngine:
    """Affinity-aware placement of units onto nodes (§4 'Scheduling').

    All NFs of a unit must land on the same node (they share memory);
    the engine simply finds a node with enough free cores — the paper
    notes the design is straightforward given capacity knowledge.
    """

    def __init__(self, nodes: List[NodeSpec]):
        self.nodes = list(nodes)
        self.placements: Dict[int, int] = {}

    def place(self, unit: FiveGCUnit) -> Optional[NodeSpec]:
        """First-fit-decreasing-free-capacity placement."""
        candidates = [
            node for node in self.nodes if node.fits(unit.CORES_REQUIRED)
        ]
        if not candidates:
            return None
        chosen = max(candidates, key=lambda node: node.cores - node.used_cores)
        chosen.used_cores += unit.CORES_REQUIRED
        unit.node = chosen
        self.placements[unit.unit_id] = chosen.node_id
        return chosen

    def utilization(self) -> Dict[int, float]:
        return {
            node.node_id: node.used_cores / node.cores for node in self.nodes
        }
