"""The UE-aware load balancer (§4).

A serving region runs multiple consolidated 5GC units; a UE session is
pinned to the unit that admitted it, so control-plane state never
migrates.  New sessions go to the least-loaded unit.  The LB also hosts
the resiliency counter/logger and the S-BFD probe agent (Fig 5), which
the :mod:`repro.resiliency` package supplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["UnitHandle", "UEAwareLoadBalancer"]


@dataclass
class UnitHandle:
    """One 5GC unit as the LB sees it."""

    unit_id: int
    capacity_sessions: int = 1000
    sessions: int = 0
    healthy: bool = True

    @property
    def load(self) -> float:
        return self.sessions / self.capacity_sessions

    @property
    def has_room(self) -> bool:
        return self.healthy and self.sessions < self.capacity_sessions


class UEAwareLoadBalancer:
    """Maintains UE -> 5GC-unit affinity and balances new sessions."""

    def __init__(self) -> None:
        self.units: Dict[int, UnitHandle] = {}
        self.affinity: Dict[str, int] = {}
        self.assignments = 0
        self.rejected = 0
        #: Releases for SUPIs the LB never assigned (or already
        #: released) — a no-op, but counted so the asymmetry is visible.
        self.unknown_releases = 0

    def add_unit(self, unit: UnitHandle) -> None:
        if unit.unit_id in self.units:
            raise ValueError(f"duplicate unit id {unit.unit_id}")
        self.units[unit.unit_id] = unit

    def mark_failed(self, unit_id: int) -> None:
        self.units[unit_id].healthy = False

    def mark_recovered(self, unit_id: int) -> None:
        self.units[unit_id].healthy = True

    # ------------------------------------------------------------------
    def assign(self, supi: str) -> Optional[UnitHandle]:
        """The unit serving this UE, allocating one if new.

        Existing affinity always wins while the unit is healthy — this
        is what avoids the state-migration cost of moving sessions.
        """
        unit_id = self.affinity.get(supi)
        if unit_id is not None:
            unit = self.units[unit_id]
            if unit.healthy:
                return unit
            # The pinned unit died: fail over to a new one (the
            # resiliency framework restores its state there).
            del self.affinity[supi]
            unit.sessions = max(0, unit.sessions - 1)
        candidates = [unit for unit in self.units.values() if unit.has_room]
        if not candidates:
            self.rejected += 1
            return None
        chosen = min(candidates, key=lambda unit: (unit.load, unit.unit_id))
        chosen.sessions += 1
        self.affinity[supi] = chosen.unit_id
        self.assignments += 1
        return chosen

    def pin(self, supi: str, unit_id: int) -> bool:
        """Pin a UE to a specific unit (hash-decided placement).

        The sharded deployment decides placement with the RSS /
        consistent-hash layer; the LB still stamps the per-unit session
        counters (its §4 resiliency-counter role).  Returns False —
        counting a rejection — when the unit is missing, unhealthy, or
        full.  Re-pinning to a new unit moves the session count.
        """
        unit = self.units.get(unit_id)
        existing = self.affinity.get(supi)
        if existing == unit_id:
            return True
        if unit is None or not unit.has_room:
            self.rejected += 1
            return False
        if existing is not None:
            old = self.units[existing]
            old.sessions = max(0, old.sessions - 1)
        unit.sessions += 1
        self.affinity[supi] = unit_id
        self.assignments += 1
        return True

    def release(self, supi: str) -> None:
        """Drop a UE's session (deregistration).

        Unknown SUPIs are a counted no-op — ``assign``/``release`` are
        asymmetric by design (failover re-homes drop affinity), so a
        stray release must never raise.
        """
        unit_id = self.affinity.pop(supi, None)
        if unit_id is None:
            self.unknown_releases += 1
            return
        unit = self.units.get(unit_id)
        if unit is None:
            self.unknown_releases += 1
            return
        unit.sessions = max(0, unit.sessions - 1)

    def distribution(self) -> Dict[int, int]:
        """unit id -> session count (for balance assertions)."""
        return {unit_id: unit.sessions for unit_id, unit in self.units.items()}
