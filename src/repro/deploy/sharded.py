"""Sharded multi-UPF scale-out: RSS dispatch, per-shard data planes.

One UPF-U pipeline serves every UE from a single ``SessionTable`` /
``FlowCache``; the ROADMAP's "millions of users" needs horizontal
scale-out.  This module runs N independent UPF-U workers behind the
NIC-style dispatch the paper already leans on (§4: RSS segregates
packets into per-unit receive queues; the UE-aware LB stamps the
per-unit session counters):

* :class:`ShardRouter` — an RSS indirection table programmed from a
  consistent-hash ring.  Data-plane dispatch is two table lookups:
  Toeplitz hash of the UL TEID or DL UE IP, masked to a bucket, bucket
  to shard.  A shard failure remaps only that shard's buckets.
* TEID *steering* — Toeplitz is linear over GF(2), so the router
  allocates uplink TEIDs whose hash lands in the same bucket as the
  session's UE IP (the trick DPDK applications use to pin a flow to a
  chosen queue).  A session's UL and DL keys therefore live on the
  same shard under any bucket map, including after rebalance.
* :class:`ShardedSessionTable` — a :class:`SessionTableView` the
  UPF-C routes PFCP establish/modify/delete through unchanged.
* :class:`ShardedUserPlane` — the facade owning per-shard
  ``SessionTable`` + ``UPFUserPlane`` (each with its own ``FlowCache``
  and ``RuleEpoch``), the LB handles, and the failure/rebalance path.
* :class:`ShardedUPFControlPlane` — the N4 endpoint whose CHOOSE
  F-TEID allocations are steered.

Ownership is unchanged from the single-UPF split: the UPF-C role is
the only writer of session membership and rules (on every shard); each
shard's UPF-U owns its runtime state.  The PR 4 race detector and the
W001-W004 whole-program checks pass on this configuration as-is.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional

from ..analysis import races as _races
from ..core.costs import DEFAULT_COSTS, CostModel
from ..net.packet import Direction, Packet
from ..obs.metrics import Histogram, MetricsRegistry
from ..up import (
    DEFAULT_FLOW_CACHE_CAPACITY,
    ForwardingStats,
    SessionTable,
    SessionTableView,
    UPFControlPlane,
    UPFSession,
    UPFUserPlane,
)
from .lb import UEAwareLoadBalancer, UnitHandle
from .rss import DEFAULT_RSS_KEY, toeplitz_hash32, toeplitz_windows

__all__ = [
    "ShardRouter",
    "ShardedSessionTable",
    "ShardedUserPlane",
    "ShardedUPFControlPlane",
    "UPFShard",
]


def _ring_point(label: str) -> int:
    """A stable 64-bit ring position (never the salted builtin hash)."""
    return int.from_bytes(
        hashlib.blake2b(label.encode(), digest_size=8).digest(), "big"
    )


class _TeidSteering:
    """Solve ``bucket(teid) == target`` over GF(2).

    ``toeplitz_windows()[p]`` is the hash of input bit ``p`` alone; the
    low ``log2(table_size)`` bits of the first few windows form a
    matrix over GF(2).  Gaussian elimination finds, for every bucket
    *syndrome*, the XOR of input bits that produces it — the
    correction mask.  With the Microsoft key and 128 buckets only the
    TEID's top 7 bits are needed, leaving a 24-bit counter space
    untouched, so steered TEIDs stay unique.
    """

    #: Input bits the solver may claim, counted from the TEID MSB.
    #: Allocation counters must stay below 2**(32 - MAX_STEER_BITS).
    MAX_STEER_BITS = 16

    def __init__(self, key: bytes, table_size: int):
        mask = table_size - 1
        windows = toeplitz_windows(key, bits=self.MAX_STEER_BITS)
        pivots: Dict[int, tuple] = {}
        bits_needed = table_size.bit_length() - 1
        self.steer_bits = 0
        for position, window in enumerate(windows):
            syndrome = window & mask
            input_mask = 1 << (31 - position)
            for bit in sorted(pivots, reverse=True):
                if syndrome >> bit & 1:
                    pivot_syndrome, pivot_mask = pivots[bit]
                    syndrome ^= pivot_syndrome
                    input_mask ^= pivot_mask
            if syndrome:
                pivots[syndrome.bit_length() - 1] = (syndrome, input_mask)
            if len(pivots) == bits_needed:
                self.steer_bits = position + 1
                break
        if len(pivots) < bits_needed:
            raise ValueError(
                f"RSS key cannot steer {table_size} buckets with "
                f"{self.MAX_STEER_BITS} input bits"
            )
        # Enumerate every syndrome's correction once; steering is then
        # a single table lookup per allocation.
        self.fix: List[int] = []
        for syndrome in range(table_size):
            correction = 0
            for bit in sorted(pivots, reverse=True):
                if syndrome >> bit & 1:
                    pivot_syndrome, pivot_mask = pivots[bit]
                    syndrome ^= pivot_syndrome
                    correction ^= pivot_mask
            self.fix.append(correction)


class ShardRouter:
    """Consistent-hash-programmed RSS indirection for shard dispatch.

    The data plane sees pure RSS: ``bucket = toeplitz(key32) & mask``,
    ``shard = table[bucket]`` — the same two-step lookup a NIC
    performs, so dispatch adds two table probes per packet.  The
    control plane programs ``table`` from a consistent-hash ring
    (``VNODES`` virtual nodes per shard), so removing a shard moves
    only the buckets that pointed at it.
    """

    VNODES = 16

    def __init__(
        self,
        num_shards: int,
        table_size: int = 128,
        key: bytes = DEFAULT_RSS_KEY,
    ):
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table_size must be a power of two")
        self.num_shards = num_shards
        self.table_size = table_size
        self.key = key
        self._mask = table_size - 1
        self._steering = _TeidSteering(key, table_size)
        self._ring: List[tuple] = []
        self._members: set = set()
        for shard in range(num_shards):
            self._add_to_ring(shard)
        #: Pre-hashed ring positions of each bucket index.
        self._bucket_points = [
            _ring_point(f"bucket-{bucket}") for bucket in range(table_size)
        ]
        self.table: List[int] = [0] * table_size
        #: Buckets whose owner changed across all reprogram calls.
        self.remapped_buckets = 0
        self._reprogram()

    # -- ring management ----------------------------------------------------
    def _add_to_ring(self, shard: int) -> None:
        for vnode in range(self.VNODES):
            self._ring.append((_ring_point(f"shard-{shard}/{vnode}"), shard))
        self._ring.sort()
        self._members.add(shard)

    def add_shard(self, shard: int) -> List[int]:
        """(Re-)admit a shard; returns the buckets that moved."""
        if shard in self._members:
            return []
        self._add_to_ring(shard)
        return self._reprogram()

    def remove_shard(self, shard: int) -> List[int]:
        """Drop a shard from the ring; returns the buckets that moved."""
        if shard not in self._members:
            return []
        if len(self._members) == 1:
            raise ValueError("cannot remove the last shard")
        self._ring = [entry for entry in self._ring if entry[1] != shard]
        self._members.discard(shard)
        return self._reprogram()

    def _successor(self, point: int) -> int:
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        return self._ring[lo % len(self._ring)][1]

    def _reprogram(self) -> List[int]:
        moved = []
        for bucket in range(self.table_size):
            owner = self._successor(self._bucket_points[bucket])
            if self.table[bucket] != owner:
                self.table[bucket] = owner
                moved.append(bucket)
        self.remapped_buckets += len(moved)
        return moved

    # -- dispatch -----------------------------------------------------------
    def bucket_of(self, value: int) -> int:
        """Indirection bucket of one 32-bit hash key (TEID / UE IP)."""
        return toeplitz_hash32(value, self.key) & self._mask

    def shard_for_teid(self, teid: int) -> int:
        return self.table[self.bucket_of(teid)]

    def shard_for_ue_ip(self, ue_ip: int) -> int:
        return self.table[self.bucket_of(ue_ip)]

    def shard_for_packet(self, packet: Packet) -> int:
        """RSS dispatch: UL hashes the TEID, DL hashes the UE IP."""
        if packet.direction is Direction.UPLINK:
            # TEID-less UL has no session anywhere; shard 0 of the
            # current table drops it just like the single UPF would.
            return self.table[self.bucket_of(packet.teid or 0)]
        return self.table[self.bucket_of(packet.flow.dst_ip)]

    # -- steering -----------------------------------------------------------
    def steer_teid(self, ue_ip: int, base_teid: int) -> int:
        """A TEID hashing into the same bucket as ``ue_ip``.

        XORs a correction into the TEID's steering bits (GF(2)
        linearity): uniqueness of ``base_teid`` below the steering bits
        implies uniqueness of the result, and the UL/DL co-location
        survives any bucket remap because both keys share a bucket.
        """
        syndrome = self.bucket_of(base_teid) ^ self.bucket_of(ue_ip)
        return base_teid ^ self._steering.fix[syndrome]


class ShardedSessionTable(SessionTableView):
    """Shard-aware session store the UPF-C writes through.

    Routes by the same hashes as the data plane: ``add`` places the
    session on the shard its UE IP's bucket maps to (after checking
    the UL TEID was steered into the same bucket), lookups route by
    key, and ``rehome`` implements the rebalance move.  Membership
    stays single-writer: only the "upf-c" role calls the mutators, on
    whichever shard table they resolve to.
    """

    def __init__(
        self,
        router: ShardRouter,
        tables: List[SessionTable],
        lb: Optional[UEAwareLoadBalancer] = None,
    ):
        self.router = router
        self.tables = tables
        self.lb = lb
        self._shard_by_seid: Dict[int, int] = {}

    @staticmethod
    def _lb_key(seid: int) -> str:
        return f"seid-{seid}"

    def shard_of(self, seid: int) -> Optional[int]:
        return self._shard_by_seid.get(seid)

    def add(self, session: UPFSession) -> None:
        shard = self.router.shard_for_ue_ip(session.ue_ip)
        if self.router.shard_for_teid(session.ul_teid) != shard:
            raise ValueError(
                f"UL TEID {session.ul_teid:#x} hashes to a different "
                f"shard than UE IP {session.ue_ip:#x}; allocate TEIDs "
                "via ShardRouter.steer_teid"
            )
        if self.lb is not None and not self.lb.pin(
            self._lb_key(session.seid), shard
        ):
            raise ValueError(f"shard {shard} rejected session {session.seid}")
        try:
            self.tables[shard].add(session)
        except Exception:
            # add() rejects duplicate SEID/TEID/UE-IP; the pin taken
            # above must not outlive the failed install.
            if self.lb is not None:
                self.lb.release(self._lb_key(session.seid))
            raise
        self._shard_by_seid[session.seid] = shard

    def remove(self, seid: int) -> Optional[UPFSession]:
        shard = self._shard_by_seid.pop(seid, None)
        if shard is None:
            return None
        if self.lb is not None:
            self.lb.release(self._lb_key(seid))
        return self.tables[shard].remove(seid)

    def rehome(self, seid: int, target: int) -> bool:
        """Move one session to ``target`` (rebalance after remap).

        Remove-then-add through the shard tables, so the old shard's
        removal listeners fire (flow-cache purge, drain-state drop) and
        the session adopts the new shard's epoch.  In-flight buffered
        packets travel with the session object.
        """
        shard = self._shard_by_seid.get(seid)
        if shard is None or shard == target:
            return False
        session = self.tables[shard].remove(seid)
        if session is None:
            return False
        try:
            self.tables[target].add(session)
        except Exception:
            # Target rejected the session (e.g. a TEID collision with a
            # resident session); restore it to the source shard so the
            # session — and its buffered packets — is not lost.
            self.tables[shard].add(session)
            raise
        self._shard_by_seid[seid] = target
        if self.lb is not None:
            self.lb.pin(self._lb_key(seid), target)
        return True

    def by_seid(self, seid: int) -> Optional[UPFSession]:
        shard = self._shard_by_seid.get(seid)
        if shard is None:
            return None
        return self.tables[shard].by_seid(seid)

    def by_teid(self, teid: int) -> Optional[UPFSession]:
        return self.tables[self.router.shard_for_teid(teid)].by_teid(teid)

    def by_ue_ip(self, ue_ip: int) -> Optional[UPFSession]:
        return self.tables[self.router.shard_for_ue_ip(ue_ip)].by_ue_ip(ue_ip)

    def __len__(self) -> int:
        return len(self._shard_by_seid)

    def sessions(self) -> List[UPFSession]:
        out: List[UPFSession] = []
        for table in self.tables:
            out.extend(table.sessions())
        return out

    def add_removal_listener(
        self, listener: Callable[[UPFSession], None]
    ) -> None:
        for table in self.tables:
            table.add_removal_listener(listener)


@dataclass
class UPFShard:
    """One worker: its table, pipeline and LB handle."""

    shard_id: int
    table: SessionTable
    upf_u: UPFUserPlane
    unit: UnitHandle


class ShardedUserPlane:
    """N independent UPF-U workers behind RSS dispatch.

    Duck-typed for the single ``UPFUserPlane``'s facade surface
    (``process`` / ``flush_session`` / ``stats`` / ``notify_cp`` /
    ``usage_report_sink``), so :class:`~repro.cp.core5g.FiveGCore` and
    the experiments drive it unchanged.  Each shard owns its
    ``SessionTable``, ``FlowCache`` and ``RuleEpoch``: a rule change on
    one shard never invalidates another shard's cache, and the
    per-shard working set is what keeps 1M sessions out of one
    lookup structure (the 5GC²ache collapse).
    """

    def __init__(
        self,
        env,
        num_shards: int,
        uplink_sink: Optional[Callable[[Packet], None]] = None,
        downlink_sink: Optional[Callable[[Packet, int, int], None]] = None,
        notify_cp: Optional[Callable[[UPFSession], None]] = None,
        fast_path: bool = True,
        session_scoped_buffering: bool = True,
        costs: CostModel = DEFAULT_COSTS,
        flow_cache: bool = True,
        flow_cache_capacity: int = DEFAULT_FLOW_CACHE_CAPACITY,
        burst_size: int = 1,
        capacity_sessions_per_shard: int = 1_000_000,
        table_size: int = 128,
        rss_key: bytes = DEFAULT_RSS_KEY,
    ):
        self.env = env
        self.router = ShardRouter(num_shards, table_size, rss_key)
        self.lb = UEAwareLoadBalancer()
        self.shards: List[UPFShard] = []
        self._notify_cp = notify_cp or (lambda session: None)
        self._usage_report_sink: Callable = lambda session, counter: None
        for shard_id in range(num_shards):
            table = SessionTable()
            upf_u = UPFUserPlane(
                env,
                table,
                name=f"upf-u-{shard_id}",
                instance_id=shard_id,
                uplink_sink=uplink_sink,
                downlink_sink=downlink_sink,
                notify_cp=self._notify_cp,
                fast_path=fast_path,
                session_scoped_buffering=session_scoped_buffering,
                costs=costs,
                flow_cache=flow_cache,
                flow_cache_capacity=flow_cache_capacity,
                burst_size=burst_size,
            )
            unit = UnitHandle(
                unit_id=shard_id,
                capacity_sessions=capacity_sessions_per_shard,
            )
            self.lb.add_unit(unit)
            self.shards.append(UPFShard(shard_id, table, upf_u, unit))
        self.sessions = ShardedSessionTable(
            self.router, [shard.table for shard in self.shards], lb=self.lb
        )
        #: Packets dispatched to each shard (RSS queue depth proxy).
        self.dispatched: List[int] = [0] * num_shards
        self.failovers = 0
        self.sessions_rehomed = 0
        #: Per-shard data-plane latency histograms, populated by
        #: :meth:`register_into`; experiments feed them via
        #: :meth:`observe_latency`.
        self._latency: Dict[int, Histogram] = {}

    # -- data plane ---------------------------------------------------------
    def process(self, packet: Packet) -> str:
        """RSS dispatch + the owning shard's full pipeline."""
        shard_id = self.router.shard_for_packet(packet)
        self.dispatched[shard_id] += 1
        return self.shards[shard_id].upf_u.process(packet)

    def process_burst(self, packets) -> list:
        """RSS dispatch for a whole burst: one sub-burst per shard.

        Packets are grouped by their RSS bucket's shard (preserving
        per-shard arrival order — the same order the per-queue NIC
        delivery would produce), each shard runs its own
        ``process_burst``, and the outcomes scatter back into the
        original burst order.  Each shard touches only its own
        ``SessionTable``/``FlowCache``, so the single-writer discipline
        the race detector enforces per shard is untouched by batching.
        """
        shard_for_packet = self.router.shard_for_packet
        dispatched = self.dispatched
        groups: Dict[int, List[int]] = {}
        for index, packet in enumerate(packets):
            shard_id = shard_for_packet(packet)
            dispatched[shard_id] += 1
            group = groups.get(shard_id)
            if group is None:
                groups[shard_id] = [index]
            else:
                group.append(index)
        outcomes = [None] * len(packets)
        shards = self.shards
        for shard_id, indices in groups.items():
            sub_burst = [packets[index] for index in indices]
            sub_outcomes = shards[shard_id].upf_u.process_burst(sub_burst)
            for index, outcome in zip(indices, sub_outcomes):
                outcomes[index] = outcome
        return outcomes

    def flush_session(self, session: UPFSession) -> int:
        shard_id = self.sessions.shard_of(session.seid)
        if shard_id is None:
            return 0
        return self.shards[shard_id].upf_u.flush_session(session)

    # -- facade plumbing (FiveGCore wires these post-construction) ---------
    @property
    def notify_cp(self) -> Callable[[UPFSession], None]:
        return self._notify_cp

    @notify_cp.setter
    def notify_cp(self, callback: Callable[[UPFSession], None]) -> None:
        self._notify_cp = callback
        for shard in self.shards:
            shard.upf_u.notify_cp = callback

    @property
    def usage_report_sink(self) -> Callable:
        return self._usage_report_sink

    @usage_report_sink.setter
    def usage_report_sink(self, callback: Callable) -> None:
        self._usage_report_sink = callback
        for shard in self.shards:
            shard.upf_u.usage_report_sink = callback

    @property
    def stats(self) -> ForwardingStats:
        """Aggregate forwarding counters (snapshot, not live)."""
        total = ForwardingStats()
        for shard in self.shards:
            for spec in fields(ForwardingStats):
                setattr(
                    total,
                    spec.name,
                    getattr(total, spec.name)
                    + getattr(shard.upf_u.stats, spec.name),
                )
        return total

    @property
    def flow_cache_hit_rate(self) -> float:
        hits = misses = 0
        for shard in self.shards:
            cache = shard.upf_u.flow_cache
            if cache is not None:
                hits += cache.hits
                misses += cache.misses
        probes = hits + misses
        return hits / probes if probes else 0.0

    def load_skew(self) -> float:
        """max/mean sessions per healthy shard (1.0 = perfect)."""
        counts = [
            len(shard.table)
            for shard in self.shards
            if shard.unit.healthy
        ]
        if not counts:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    # -- failure / rebalance ------------------------------------------------
    def mark_failed(self, shard_id: int) -> int:
        """Fail a shard: LB counter, ring removal, session rebalance.

        Returns the number of sessions moved.  Rebalance is
        control-plane work (membership writes), so it runs under the
        "upf-c" role; each move fires the failed shard's removal
        listeners, purging its flow-cache entries and drain state.
        """
        self.lb.mark_failed(shard_id)
        self.router.remove_shard(shard_id)
        self.failovers += 1
        return self._rebalance()

    def mark_recovered(self, shard_id: int) -> int:
        """Readmit a shard and pull its buckets' sessions back."""
        self.lb.mark_recovered(shard_id)
        self.router.add_shard(shard_id)
        return self._rebalance()

    def _rebalance(self) -> int:
        detector = _races.active()
        if detector is None:
            return self._rebalance_sessions()
        with detector.role("upf-c"):
            return self._rebalance_sessions()

    def _rebalance_sessions(self) -> int:
        # Snapshot first: rehome mutates the shard tables underneath.
        moves = []
        for shard in self.shards:
            for session in shard.table.sessions():
                target = self.router.shard_for_ue_ip(session.ue_ip)
                if target != shard.shard_id:
                    moves.append((session.seid, target))
        for seid, target in moves:
            self.sessions.rehome(seid, target)
        self.sessions_rehomed += len(moves)
        return len(moves)

    # -- observability ------------------------------------------------------
    def observe_latency(self, shard_id: int, seconds: float) -> None:
        """Feed one measured per-packet latency into the shard's
        histogram (no wall-clock reads inside the library)."""
        histogram = self._latency.get(shard_id)
        if histogram is not None:
            histogram.observe(seconds)

    def register_into(
        self, registry: MetricsRegistry, prefix: str = "upf_u"
    ) -> None:
        """Per-shard gauges/histograms plus single-UPF-compatible
        aggregates.

        Shard series use the label convention ``name{shard=i}``; the
        aggregate gauges keep the unsharded names (``upf_u.forwarded``,
        ``sessions.active`` is the core's) so existing dashboards and
        the fig13/fig14 regressions read the same keys.
        """
        for shard in self.shards:
            index = shard.shard_id
            registry.gauge(f"sessions{{shard={index}}}").set_function(
                lambda table=shard.table: len(table)
            )
            registry.gauge(f"dispatched{{shard={index}}}").set_function(
                lambda i=index: self.dispatched[i]
            )
            cache = shard.upf_u.flow_cache
            if cache is not None:
                registry.gauge(
                    f"flow_cache_hits{{shard={index}}}"
                ).set_function(lambda c=cache: c.hits)
                registry.gauge(
                    f"flow_cache_hit_rate{{shard={index}}}"
                ).set_function(lambda c=cache: c.hit_rate)
            # Per-shard hot-slab occupancy: each shard's table owns an
            # independent HotSessionStore, so slab residency (the
            # working-set the cache-cost model prices) is per shard.
            shard.table.hot_store.register_into(
                registry, prefix=f"hot_store{{shard={index}}}"
            )
            shard.upf_u.stats.register_into(
                registry, prefix=f"{prefix}{{shard={index}}}"
            )
            self._latency[index] = registry.histogram(
                f"{prefix}.latency_s{{shard={index}}}"
            )
        for spec in fields(ForwardingStats):
            registry.gauge(f"{prefix}.{spec.name}").set_function(
                lambda name=spec.name: getattr(self.stats, name)
            )
        registry.gauge(f"{prefix}.forwarded").set_function(
            lambda: self.stats.forwarded
        )
        registry.gauge(f"{prefix}.dropped").set_function(
            lambda: self.stats.dropped
        )
        registry.gauge("flow_cache.hit_rate").set_function(
            lambda: self.flow_cache_hit_rate
        )
        registry.gauge("shard.count").set_function(
            lambda: len(self.shards)
        )
        registry.gauge("shard.load_skew").set_function(self.load_skew)
        registry.gauge("hot_store.live").set_function(
            lambda: sum(len(s.table.hot_store) for s in self.shards)
        )


class ShardedUPFControlPlane(UPFControlPlane):
    """The sharded deployment's N4 endpoint.

    Inherits the full PFCP state machine; the only delta is TEID
    allocation: CHOOSE F-TEIDs are steered into the session's UE-IP
    bucket so UL and DL traffic co-locate on one shard (the
    ``ShardedSessionTable.add`` invariant).
    """

    def __init__(self, user_plane: ShardedUserPlane, **kwargs):
        super().__init__(
            user_plane.sessions, upf_u=user_plane, **kwargs
        )
        self.router = user_plane.router

    def allocate_teid(self, ue_ip: int = 0) -> int:
        return self.router.steer_teid(ue_ip, next(self._teid_counter))
