"""Network slicing support (§4).

"Network slices can be supported by logically assigning different
service IDs" — each slice (S-NSSAI) maps to a service-id range on the
shared-memory platform and, at deployment scale, to the 5GC units that
serve it.  A slice-aware selector (the NSSF's job) picks the unit for a
new UE session from its subscribed slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .lb import UEAwareLoadBalancer, UnitHandle

__all__ = ["SNssai", "NetworkSlice", "SliceManager"]


@dataclass(frozen=True)
class SNssai:
    """Single Network Slice Selection Assistance Information."""

    sst: int  # slice/service type: 1 eMBB, 2 URLLC, 3 mIoT
    sd: str = "000000"  # slice differentiator

    def __str__(self) -> str:
        return f"{self.sst}-{self.sd}"


@dataclass
class NetworkSlice:
    """One slice: its S-NSSAI, service-id block and member units."""

    snssai: SNssai
    #: Service ids [base, base+width) reserved on the NF platform.
    service_id_base: int = 0
    service_id_width: int = 16
    #: The LB managing this slice's 5GC units.
    balancer: UEAwareLoadBalancer = field(
        default_factory=UEAwareLoadBalancer
    )

    def service_id(self, function_index: int) -> int:
        """The platform service id of the slice's n-th NF."""
        if not 0 <= function_index < self.service_id_width:
            raise ValueError(
                f"function index {function_index} outside slice block"
            )
        return self.service_id_base + function_index


class SliceManager:
    """Registry + selection across network slices."""

    def __init__(self, service_id_width: int = 16):
        self.service_id_width = service_id_width
        self._slices: Dict[SNssai, NetworkSlice] = {}
        self._next_base = 1
        #: supi -> subscribed slices.
        self._subscriptions: Dict[str, List[SNssai]] = {}

    # ------------------------------------------------------------------
    def create_slice(self, snssai: SNssai) -> NetworkSlice:
        if snssai in self._slices:
            raise ValueError(f"slice {snssai} already exists")
        network_slice = NetworkSlice(
            snssai=snssai,
            service_id_base=self._next_base,
            service_id_width=self.service_id_width,
        )
        self._next_base += self.service_id_width
        self._slices[snssai] = network_slice
        return network_slice

    def slice_for(self, snssai: SNssai) -> NetworkSlice:
        if snssai not in self._slices:
            raise KeyError(f"unknown slice {snssai}")
        return self._slices[snssai]

    def slices(self) -> List[NetworkSlice]:
        return list(self._slices.values())

    # ------------------------------------------------------------------
    def subscribe(self, supi: str, snssai: SNssai) -> None:
        """Record a UE's slice subscription (UDM-side data)."""
        self.slice_for(snssai)  # must exist
        self._subscriptions.setdefault(supi, [])
        if snssai not in self._subscriptions[supi]:
            self._subscriptions[supi].append(snssai)

    def subscribed(self, supi: str) -> List[SNssai]:
        return list(self._subscriptions.get(supi, []))

    def select(
        self, supi: str, requested: Optional[SNssai] = None
    ) -> Tuple[NetworkSlice, Optional[UnitHandle]]:
        """NSSF-style selection: pick the slice and a unit within it.

        Uses the requested S-NSSAI when the UE subscribes to it, else
        the UE's default (first subscribed) slice.
        """
        subscriptions = self._subscriptions.get(supi)
        if not subscriptions:
            raise KeyError(f"{supi}: no slice subscriptions")
        if requested is not None:
            if requested not in subscriptions:
                raise PermissionError(
                    f"{supi} is not subscribed to slice {requested}"
                )
            chosen = requested
        else:
            chosen = subscriptions[0]
        network_slice = self.slice_for(chosen)
        unit = network_slice.balancer.assign(supi)
        return network_slice, unit

    # ------------------------------------------------------------------
    def service_blocks_disjoint(self) -> bool:
        """Invariant: no two slices share platform service ids."""
        ranges = sorted(
            (s.service_id_base, s.service_id_base + s.service_id_width)
            for s in self._slices.values()
        )
        return all(
            previous_end <= next_start
            for (_s, previous_end), (next_start, _e) in zip(
                ranges, ranges[1:]
            )
        )
