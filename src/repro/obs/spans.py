"""Spans, trace-context propagation, and the global tracer switch.

A :class:`Span` is one timed interval on the simulation clock — a
procedure, an SBI/PFCP/NGAP message in flight, a descriptor's residency
in a ring, an NF handling a descriptor, a cost component inside a
message.  Spans form a tree via ``parent_id``; one instrumented run of
a 3GPP procedure yields its full causal tree with per-NF,
per-interface, and per-cost-component timing (Figs 6 and 8 fall out of
a single trace).

Tracing follows the sanitizer's opt-in pattern
(:mod:`repro.analysis.sanitizer`): a module-global instance that hot
paths consult with ``active()`` — ``None`` means disabled and costs one
attribute load.  All timestamps come from ``env.now`` (the R001 lint
bans wall-clock reads), and the tracer never creates simulation events,
so enabling it cannot perturb event ordering or any latency result.

Context rides *along* objects, not inside them: descriptors and
messages are never mutated (the zero-copy sanitizer would object).
Instead the tracer keeps an ``id()``-keyed side table mapping live
objects to the span that currently explains them — ``attach`` at the
send/enqueue site, ``context_of`` at the dequeue/handle site.

Concurrent procedures interleave arbitrarily in the event loop, so the
"current span" cannot be a single global stack.  :func:`traced` wraps a
procedure generator so that, on every resumption, the tracer's ambient
stack is swapped to that procedure's own stack — each procedure sees
only its own lineage, however the scheduler interleaves them.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

__all__ = [
    "Span",
    "Tracer",
    "tracing",
    "enable",
    "disable",
    "active",
    "traced",
]


class Span:
    """One timed interval on the sim clock, part of a causal tree."""

    __slots__ = ("span_id", "name", "category", "start", "end",
                 "parent_id", "attrs")

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        start: float,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        """Sim-time extent; an unfinished span reads as zero-length."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:
        tail = f"..{self.end:.6f}" if self.end is not None else ".."
        return (
            f"Span(#{self.span_id} {self.name!r} [{self.category}] "
            f"{self.start:.6f}{tail} parent={self.parent_id})"
        )


class Tracer:
    """Collects spans and propagates trace context through the platform.

    The tracer is pure bookkeeping: it reads ``env.now`` and appends to
    lists.  It owns

    * the flat ordered list of all spans (``spans``),
    * the ambient span stack (swapped per-procedure by :func:`traced`),
    * the ``id()``-keyed context side table linking in-flight
      descriptors/messages to the span that explains them, and
    * per-ring enqueue timestamps so dequeues can emit residency spans.
    """

    def __init__(self, env: Any):
        self.env = env
        self.spans: List[Span] = []
        self._next_id = 1
        self._stack: List[Span] = []
        self._context: Dict[int, Span] = {}
        self._ring_pending: Dict[int, Tuple[Optional[Span], float, str]] = {}
        self._index: Dict[int, Span] = {}

    # -- span lifecycle -----------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """Top of the ambient stack — the default parent for new spans."""
        return self._stack[-1] if self._stack else None

    def start_span(
        self,
        name: str,
        category: str = "span",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        if parent is None:
            parent = self.current
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start=self.env.now,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._index[span.span_id] = span
        return span

    def end_span(self, span: Span, **attrs: Any) -> Span:
        span.end = self.env.now
        if attrs:
            span.attrs.update(attrs)
        return span

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "span",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record a fully formed interval (post-hoc breakdowns)."""
        span = self.start_span(name, category=category, parent=parent, **attrs)
        span.start = start
        span.end = end
        return span

    def instant(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """A zero-length marker (Chrome-trace instant event)."""
        span = self.start_span(name, category="instant", parent=parent, **attrs)
        span.end = span.start
        return span

    # -- ambient stack (procedure scoping) ----------------------------------
    def push(self, span: Span) -> None:
        self._stack.append(span)

    def pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span stack corruption: popping {span!r}, "
                f"top is {self._stack[-1]!r}" if self._stack
                else f"span stack corruption: popping {span!r} off empty stack"
            )
        self._stack.pop()

    def swap_stack(self, stack: List[Span]) -> List[Span]:
        """Install ``stack`` as the ambient stack; returns the old one."""
        old = self._stack
        self._stack = stack
        return old

    def begin(self, name: str, category: str = "step", **attrs: Any) -> Span:
        """Start a span parented to ``current`` and make it current."""
        span = self.start_span(name, category=category, **attrs)
        self.push(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """End a span opened with :meth:`begin`."""
        self.pop(span)
        return self.end_span(span, **attrs)

    # -- context propagation -------------------------------------------------
    def attach(self, obj: Any, span: Span) -> None:
        """Associate ``obj`` (descriptor/message) with ``span``."""
        self._context[id(obj)] = span

    def context_of(self, obj: Any) -> Optional[Span]:
        return self._context.get(id(obj))

    def detach(self, obj: Any) -> Optional[Span]:
        return self._context.pop(id(obj), None)

    # -- platform hook points ------------------------------------------------
    # Called from Ring.enqueue/dequeue (which have no env reference —
    # the tracer supplies the clock).  A descriptor's ring residency
    # becomes a "ring-wait" span parented to whatever context the
    # descriptor carried in, and the residency span becomes the
    # descriptor's context on the way out, so an NF handle span nests
    # under it.
    def on_ring_enqueue(self, ring_name: str, descriptor: Any) -> None:
        parent = self._context.get(id(descriptor)) or self.current
        self._ring_pending[id(descriptor)] = (parent, self.env.now, ring_name)

    def on_ring_dequeue(self, ring_name: str, descriptor: Any) -> None:
        pending = self._ring_pending.pop(id(descriptor), None)
        if pending is None:
            return
        parent, enqueued_at, enq_ring = pending
        span = self.add_span(
            f"ring-wait:{enq_ring}",
            start=enqueued_at,
            end=self.env.now,
            category="ring",
            parent=parent,
            ring=enq_ring,
        )
        self._context[id(descriptor)] = span

    def on_ring_clear(self, ring_name: str, descriptors: List[Any]) -> None:
        for descriptor in descriptors:
            pending = self._ring_pending.pop(id(descriptor), None)
            if pending is None:
                continue
            parent, enqueued_at, enq_ring = pending
            self.add_span(
                f"ring-drop:{enq_ring}",
                start=enqueued_at,
                end=self.env.now,
                category="ring",
                parent=parent,
                ring=enq_ring,
                dropped=True,
            )
            self._context.pop(id(descriptor), None)

    # -- queries -------------------------------------------------------------
    def get(self, span_id: int) -> Optional[Span]:
        return self._index.get(span_id)

    def roots(self) -> List[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(
        self,
        name: Optional[str] = None,
        category: Optional[str] = None,
        within: Optional[Span] = None,
    ) -> List[Span]:
        """Spans matching name/category, optionally under ``within``."""
        if within is not None:
            member_ids = {within.span_id}
            for span in self.spans:  # spans list is in creation order
                if span.parent_id in member_ids:
                    member_ids.add(span.span_id)
            pool = [s for s in self.spans if s.span_id in member_ids]
        else:
            pool = self.spans
        return [
            span
            for span in pool
            if (name is None or span.name == name)
            and (category is None or span.category == category)
        ]

    def walk(
        self, span: Span, depth: int = 0
    ) -> Iterator[Tuple[Span, int]]:
        """Depth-first (span, depth) pairs of the subtree at ``span``."""
        yield span, depth
        for child in self.children(span):
            yield from self.walk(child, depth + 1)


# ---------------------------------------------------------------------------
# Global switch — mirrors repro.analysis.sanitizer.
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def enable(env: Any) -> Tracer:
    """Install and return a fresh tracer clocked by ``env``."""
    global _ACTIVE
    _ACTIVE = Tracer(env)
    return _ACTIVE


def disable() -> Optional[Tracer]:
    """Remove the active tracer (keeps its spans) and return it."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active() -> Optional[Tracer]:
    """The tracer hot paths should report to, or None when disabled."""
    return _ACTIVE


@contextmanager
def tracing(env: Any) -> Iterator[Tracer]:
    """``with tracing(env) as tr: ...`` — scoped opt-in, like
    :func:`repro.analysis.sanitizer.sanitized`."""
    tracer = enable(env)
    try:
        yield tracer
    finally:
        if _ACTIVE is tracer:
            disable()


# ---------------------------------------------------------------------------
# Procedure wrapping
# ---------------------------------------------------------------------------

def traced(name: str, category: str = "procedure") -> Callable:
    """Decorate a generator method so each call runs under a root span.

    The wrapper gives the procedure its own span stack and swaps it in
    around every ``send``/``throw`` into the inner generator, then
    restores the previous ambient stack before yielding back to the
    scheduler.  Concurrent procedures therefore never see each other's
    spans as parents, and semantic child spans opened with
    ``Tracer.begin`` stay current across yields within one procedure.

    With tracing disabled the original generator is returned untouched
    — zero overhead, identical object identity semantics.
    """

    def decorator(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self: Any, *args: Any, **kwargs: Any):
            generator = fn(self, *args, **kwargs)
            tracer = active()
            if tracer is None:
                return generator
            return _run_traced(tracer, name, category, generator, args, kwargs)

        return wrapper

    return decorator


def _procedure_attrs(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Dict[str, Any]:
    attrs: Dict[str, Any] = {}
    for value in args:
        supi = getattr(value, "supi", None)
        if isinstance(supi, str):
            attrs["ue"] = supi
            break
    for key, value in kwargs.items():
        if isinstance(value, (str, int, float, bool)):
            attrs[key] = value
    return attrs


def _run_traced(
    tracer: Tracer,
    name: str,
    category: str,
    generator: Any,
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
):
    root = tracer.start_span(
        name, category=category, **_procedure_attrs(args, kwargs)
    )
    stack: List[Span] = [root]
    to_send: Any = None
    to_throw: Optional[BaseException] = None
    while True:
        previous = tracer.swap_stack(stack)
        try:
            if to_throw is not None:
                pending, to_throw = to_throw, None
                item = generator.throw(pending)
            else:
                item = generator.send(to_send)
        except StopIteration as stop:
            tracer.end_span(root)
            return stop.value
        except BaseException:
            tracer.end_span(root, error=True)
            raise
        finally:
            tracer.swap_stack(previous)
        try:
            to_send = yield item
        except BaseException as exc:  # forwarded into the procedure
            to_throw = exc
