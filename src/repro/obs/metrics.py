"""Metric primitives: counters, gauges, fixed-bucket histograms.

The paper's evaluation is built out of a handful of aggregate shapes —
monotonic tallies (messages delivered, packets dropped), point-in-time
levels (ring occupancy, buffered packets), and latency distributions
summarised as p50/p99/max.  This module provides exactly those three
primitives plus a :class:`MetricsRegistry` to collect them, so core /
cp / up / resiliency modules stop growing hand-rolled ledgers.

Everything here is plain arithmetic on plain Python objects: no
wall-clock reads, no simulation events, no I/O.  Recording a sample is
zero-cost in *sim time* by construction — only the caller's real CPU
pays.  Timestamps, where needed, are supplied by the caller from
``env.now``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]


#: Log-spaced bucket bounds (seconds) spanning 1 µs .. 10 s — wide
#: enough for everything from a shared-memory descriptor pass (~µs) to
#: a 3GPP re-attachment (~hundreds of ms).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(mantissa * 10.0 ** exponent, 12)
    for exponent in range(-6, 1)
    for mantissa in (1.0, 2.0, 5.0)
) + (10.0,)


class Counter:
    """A monotonically increasing tally.

    ``inc`` with a negative amount is rejected: anything that can go
    down is a :class:`Gauge`.  ``reset`` exists for harnesses that
    reuse one object across runs.
    """

    __slots__ = ("name", "description", "_value")

    kind = "counter"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self._value += amount

    def reset(self) -> None:
        self._value = 0

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {"kind": self.kind, "value": self._value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A level that can move both ways, or a live view over other state.

    A gauge either stores a value (``set`` / ``add`` / ``set_max``) or
    wraps a zero-argument callable (``set_function``) so existing
    attributes — ``len(ring)``, a dataclass field — can be exported
    without duplicating state.  The callable form is what lets legacy
    APIs stay *thin views* over the registry rather than second copies.
    """

    __slots__ = ("name", "description", "_value", "_fn")

    kind = "gauge"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._value: float = 0
        self._fn: Optional[Callable[[], float]] = None

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def add(self, delta: float) -> None:
        self._fn = None
        self._value += delta

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-watermark semantics)."""
        self._fn = None
        if value > self._value:
            self._value = value

    def set_function(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    def to_dict(self) -> Dict[str, Union[str, float]]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A fixed-bucket histogram with interpolated quantiles.

    Buckets are defined by their upper bounds; a final overflow bucket
    catches everything above the last bound.  ``quantile`` linearly
    interpolates inside the winning bucket, and — unlike
    ``traffic.measurement.percentile`` before this subsystem — returns
    ``nan`` on an empty histogram instead of raising, so empty
    measurement windows degrade gracefully.

    Exact ``min``/``max`` are tracked on the side so ``quantile(1.0)``
    and summary tables report true extremes, not bucket bounds.
    """

    __slots__ = ("name", "description", "_bounds", "_counts", "_count",
                 "_sum", "_min", "_max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name}: need at least one bucket bound")
        self.name = name
        self.description = description
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ----------------------------------------------------------
    def observe(self, value: float) -> None:
        self._counts[bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def reset(self) -> None:
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- summary ------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    def quantile(self, fraction: float) -> float:
        """The value at ``fraction`` (0..1) of the distribution.

        Interpolates linearly within the bucket that contains the
        target rank; the extremes are clamped to the exact observed
        min/max.  Returns ``nan`` when no samples were observed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        if self._count == 0:
            return math.nan
        if fraction == 0.0:
            return self._min
        if fraction == 1.0:
            return self._max
        target = fraction * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                low = self._bounds[index - 1] if index > 0 else 0.0
                high = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else self._max
                )
                # Every sample in this bucket also lies in [min, max],
                # so intersecting tightens the estimate for edge buckets.
                low = max(low, self._min)
                high = min(high, self._max)
                if high <= low or bucket_count == 1:
                    return high
                return low + (high - low) * (target - previous) / bucket_count
        return self._max

    def p50(self) -> float:
        return self.quantile(0.50)

    def p99(self) -> float:
        return self.quantile(0.99)

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs; the overflow bound is +inf."""
        out = list(zip(self._bounds, self._counts))
        out.append((math.inf, self._counts[-1]))
        return out

    def to_dict(self) -> Dict[str, Union[str, int, float]]:
        return {
            "kind": self.kind,
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50(),
            "p99": self.p99(),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self._count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat, name-keyed collection of metrics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same object, and asking for an
    existing name with a different kind raises — one name, one truth.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory: Callable[[], Metric]) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, description))
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str, description: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, description))
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} is a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, description, buckets)
        )
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} is a {metric.kind}, not a histogram")
        return metric

    def register(self, metric: Metric) -> Metric:
        """Adopt an externally constructed metric (e.g. a Ring's own)."""
        existing = self._metrics.get(metric.name)
        if existing is not None and existing is not metric:
            raise ValueError(f"metric name already registered: {metric.name}")
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def collect(self) -> Dict[str, Dict[str, Union[str, int, float]]]:
        """Snapshot every metric as plain dicts, sorted by name."""
        return {name: self._metrics[name].to_dict() for name in self.names()}

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
