"""Derive the paper's latency breakdowns from a span tree.

Fig 6 splits one SBI message exchange into serialize / protocol
traversal / deserialize; Fig 8 splits a UE event across interfaces
(SBI, N4, NGAP, radio).  With tracing on, both decompositions are
queries over one trace instead of per-experiment bookkeeping:

* every ``category="message"`` span carries ``channel``/``interface``
  attrs and child cost-component spans named ``serialize`` /
  ``protocol`` / ``deserialize`` / ``handler`` (emitted post-hoc by
  ``MessageBus`` from the :class:`~repro.core.costs.CostModel`, no
  extra simulation events), and
* every procedure root span covers exactly one 3GPP event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .spans import Span, Tracer

__all__ = [
    "MessageBreakdown",
    "message_breakdowns",
    "interface_breakdown",
    "COST_COMPONENTS",
]

#: Child-span names a message span decomposes into (Fig 6 components
#: plus the receiver's handler time).
COST_COMPONENTS = ("serialize", "protocol", "deserialize", "handler")


@dataclass
class MessageBreakdown:
    """One message span resolved into its cost components (seconds)."""

    name: str
    source: str
    destination: str
    channel: str
    interface: str
    start: float
    total: float
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def transport(self) -> float:
        """Serialize + protocol + deserialize — the Fig 6 'message cost'."""
        return sum(
            self.components.get(part, 0.0)
            for part in ("serialize", "protocol", "deserialize")
        )


def message_breakdowns(
    tracer: Tracer,
    within: Optional[Span] = None,
    name: Optional[str] = None,
) -> List[MessageBreakdown]:
    """Every (finished) message span as a :class:`MessageBreakdown`."""
    out: List[MessageBreakdown] = []
    for span in tracer.find(category="message", within=within):
        if not span.finished:
            continue
        if name is not None and span.name != name:
            continue
        components = {
            child.name: child.duration
            for child in tracer.children(span)
            if child.name in COST_COMPONENTS
        }
        out.append(
            MessageBreakdown(
                name=span.name,
                source=str(span.attrs.get("source", "")),
                destination=str(span.attrs.get("destination", "")),
                channel=str(span.attrs.get("channel", "")),
                interface=str(span.attrs.get("interface", "")),
                start=span.start,
                total=span.duration,
                components=components,
            )
        )
    return out


def interface_breakdown(
    tracer: Tracer, root: Span
) -> Dict[str, float]:
    """Wall time of one procedure bucketed by interface (Fig 8 style).

    Message spans under ``root`` are summed per ``interface`` attr
    (``sbi`` / ``n4`` / ``ngap``), radio legs per their own category,
    and whatever the components do not cover is reported as ``other``
    (NF processing gaps, ring waits already inside message time, etc.).
    Buckets are sim-time sums of span durations, so overlapping
    messages (pipelined exchanges) can legitimately sum past the
    procedure duration; ``other`` is clamped at zero.
    """
    totals: Dict[str, float] = {}
    for span in tracer.find(category="message", within=root):
        bucket = str(span.attrs.get("interface") or "unknown")
        totals[bucket] = totals.get(bucket, 0.0) + span.duration
    for span in tracer.find(category="radio", within=root):
        totals["radio"] = totals.get("radio", 0.0) + span.duration
    accounted = sum(totals.values())
    totals["other"] = max(0.0, root.duration - accounted)
    totals["total"] = root.duration
    return totals
