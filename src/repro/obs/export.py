"""Exporters: Chrome-trace JSON for spans, JSON/CSV for metrics.

The span exporter emits the ``chrome://tracing`` / Perfetto *trace
event format* (the JSON-object form with a ``traceEvents`` array):
finished spans become complete events (``ph: "X"``) with microsecond
``ts``/``dur``, instants become ``ph: "i"``, and each root span gets
its own thread id with a metadata (``ph: "M"``) ``thread_name`` event
so every procedure renders on its own track.  Sim time maps directly
onto trace time: 1 simulated second = 1e6 trace microseconds.

``validate_chrome_trace`` is a deliberately strict structural check
used by tests and the CI smoke job — it returns a list of problems
(empty means the document loads cleanly in the trace viewers).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .spans import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_to_json",
    "metrics_to_csv",
    "render_tree",
]

_US = 1e6  # seconds -> trace microseconds


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _track_of(span: Span, tracks: Dict[int, int]) -> int:
    """Thread id = the span's root ancestor's track number."""
    return tracks.get(span.span_id, 1)


def chrome_trace(tracer: Tracer, process_name: str = "repro-sim") -> Dict[str, Any]:
    """Serialize the tracer's spans as a Chrome-trace JSON object."""
    # Assign one track (tid) per root span, in creation order.
    tracks: Dict[int, int] = {}
    names: Dict[int, str] = {}
    next_track = 1
    for span in tracer.spans:
        if span.parent_id is None:
            tracks[span.span_id] = next_track
            names[next_track] = span.name
            next_track += 1
        else:
            tracks[span.span_id] = tracks.get(span.parent_id, 1)

    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for track, label in sorted(names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": track,
                "ts": 0,
                "args": {"name": f"{track}:{label}"},
            }
        )
    for span in tracer.spans:
        tid = _track_of(span, tracks)
        args = {key: _json_safe(value) for key, value in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.category == "instant":
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "i",
                    "ts": span.start * _US,
                    "pid": 1,
                    "tid": tid,
                    "s": "t",
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": span.duration * _US,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, tracer: Tracer, process_name: str = "repro-sim"
) -> Dict[str, Any]:
    doc = chrome_trace(tracer, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1)
    return doc


_KNOWN_PHASES = {"X", "B", "E", "i", "I", "M", "C", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural validation against the trace-event format.

    Returns human-readable problems; an empty list means valid.
    Accepts either the JSON-object form (``{"traceEvents": [...]}``)
    or the bare JSON-array form.
    """
    problems: List[str] = []
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' array"]
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"expected JSON object or array, got {type(doc).__name__}"]

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            problems.append(f"{where}: bad or missing 'ph': {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: 'name' must be a string")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        for key in ("pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{where}: {key!r} must be an integer")
        if phase == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                problems.append(
                    f"{where}: complete event needs non-negative 'dur'"
                )
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


# ---------------------------------------------------------------------------
# Metrics dumps
# ---------------------------------------------------------------------------

def metrics_to_json(registry: MetricsRegistry) -> str:
    """Flat JSON document: ``{name: {kind, value | summary...}}``."""
    return json.dumps(registry.collect(), indent=2, sort_keys=True)


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Long-form CSV: one row per (metric, field)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["metric", "kind", "field", "value"])
    for name, snapshot in registry.collect().items():
        kind = snapshot["kind"]
        for field, value in snapshot.items():
            if field == "kind":
                continue
            writer.writerow([name, kind, field, value])
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Terminal rendering
# ---------------------------------------------------------------------------

def _format_duration(seconds: float) -> str:
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def render_tree(
    tracer: Tracer,
    root: Optional[Span] = None,
    max_depth: Optional[int] = None,
) -> str:
    """ASCII rendering of a span tree (all roots when ``root`` is None)."""
    lines: List[str] = []
    roots = [root] if root is not None else tracer.roots()
    for top in roots:
        for span, depth in tracer.walk(top):
            if max_depth is not None and depth > max_depth:
                continue
            indent = "  " * depth
            marker = "+-" if depth else ""
            extras = ""
            interesting = {
                key: value
                for key, value in span.attrs.items()
                if key in ("channel", "interface", "source", "destination",
                           "ue", "released", "outcome", "nf")
            }
            if interesting:
                extras = "  {" + ", ".join(
                    f"{key}={value}" for key, value in sorted(interesting.items())
                ) + "}"
            at = f"@{span.start * 1e3:.3f}ms"
            lines.append(
                f"{indent}{marker}{span.name} [{span.category}] "
                f"{_format_duration(span.duration)} {at}{extras}"
            )
    return "\n".join(lines)
