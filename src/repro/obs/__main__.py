"""``python -m repro.obs`` — render a traced 3GPP procedure.

Runs the full UE lifecycle (registration → PDU session → N2 handover →
idle → paging) on a chosen system configuration with tracing enabled,
then renders the requested procedure's span tree, the Fig 6-style
per-message cost breakdown, and the Fig 8-style interface breakdown.

Examples
--------
::

    python -m repro.obs                               # registration on l25gc
    python -m repro.obs --procedure handover --system free5gc
    python -m repro.obs --chrome-trace trace.json     # open in ui.perfetto.dev
    python -m repro.obs --metrics metrics.json
    python -m repro.obs --validate trace.json         # CI schema check

This is a CLI module: ``print`` is its output channel (R007 exempts
``__main__`` modules).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import breakdown as _breakdown
from . import export as _export
from . import spans as _spans

#: CLI name -> root span name emitted by the traced procedures.
PROCEDURES = {
    "registration": "registration",
    "session": "session-request",
    "handover": "handover",
    "paging": "paging",
}


def _run_lifecycle(system: str):
    from ..cp.core5g import FiveGCore, SystemConfig
    from ..cp.procedures import ProcedureRunner
    from ..sim.engine import Environment

    factories = {
        "free5gc": SystemConfig.free5gc,
        "onvm-upf": SystemConfig.onvm_upf,
        "l25gc": SystemConfig.l25gc,
    }
    env = Environment()
    core = FiveGCore(env, factories[system]())
    runner = ProcedureRunner(core)
    tracer = _spans.enable(env)
    try:
        ue = core.add_ue("imsi-208930000000003")

        def lifecycle():
            yield from runner.register_ue(ue, gnb_id=1)
            yield from runner.establish_session(ue, pdu_session_id=1)
            yield from runner.handover(ue, target_gnb_id=2)
            yield from runner.release_to_idle(ue)
            yield from runner.page_ue(ue)

        env.process(lifecycle())
        env.run()
    finally:
        _spans.disable()
    return tracer, core


def _print_breakdowns(tracer: "_spans.Tracer", root: "_spans.Span") -> None:
    rows = _breakdown.message_breakdowns(tracer, within=root)
    if rows:
        print()
        print("per-message cost components (us):")
        header = f"{'message':<34} {'iface':<6} {'serialize':>9} "
        header += f"{'protocol':>9} {'deserial.':>9} {'handler':>9} {'total':>9}"
        print(header)
        for row in rows:
            print(
                f"{row.name[:34]:<34} {row.interface:<6} "
                f"{row.components.get('serialize', 0.0) * 1e6:>9.2f} "
                f"{row.components.get('protocol', 0.0) * 1e6:>9.2f} "
                f"{row.components.get('deserialize', 0.0) * 1e6:>9.2f} "
                f"{row.components.get('handler', 0.0) * 1e6:>9.2f} "
                f"{row.total * 1e6:>9.2f}"
            )
    print()
    print("interface breakdown (ms):")
    for bucket, seconds in sorted(
        _breakdown.interface_breakdown(tracer, root).items()
    ):
        print(f"  {bucket:<10} {seconds * 1e3:8.3f}")


def _validate(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = _export.validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    count = len(doc["traceEvents"] if isinstance(doc, dict) else doc)
    print(f"{path}: valid trace-event JSON ({count} events)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a traced 3GPP procedure from the L25GC reproduction.",
    )
    parser.add_argument(
        "--procedure",
        choices=sorted(PROCEDURES) + ["all"],
        default="registration",
    )
    parser.add_argument(
        "--system",
        choices=("free5gc", "onvm-upf", "l25gc"),
        default="l25gc",
    )
    parser.add_argument("--chrome-trace", metavar="PATH")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write a metrics dump (.json or .csv)")
    parser.add_argument("--max-depth", type=int, default=None)
    parser.add_argument("--no-breakdown", action="store_true")
    parser.add_argument(
        "--validate", metavar="PATH",
        help="validate an existing Chrome-trace JSON file and exit",
    )
    args = parser.parse_args(argv)

    if args.validate:
        return _validate(args.validate)

    tracer, core = _run_lifecycle(args.system)

    wanted: List[str] = (
        sorted(set(PROCEDURES.values()))
        if args.procedure == "all"
        else [PROCEDURES[args.procedure]]
    )
    shown = 0
    for root in tracer.roots():
        if root.name not in wanted:
            continue
        shown += 1
        print(f"== {root.name} on {args.system} "
              f"({root.duration * 1e3:.3f} ms) ==")
        print(_export.render_tree(tracer, root, max_depth=args.max_depth))
        if not args.no_breakdown:
            _print_breakdowns(tracer, root)
        print()
    if shown == 0:
        print(f"no root span found for {wanted}", file=sys.stderr)
        return 1

    if args.chrome_trace:
        doc = _export.write_chrome_trace(args.chrome_trace, tracer)
        print(f"wrote {args.chrome_trace} "
              f"({len(doc['traceEvents'])} trace events)")
    if args.metrics:
        registry = core.metrics_registry()
        if args.metrics.endswith(".csv"):
            payload = _export.metrics_to_csv(registry)
        else:
            payload = _export.metrics_to_json(registry)
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {args.metrics} ({len(registry)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
