"""Observability subsystem: spans, metrics, exporters.

``repro.obs`` turns the per-experiment latency bookkeeping into a
first-class measurement layer:

* :mod:`repro.obs.spans` — a :class:`Tracer` whose spans ride along
  SBI/PFCP/NGAP descriptors through ``MessageBus`` / ``Ring`` /
  ``NetworkFunction._run``; one traced run yields the full causal tree
  of a 3GPP procedure with per-NF, per-interface, and
  per-cost-component timing.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms behind a :class:`MetricsRegistry`; platform tallies like
  ``MessageBus.lost`` and ``Ring.stats()`` are thin views over these.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON for spans,
  flat JSON/CSV for metrics, plus an ASCII tree renderer.
* :mod:`repro.obs.breakdown` — Fig 6 (serialize/protocol/deserialize)
  and Fig 8 (per-interface) decompositions as queries over a trace.

Tracing is **off by default** and opt-in via the context manager::

    from repro import obs

    with obs.tracing(env) as tracer:
        env.process(runner.register_ue(ue, gnb_id=1))
        env.run()
    print(obs.render_tree(tracer))

It reads only ``env.now`` (never the wall clock — R001) and creates no
simulation events, so enabling it cannot change any latency result.
``python -m repro.obs`` renders a procedure trace from the terminal.
"""

from .breakdown import (
    COST_COMPONENTS,
    MessageBreakdown,
    interface_breakdown,
    message_breakdowns,
)
from .export import (
    chrome_trace,
    metrics_to_csv,
    metrics_to_json,
    render_tree,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, Tracer, active, disable, enable, traced, tracing

__all__ = [
    # spans
    "Span",
    "Tracer",
    "tracing",
    "enable",
    "disable",
    "active",
    "traced",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    # export
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_to_json",
    "metrics_to_csv",
    "render_tree",
    # breakdown
    "COST_COMPONENTS",
    "MessageBreakdown",
    "message_breakdowns",
    "interface_breakdown",
]
