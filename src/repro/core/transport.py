"""Message-level inter-NF transports.

The control-plane procedures exchange typed messages over a
:class:`MessageBus`.  Each named endpoint (an NF) registers a handler;
``send`` schedules delivery after the one-way cost of the configured
channel (HTTP/JSON, UDP/PFCP, shared memory, SCTP...) from the
:class:`~repro.core.costs.CostModel`, then charges the receiver's
handler-processing time before invoking the handler.

Every delivery is recorded in :attr:`MessageBus.log`, which the
experiment harnesses mine for per-message latency (Figs 6, 7, 9) and
message counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..analysis import sanitizer as _sanitizer
from ..obs import spans as _tracing
from ..obs.metrics import MetricsRegistry
from ..sim.engine import Environment, Event
from .costs import DEFAULT_COSTS, Channel, CostModel

__all__ = ["MessageRecord", "DropRecord", "MessageBus", "Endpoint"]


@dataclass
class MessageRecord:
    """One delivered control-plane message, for offline analysis."""

    source: str
    destination: str
    name: str
    channel: Channel
    size: int
    sent_at: float
    delivered_at: float
    handler_time: float

    @property
    def transport_latency(self) -> float:
        """Time on the wire/stack, excluding the receiver's handler."""
        return self.delivered_at - self.sent_at

    @property
    def total_latency(self) -> float:
        """Transport plus handler — the paper's 'message latency'."""
        return self.transport_latency + self.handler_time


@dataclass
class DropRecord:
    """One message the bus could not deliver, with the reason why.

    ``reason`` is ``"unknown-endpoint"`` when nothing ever registered
    under the destination name and ``"endpoint-down"`` when a
    registered endpoint was marked dead (crashed NF) — failure-injection
    experiments need to tell these apart.
    """

    source: str
    destination: str
    name: str
    reason: str
    at: float


@dataclass
class Endpoint:
    """A registered message receiver."""

    name: str
    handler: Callable[[Any, "MessageBus"], Optional[float]]
    #: When False the endpoint silently discards messages (crashed NF).
    alive: bool = True


class MessageBus:
    """Delivers typed messages between named NF endpoints.

    Parameters
    ----------
    env:
        Simulation environment.
    costs:
        The cost model supplying per-channel latencies.
    default_channel:
        Channel used when ``send`` does not specify one; this is the
        single switch that turns a free5GC deployment (HTTP_JSON) into
        an L25GC one (SHARED_MEMORY).
    """

    def __init__(
        self,
        env: Environment,
        costs: CostModel = DEFAULT_COSTS,
        default_channel: Channel = Channel.HTTP_JSON,
    ):
        self.env = env
        self.costs = costs
        self.default_channel = default_channel
        self.endpoints: Dict[str, Endpoint] = {}
        self.log: List[MessageRecord] = []
        self.drops: List[DropRecord] = []
        #: Source of truth for the bus's tallies; :attr:`lost` and the
        #: ``drops`` list are views/records over these counters.
        self.metrics = MetricsRegistry()
        self._delivered = self.metrics.counter(
            "bus.delivered", "messages delivered to a live endpoint"
        )
        self._lost = self.metrics.counter(
            "bus.lost", "messages the bus could not deliver"
        )
        self._latency = self.metrics.histogram(
            "bus.message_latency", "transport + handler latency (s)"
        )

    @property
    def lost(self) -> int:
        """Total undelivered messages — a view over the ``bus.lost``
        counter, so it can never diverge from ``len(drops)``."""
        return self._lost.value

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        handler: Callable[[Any, "MessageBus"], Optional[float]],
    ) -> Endpoint:
        """Register (or replace) the handler for endpoint ``name``.

        The handler receives ``(message, bus)`` and may return an extra
        processing time in seconds, added to the recorded handler time.
        """
        endpoint = Endpoint(name=name, handler=handler)
        self.endpoints[name] = endpoint
        return endpoint

    def set_alive(self, name: str, alive: bool) -> None:
        """Mark an endpoint up or down (failure injection)."""
        if name not in self.endpoints:
            raise KeyError(f"unknown endpoint: {name}")
        self.endpoints[name].alive = alive

    # ------------------------------------------------------------------
    def send(
        self,
        source: str,
        destination: str,
        message: Any,
        channel: Optional[Channel] = None,
        size: int = 1024,
        handler_time: Optional[float] = None,
        name: Optional[str] = None,
        interface: Optional[str] = None,
    ) -> Event:
        """Send ``message``; the returned event fires when the receiver's
        handler has *completed* (transport + handler time elapsed).

        ``handler_time`` overrides the cost model's default
        ``handler_processing`` — procedures use this for heavyweight
        steps like authentication.  ``interface`` is a pure annotation
        (``"sbi"`` / ``"n4"`` / ``"ngap"``) recorded on the message's
        trace span for per-interface breakdowns; it does not affect
        delivery.
        """
        channel = channel or self.default_channel
        done = self.env.event()
        latency = self.costs.message_cost(channel, size)
        work = (
            handler_time
            if handler_time is not None
            else self.costs.handler_processing
        )
        label = name or getattr(message, "name", type(message).__name__)
        san = _sanitizer.active()
        if san is not None:
            san.on_send(source, destination, message)
        tracer = _tracing.active()
        span = None
        if tracer is not None:
            span = tracer.start_span(
                label,
                category="message",
                source=source,
                destination=destination,
                channel=channel.name.lower(),
                size=size,
                interface=interface or "",
            )
            tracer.attach(message, span)
        self.env.process(
            self._deliver(
                source, destination, message, channel, size, latency,
                work, label, done, span,
            )
        )
        return done

    def _drop(self, source: str, destination: str, label: str, reason: str) -> None:
        """The single drop path: record + count, so ``lost`` and
        ``drops`` cannot diverge."""
        self._lost.inc()
        self.drops.append(
            DropRecord(
                source=source,
                destination=destination,
                name=label,
                reason=reason,
                at=self.env.now,
            )
        )

    def _finish_span(self, span: Any, message: Any, **attrs: Any) -> None:
        span.end = self.env.now
        span.attrs.update(attrs)
        tracer = _tracing.active()
        if tracer is not None:
            tracer.detach(message)

    def _deliver(
        self,
        source: str,
        destination: str,
        message: Any,
        channel: Channel,
        size: int,
        latency: float,
        handler_time: float,
        label: str,
        done: Event,
        span: Any = None,
    ):
        sent_at = self.env.now
        yield self.env.timeout(latency)
        endpoint = self.endpoints.get(destination)
        if endpoint is None or not endpoint.alive:
            self._drop(
                source,
                destination,
                label,
                "unknown-endpoint" if endpoint is None else "endpoint-down",
            )
            san = _sanitizer.active()
            if san is not None:
                san.on_drop(message)
            if span is not None:
                self._finish_span(span, message, dropped=True)
            done.succeed(None)
            return
        delivered_at = self.env.now
        san = _sanitizer.active()
        if san is not None:
            san.on_deliver(destination, message)
        if handler_time > 0:
            yield self.env.timeout(handler_time)
        extra = endpoint.handler(message, self)
        if extra:
            yield self.env.timeout(extra)
            handler_time += extra
        self._delivered.inc()
        self._latency.observe(self.env.now - sent_at)
        self.log.append(
            MessageRecord(
                source=source,
                destination=destination,
                name=label,
                channel=channel,
                size=size,
                sent_at=sent_at,
                delivered_at=delivered_at,
                handler_time=handler_time,
            )
        )
        if span is not None:
            self._emit_breakdown(
                span, channel, size, sent_at, delivered_at, handler_time
            )
            self._finish_span(span, message)
        done.succeed(message)

    def _emit_breakdown(
        self,
        span: Any,
        channel: Channel,
        size: int,
        sent_at: float,
        delivered_at: float,
        handler_time: float,
    ) -> None:
        """Attach the Fig 6 cost components as child spans, post hoc.

        The intervals are reconstructed from the :class:`CostModel`'s
        decomposition of the transport latency that already elapsed —
        no additional simulation events are created.
        """
        tracer = _tracing.active()
        if tracer is None:
            return
        serialize = self.costs.serialize_cost(channel)
        deserialize = self.costs.deserialize_cost(channel)
        cursor = sent_at
        for part, width in (
            ("serialize", serialize),
            ("protocol", max(0.0, (delivered_at - sent_at) - serialize - deserialize)),
            ("deserialize", deserialize),
        ):
            tracer.add_span(
                part, start=cursor, end=min(cursor + width, delivered_at),
                category="cost", parent=span,
            )
            cursor += width
        if handler_time > 0:
            tracer.add_span(
                "handler",
                start=delivered_at,
                end=delivered_at + handler_time,
                category="cost",
                parent=span,
            )

    # ------------------------------------------------------------------
    def records_named(self, label: str) -> List[MessageRecord]:
        """All delivery records for messages with the given label."""
        return [record for record in self.log if record.name == label]

    def total_messages(self) -> int:
        return len(self.log)
