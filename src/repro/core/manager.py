"""The NF manager: the DPDK primary process of the platform.

The manager owns the shared memory pool, registers NFs by service id,
moves descriptors between NF rings according to their actions, transmits
descriptors marked ``OUT`` to NIC ports, balances packets across
instances of a service (supporting canary rollouts with weighted
splitting, §4), and monitors NF liveness for the resiliency framework
(§3.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.engine import MS, Environment
from ..sim.queues import Store
from .costs import DEFAULT_COSTS, CostModel
from .nf import NetworkFunction, NFStatus
from .pool import Descriptor, PacketAction, SharedMemoryPool
from .rings import RingFullError

__all__ = ["NFManager", "ServiceEntry"]


@dataclass
class ServiceEntry:
    """All registered instances of one service id."""

    service_id: int
    instances: List[NetworkFunction] = field(default_factory=list)
    #: Traffic weights per instance id (canary rollout); missing ids get
    #: weight 0.  An empty dict means "all traffic to instance 0".
    weights: Dict[int, float] = field(default_factory=dict)
    #: Smooth-WRR state: instance id -> current weight.
    _current: Dict[int, float] = field(default_factory=dict)

    def running_instances(self) -> List[NetworkFunction]:
        return [nf for nf in self.instances if nf.status is NFStatus.RUNNING]

    def pick(self) -> Optional[NetworkFunction]:
        """Choose the instance for the next descriptor.

        Smooth weighted round robin (the nginx algorithm): every
        instance's current weight grows by its configured weight each
        round, the largest wins and is decremented by the total — a
        canary configured at 10 % receives exactly one in ten.
        """
        running = self.running_instances()
        if not running:
            return None
        if not self.weights:
            return running[0]
        total = sum(self.weights.get(nf.instance_id, 0.0) for nf in running)
        if total <= 0:
            return running[0]
        best: Optional[NetworkFunction] = None
        for nf in running:
            weight = self.weights.get(nf.instance_id, 0.0)
            if weight <= 0:
                continue
            current = self._current.get(nf.instance_id, 0.0) + weight
            self._current[nf.instance_id] = current
            if best is None or current > self._current[best.instance_id]:
                best = nf
        if best is None:
            return running[0]
        self._current[best.instance_id] -= total
        return best


class NFManager:
    """Routes descriptors between NFs and the NIC ports.

    Parameters
    ----------
    env:
        Simulation environment.
    pool_size:
        Descriptor count of the shared mempool.
    file_prefix:
        Security-domain prefix for the pool (§3.2).
    num_ports:
        Simulated NIC ports; each gets an output :class:`Store` that a
        link model can drain.
    """

    def __init__(
        self,
        env: Environment,
        pool_size: int = 8192,
        file_prefix: str = "l25gc",
        num_ports: int = 2,
        costs: CostModel = DEFAULT_COSTS,
    ):
        self.env = env
        self.costs = costs
        self.pool = SharedMemoryPool(pool_size, file_prefix)
        self.services: Dict[int, ServiceEntry] = {}
        self.ports: List[Store] = [Store(env) for _ in range(num_ports)]
        self.dropped = 0
        self.routed = 0
        self.transmitted = 0
        #: Callbacks invoked with the failed NF when liveness monitoring
        #: detects a crash (the resiliency framework subscribes here).
        self.failure_listeners: List[Callable[[NetworkFunction], None]] = []
        self._nfs: List[NetworkFunction] = []
        self._running = False
        self._monitor_interval = 2 * MS

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, nf: NetworkFunction, file_prefix: Optional[str] = None
    ) -> None:
        """Attach an NF to the pool and the service table."""
        nf.attach(self.pool, file_prefix or self.pool.file_prefix)
        entry = self.services.setdefault(
            nf.service_id, ServiceEntry(nf.service_id)
        )
        entry.instances.append(nf)
        self._nfs.append(nf)

    def set_canary_weights(
        self, service_id: int, weights: Dict[int, float]
    ) -> None:
        """Configure the traffic split across instances of a service."""
        if service_id not in self.services:
            raise KeyError(f"unknown service id: {service_id}")
        bad = [w for w in weights.values() if w < 0]
        if bad:
            raise ValueError(f"negative canary weights: {weights!r}")
        self.services[service_id].weights = dict(weights)

    def lookup(self, service_id: int) -> Optional[NetworkFunction]:
        """The instance currently selected for a service id."""
        entry = self.services.get(service_id)
        return entry.pick() if entry else None

    # ------------------------------------------------------------------
    # Descriptor plumbing
    # ------------------------------------------------------------------
    def inject(self, payload, service_id: int) -> bool:
        """Allocate a descriptor for ``payload`` and deliver it to a
        service's Rx ring (models packet arrival from a NIC port).

        Returns False when the packet had to be dropped (no instance,
        full ring, or exhausted pool).
        """
        entry = self.services.get(service_id)
        target = entry.pick() if entry else None
        if target is None:
            self.dropped += 1
            return False
        try:
            descriptor = self.pool.alloc(payload)
        except Exception:
            self.dropped += 1
            return False
        try:
            target.rx_ring.enqueue(descriptor)
        except RingFullError:
            descriptor.free()
            self.dropped += 1
            return False
        return True

    def _route(self, descriptor: Descriptor) -> None:
        action = descriptor.action
        if action == PacketAction.TO_NF:
            entry = self.services.get(descriptor.destination)
            target = entry.pick() if entry else None
            if target is None:
                self.dropped += 1
                descriptor.free()
                return
            try:
                target.rx_ring.enqueue(descriptor)
                self.routed += 1
            except RingFullError:
                self.dropped += 1
                descriptor.free()
        elif action == PacketAction.OUT:
            port = descriptor.destination
            if 0 <= port < len(self.ports):
                payload = descriptor.payload
                descriptor.free()
                self.ports[port].put_nowait(payload)
                self.transmitted += 1
            else:
                self.dropped += 1
                descriptor.free()
        else:  # DROP / NEXT without a chain
            self.dropped += 1
            descriptor.free()

    # ------------------------------------------------------------------
    # Main loops
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the Tx-drain loop and the liveness monitor."""
        if self._running:
            raise RuntimeError("manager already started")
        self._running = True
        self.env.process(self._tx_loop())
        self.env.process(self._monitor_loop())

    def stop(self) -> None:
        self._running = False

    def _tx_loop(self):
        costs = self.costs
        while self._running:
            moved = 0
            for nf in self._nfs:
                for descriptor in nf.tx_ring.dequeue_burst(64):
                    self._route(descriptor)
                    moved += 1
            if moved:
                yield self.env.timeout(moved * costs.manager_dispatch)
            else:
                yield self.env.timeout(costs.poll_interval)

    def _monitor_loop(self):
        """Detect NF crashes within a few milliseconds (§3.5.2)."""
        last_beat: Dict[int, int] = {}
        notified: set = set()
        while self._running:
            yield self.env.timeout(self._monitor_interval)
            for nf in self._nfs:
                key = id(nf)
                if nf.status is NFStatus.FAILED and key not in notified:
                    notified.add(key)
                    for listener in self.failure_listeners:
                        listener(nf)
                last_beat[key] = nf.heartbeat

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Aggregate counters for tests and dashboards."""
        return {
            "routed": self.routed,
            "transmitted": self.transmitted,
            "dropped": self.dropped,
            "pool_in_use": self.pool.in_use,
            "nfs": len(self._nfs),
        }
