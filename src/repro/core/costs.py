"""Calibrated per-operation cost model.

Every latency constant the simulation uses lives here, in one place,
with its provenance.  The experiment harnesses *derive* event completion
times from 3GPP message sequences plus these constants — they never
hard-code the paper's headline numbers.

Calibration anchors (L25GC paper, SIGCOMM'22 §5):

* Base data-plane RTT through the core: 116 us (free5GC, kernel gtp5g)
  vs. 25 us (L25GC, DPDK poll mode) — Table 1.
* 68-byte unidirectional forwarding: L25GC reaches 10G line rate
  (~14.9 Mpps) on one core, 27x free5GC (~0.55 Mpps) — Fig 10(a).
* SBI message exchange over shared memory is on average 13x faster than
  over HTTP/REST (Fig 9).  The derived one-way costs here are
  ~3.68 ms (HTTP/JSON, including free5GC's per-call client/NRF
  machinery) vs ~0.27 ms (descriptor passing through the cGO shim),
  a 13.5x ratio.
* A PFCP exchange over shared memory is 21-39 % faster than over a
  kernel UDP socket (Fig 7); the PFCP handler (rule install) dominates
  and is common to both systems, so the ratio is far from 13x.
* Paging completes in 59 ms (free5GC) vs 28 ms (L25GC); an N2 handover
  in 227 ms vs 130 ms (Tables 1-2).  At 10 Kpps these durations also
  fix the number of packets that see inflated RTTs (~608/294 for
  paging, ~2301/1437 for handover), which is how we validate the
  procedure message sequences end to end.
* Failure detection < 0.5 ms; re-route 2 ms; state replay 3 ms (§5.5.1).

All times are in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from ..sim.engine import MS, US

__all__ = ["Channel", "CostModel", "DEFAULT_COSTS"]


class Channel(Enum):
    """Inter-NF communication channels the model distinguishes."""

    #: HTTP/REST + JSON over kernel TCP sockets (vanilla free5GC SBI).
    HTTP_JSON = "http-json"
    #: HTTP/2 + Protobuf over kernel TCP sockets (Buyakar et al.).
    HTTP_PROTOBUF = "http-protobuf"
    #: Kernel sockets + FlatBuffers (Neutrino-style serialization).
    HTTP_FLATBUFFERS = "http-flatbuffers"
    #: PFCP TLVs over a kernel UDP socket (free5GC N4).
    UDP_PFCP = "udp-pfcp"
    #: Shared-memory descriptor passing (L25GC SBI and N4).
    SHARED_MEMORY = "shm"
    #: NGAP over SCTP to the gNB (identical in both systems).
    SCTP_NGAP = "sctp-ngap"


@dataclass
class CostModel:
    """Per-operation latency constants (seconds).

    Instances are immutable in spirit: use :meth:`scaled` to derive
    variants rather than mutating the shared :data:`DEFAULT_COSTS`.
    """

    # ------------------------------------------------------------------
    # Kernel-path building blocks
    # ------------------------------------------------------------------
    #: One system call (send/recv) entry+exit.
    syscall: float = 2.0 * US
    #: One process/goroutine context switch (socket wakeup).
    context_switch: float = 10.0 * US
    #: Copy cost per byte crossing the user/kernel boundary.
    copy_per_byte: float = 0.8e-9
    #: TCP/IP stack traversal per segment (one direction).
    tcp_stack: float = 30.0 * US
    #: UDP stack traversal per datagram (one direction).
    udp_stack: float = 40.0 * US
    #: HTTP/2 framing, header processing, mux routing (Go net/http).
    http_processing: float = 350.0 * US
    #: Per-REST-call client machinery in free5GC: OpenAPI client
    #: construction, NRF-backed service resolution cache checks,
    #: connection management.  Dominates the HTTP one-way cost.
    rest_client_overhead: float = 2900.0 * US

    # ------------------------------------------------------------------
    # Serialization (per typical control message, ~1-2 KB JSON body)
    # ------------------------------------------------------------------
    #: Encode a message to JSON (Go encoding/json, reflection-based).
    json_serialize: float = 150.0 * US
    #: Decode a message from JSON.
    json_deserialize: float = 190.0 * US
    #: Protobuf encode/decode are ~4x cheaper than JSON.
    protobuf_serialize: float = 40.0 * US
    protobuf_deserialize: float = 50.0 * US
    #: FlatBuffers: near-zero decode, moderate encode.
    flatbuffers_serialize: float = 45.0 * US
    flatbuffers_deserialize: float = 4.0 * US

    # ------------------------------------------------------------------
    # Shared-memory path (OpenNetVM descriptor passing)
    # ------------------------------------------------------------------
    #: Enqueue or dequeue one descriptor on an Rx/Tx ring.
    ring_op: float = 0.15 * US
    #: NF manager routing a descriptor between two NF rings.
    manager_dispatch: float = 0.6 * US
    #: Polling pickup delay (poll-mode NFs spin; effectively the batch
    #: interval at which a descriptor is noticed).
    poll_interval: float = 2.0 * US
    #: Crossing the cGO shim between the Golang NF logic and the DPDK
    #: rings, plus Go-scheduler handoff — paid once per shm message.
    #: This is why Fig 9's speedup is 13x rather than 1000x.
    go_shim_overhead: float = 270.0 * US

    # ------------------------------------------------------------------
    # PFCP (N4) costs
    # ------------------------------------------------------------------
    #: PFCP TLV encode of a session message (go-pfcp scale; session
    #: establishment carries dozens of nested IEs).
    pfcp_encode: float = 200.0 * US
    #: PFCP TLV decode of a session message.
    pfcp_decode: float = 260.0 * US
    #: Default PFCP handler work in the UPF-C (rule install/update),
    #: identical for both systems (dominates Fig 7's totals).  Message
    #: types override this: establishment 650 us, modification 450 us,
    #: report 200 us (see repro.pfcp.messages).
    pfcp_handler: float = 450.0 * US

    # ------------------------------------------------------------------
    # Control-plane handler processing (identical in both systems)
    # ------------------------------------------------------------------
    #: Generic NF handler processing per control message (state machine
    #: transition, context lookup).
    handler_processing: float = 0.8 * MS
    #: AMF/AUSF NAS security handler (auth vector generation, 5G-AKA).
    auth_processing: float = 6.0 * MS
    #: UDM/UDR subscriber data fetch (MongoDB access in free5GC).
    subscription_fetch: float = 5.0 * MS
    #: UDM SUCI de-concealment (ECIES) during registration.
    suci_deconcealment: float = 6.0 * MS
    #: UE-side NAS processing per N1 exchange (USIM ops, NAS security).
    ue_nas_processing: float = 3.0 * MS
    #: PCF policy decision per association.
    policy_decision: float = 4.0 * MS
    #: SMF session setup work (UE IP allocation, context creation).
    smf_context_setup: float = 4.0 * MS
    #: DN-side session authorization (DN-AAA / IP configuration) during
    #: PDU session establishment; independent of the SBI transport.
    dn_authorization: float = 8.0 * MS
    #: gNB-side processing of an NGAP request (resource setup etc.).
    gnb_processing: float = 1.5 * MS

    # ------------------------------------------------------------------
    # RAN-side legs (identical in both systems)
    # ------------------------------------------------------------------
    #: NGAP message over the SCTP association, one way.
    sctp_message: float = 550.0 * US
    #: UE<->gNB radio leg for an RRC message exchange (mmWave-era).
    radio_message: float = 1.5 * MS
    #: UE synchronization with the target gNB during handover (random
    #: access, RRC reconfiguration complete, timing advance) — the big
    #: system-independent chunk of the 130 ms L25GC handover.
    radio_sync: float = 85.0 * MS
    #: UE wake-up from idle upon a page (DRX latency, modeled mean).
    paging_wakeup: float = 8.0 * MS

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    #: Fixed per-packet CPU cost, kernel gtp5g path (interrupt, skb,
    #: netfilter traversal, GTP module).
    kernel_per_packet: float = 1.70 * US
    #: Additional kernel per-byte copy cost on the forwarding path.
    kernel_per_byte: float = 1.5e-9
    #: Fixed per-packet CPU cost, DPDK poll-mode zero-copy path.
    dpdk_per_packet: float = 0.066 * US
    #: DPDK per-byte cost beyond one cache-lined mbuf segment; small
    #: packets are pure descriptor work (line rate at 64-68 B on one
    #: core), large packets pay memory bandwidth (~13 Gbps/core at
    #: MTU, giving the paper's 28 Gbps at 2 cores / 40 Gbps at 4).
    dpdk_per_byte: float = 0.68e-9
    #: Bytes covered by the fixed DPDK cost (one mbuf segment).
    dpdk_byte_threshold: int = 256
    #: Portion of the fixed DPDK per-packet cost spent in the match
    #: pipeline a flow-cache hit skips: dual-hash session lookup, the
    #: 20-field key walk through the PDR classifier, and the FAR/QER/
    #: URR resolution (5GC²ache's attribution: classification is ~1/3
    #: of the per-packet budget at small rule counts).
    dpdk_match_cost: float = 0.024 * US
    #: Kernel-path equivalent (gtp5g hash over skb fields + rule list
    #: walk under the RCU read lock).
    kernel_match_cost: float = 0.45 * US
    #: One probe of the exact-match flow cache: a single hash + tag
    #: compare over the cached decision, like OVS's EMC hit.
    flow_cache_probe: float = 0.006 * US
    #: Fixed per-poll overhead of the DPDK burst path (ring doorbell,
    #: descriptor prefetch, poll bookkeeping), amortized over the
    #: packets of one burst.  The calibrated per-packet constants
    #: already include this overhead divided by
    #: :attr:`calibrated_burst_size`, matching the 32-packet bursts
    #: the paper's numbers were measured at.
    dpdk_burst_overhead: float = 0.12 * US
    #: The kernel path has no burst lever: each packet pays the full
    #: softirq/NAPI traversal regardless of batching upstream.
    kernel_burst_overhead: float = 0.0
    #: Burst size the per-packet constants were calibrated at.
    calibrated_burst_size: int = 32
    #: Floor for any amortized per-packet cost (seconds).  A configured
    #: ``dpdk_burst_overhead`` larger than the calibrated share could
    #: otherwise drive :meth:`burst_per_packet_cost` to zero or below
    #: at ``burst_size > calibrated_burst_size``, and the derived rate
    #: would divide by a non-positive cost.
    min_per_packet_cost: float = 0.001 * US
    #: One-way forwarding latency through the kernel UPF (interrupt
    #: coalescing, softirq scheduling) excluding queueing.  Two
    #: traversals give Table 1's 116 us base RTT.
    kernel_forward_latency: float = 57.0 * US
    #: One-way forwarding latency through the DPDK UPF (two traversals
    #: give the ~25 us base RTT).
    dpdk_forward_latency: float = 11.0 * US
    #: Per-hop wire propagation inside the testbed LAN.
    lan_propagation: float = 1.0 * US
    #: Re-injecting one *buffered* packet into the forwarding path.
    #: free5GC holds paging/HO buffers in the userspace UPF adapter and
    #: re-injects through the kernel (copy + syscall per packet); the
    #: shared-memory UPF just re-queues descriptors.  This is why
    #: free5GC's post-event RTT exceeds the event time by tens of ms
    #: (Tables 1-2) while L25GC's barely moves.
    kernel_buffer_reinject: float = 6.5 * US
    dpdk_buffer_reinject: float = 0.6 * US
    #: Forwarding-latency inflation per additional concurrently active
    #: session (softirq contention in the kernel path; mild cache
    #: pressure in the poll-mode path) — calibrated to Table 2's
    #: expt-ii base RTTs (425 us vs 39 us at 4 sessions).
    kernel_multisession_factor: float = 0.9
    dpdk_multisession_factor: float = 0.2

    # ------------------------------------------------------------------
    # Cache hierarchy (5GC²ache: UPF throughput is cache-residency-bound)
    # ------------------------------------------------------------------
    #: Per-core L1d capacity (Ice Lake-class server core).
    l1_size_bytes: int = 48 * 1024
    #: Shared last-level cache capacity.
    llc_size_bytes: int = 32 * 1024 * 1024
    #: Load-to-use latency of an L1 hit (~4 cycles at 3 GHz+).
    l1_latency: float = 0.0013 * US
    #: Load-to-use latency of an LLC hit (~40 cycles).
    llc_latency: float = 0.014 * US
    #: Load-to-use latency of a DRAM access on an LLC miss.
    dram_latency: float = 0.090 * US
    #: Bytes of session state one packet's decision touches in the
    #: hot/cold slab layout: one dense-index probe plus one compact
    #: hot record — a cache line.
    hot_record_bytes: int = 64
    #: Bytes the dict-of-objects layout drags through the hierarchy per
    #: decision: the hash bucket, the session object header and its
    #: attribute dict, interleaved with cold accounting/lifecycle
    #: fields that share the same lines.
    cold_session_bytes: int = 1024
    #: Dependent session-state references per forwarded packet (the
    #: index probe and the decision-record read serialize).
    state_refs_per_packet: float = 2.0

    # ------------------------------------------------------------------
    # Cache-hierarchy helpers (working-set-size -> hit-rate curve)
    # ------------------------------------------------------------------
    def cache_hit_rate(
        self, working_set_bytes: float, cache_size_bytes: float
    ) -> float:
        """Fraction of uniform-random state touches that hit a cache.

        The standard LRU/random-replacement approximation: a working
        set resident in the cache always hits; past capacity, the hit
        rate decays as the resident fraction ``size / working_set`` —
        which is exactly the ns/packet cliff 5GC²ache measures when the
        session working set overflows LLC.
        """
        if working_set_bytes <= 0:
            return 1.0
        if working_set_bytes <= cache_size_bytes:
            return 1.0
        return cache_size_bytes / working_set_bytes

    def session_state_working_set(
        self, sessions: int, hot_layout: bool = True
    ) -> float:
        """Bytes of per-packet-touched session state for ``sessions``."""
        per_session = (
            self.hot_record_bytes if hot_layout else self.cold_session_bytes
        )
        return float(max(0, sessions)) * per_session

    def state_access_latency(
        self, sessions: int, hot_layout: bool = True
    ) -> float:
        """Expected per-packet session-state access time (seconds).

        Each packet issues :attr:`state_refs_per_packet` dependent
        references into a working set spread uniformly over the active
        sessions; every reference resolves at the first level that
        holds the line (L1, then LLC, then DRAM).
        """
        working_set = self.session_state_working_set(sessions, hot_layout)
        p_l1 = self.cache_hit_rate(working_set, self.l1_size_bytes)
        p_llc = self.cache_hit_rate(working_set, self.llc_size_bytes)
        per_ref = (
            p_l1 * self.l1_latency
            + (p_llc - p_l1) * self.llc_latency
            + (1.0 - p_llc) * self.dram_latency
        )
        return self.state_refs_per_packet * per_ref

    def cache_aware_per_packet_cost(
        self,
        fast_path: bool,
        size: int,
        sessions: int,
        hot_layout: bool = True,
    ) -> float:
        """CPU time per packet with the session working set modeled.

        The calibrated :meth:`per_packet_cost` constants were measured
        with a single resident session (state effectively L1-hot), so
        the cache term contributes only the *delta* over that baseline.
        At small session counts this reproduces the headline numbers
        exactly; past LLC capacity the DRAM term dominates and the
        modeled rate falls off the 5GC²ache cliff — later for the
        compact hot slab (64 B/session) than for the dict-of-objects
        layout (~1 KB/session).
        """
        base = self.per_packet_cost(fast_path, size)
        calibrated = self.state_access_latency(1, hot_layout=True)
        delta = self.state_access_latency(sessions, hot_layout) - calibrated
        return max(base + delta, self.min_per_packet_cost)

    def cache_aware_forwarding_rate_pps(
        self,
        fast_path: bool,
        size: int,
        sessions: int,
        hot_layout: bool = True,
        cores: int = 1,
    ) -> float:
        """Max packets/second with ``sessions`` active sessions."""
        return cores / self.cache_aware_per_packet_cost(
            fast_path, size, sessions, hot_layout
        )

    # ------------------------------------------------------------------
    # Resiliency
    # ------------------------------------------------------------------
    #: Local replica synchronization (same-host shared memory), per event.
    local_sync: float = 5.0 * US
    #: Failure detection by the LB probe agent (S-BFD style).
    failure_detection: float = 0.45 * MS
    #: Re-routing traffic to the replica node after detection.
    reroute: float = 2.0 * MS
    #: State reconstruction by replaying logged packets (partially
    #: overlapping with re-route; modeled as the serial tail).
    replay: float = 3.0 * MS
    #: Unfreezing a cgroup-frozen replica process.
    unfreeze: float = 0.9 * MS
    #: Delta checkpoint transmission to the remote replica, per sync.
    checkpoint_send: float = 180.0 * US

    # ------------------------------------------------------------------
    # Derived per-message channel costs
    # ------------------------------------------------------------------
    def serialize_cost(self, channel: Channel) -> float:
        """Sender-side serialization cost for one control message."""
        if channel is Channel.HTTP_JSON:
            return self.json_serialize
        if channel is Channel.HTTP_PROTOBUF:
            return self.protobuf_serialize
        if channel is Channel.HTTP_FLATBUFFERS:
            return self.flatbuffers_serialize
        if channel is Channel.UDP_PFCP:
            return self.pfcp_encode
        return 0.0  # shared memory passes a flat descriptor

    def deserialize_cost(self, channel: Channel) -> float:
        """Receiver-side deserialization cost for one control message."""
        if channel is Channel.HTTP_JSON:
            return self.json_deserialize
        if channel is Channel.HTTP_PROTOBUF:
            return self.protobuf_deserialize
        if channel is Channel.HTTP_FLATBUFFERS:
            return self.flatbuffers_deserialize
        if channel is Channel.UDP_PFCP:
            return self.pfcp_decode
        return 0.0

    def protocol_cost(self, channel: Channel, size: int = 1024) -> float:
        """Kernel/protocol-stack cost of moving one message, one way."""
        copies = 2 * self.copy_per_byte * size  # user->kernel, kernel->user
        if channel in (
            Channel.HTTP_JSON,
            Channel.HTTP_PROTOBUF,
            Channel.HTTP_FLATBUFFERS,
        ):
            return (
                self.rest_client_overhead
                + self.http_processing
                + 2 * self.tcp_stack
                + 4 * self.syscall
                + 2 * self.context_switch
                + copies
            )
        if channel is Channel.UDP_PFCP:
            return (
                2 * self.udp_stack
                + 4 * self.syscall
                + 2 * self.context_switch
                + copies
            )
        if channel is Channel.SCTP_NGAP:
            return self.sctp_message
        # Shared memory: descriptor enqueue + manager dispatch + dequeue
        # + polling pickup + the cGO shim crossing.  No copies, no
        # serialization.
        return (
            2 * self.ring_op
            + self.manager_dispatch
            + self.poll_interval
            + self.go_shim_overhead
        )

    def message_cost(self, channel: Channel, size: int = 1024) -> float:
        """Total one-way cost of one control message on ``channel``."""
        return (
            self.serialize_cost(channel)
            + self.protocol_cost(channel, size)
            + self.deserialize_cost(channel)
        )

    # ------------------------------------------------------------------
    # Data-plane rate helpers
    # ------------------------------------------------------------------
    def per_packet_cost(self, fast_path: bool, size: int) -> float:
        """CPU time to forward one packet of ``size`` wire bytes."""
        if fast_path:
            extra = max(0, size - self.dpdk_byte_threshold)
            return self.dpdk_per_packet + self.dpdk_per_byte * extra
        return self.kernel_per_packet + self.kernel_per_byte * size

    def forwarding_rate_pps(
        self, fast_path: bool, size: int, cores: int = 1
    ) -> float:
        """Max packets/second a UPF can forward with ``cores`` cores."""
        return cores / self.per_packet_cost(fast_path, size)

    def cached_lookup(self, fast_path: bool, size: int) -> float:
        """CPU time to forward one packet on a flow-cache *hit*.

        The match-pipeline share of the per-packet cost is replaced by
        a single exact-match probe; byte-movement costs are unchanged
        (the cache accelerates classification, not copies).
        """
        base = self.per_packet_cost(fast_path, size)
        saved = self.dpdk_match_cost if fast_path else self.kernel_match_cost
        return max(self.flow_cache_probe, base - saved + self.flow_cache_probe)

    def cached_forwarding_rate_pps(
        self, fast_path: bool, size: int, cores: int = 1
    ) -> float:
        """Max packets/second with every packet hitting the flow cache."""
        return cores / self.cached_lookup(fast_path, size)

    def burst_per_packet_cost(
        self, fast_path: bool, size: int, burst_size: int
    ) -> float:
        """CPU time per packet when the pipeline drains ``burst_size``
        packets per poll.

        The fixed per-poll overhead amortizes over the burst:
        ``burst_size == calibrated_burst_size`` reproduces
        :meth:`per_packet_cost` exactly (the calibration already bakes
        that share in), smaller bursts pay a larger share per packet,
        and burst 1 degenerates to one full poll overhead per packet.
        The kernel path is burst-insensitive by construction.
        """
        if burst_size < 1:
            raise ValueError(f"burst_size must be >= 1: {burst_size!r}")
        overhead = (
            self.dpdk_burst_overhead
            if fast_path
            else self.kernel_burst_overhead
        )
        cost = self.per_packet_cost(fast_path, size) + overhead * (
            1.0 / burst_size - 1.0 / self.calibrated_burst_size
        )
        # With burst_size > calibrated_burst_size the overhead term is
        # negative; a large configured overhead could push the modeled
        # cost to <= 0 (and the derived pps rate through a divide by
        # non-positive).  Physically the amortized cost can approach
        # but never reach zero, so clamp to the positive floor.
        return max(cost, self.min_per_packet_cost)

    def burst_forwarding_rate_pps(
        self, fast_path: bool, size: int, burst_size: int, cores: int = 1
    ) -> float:
        """Max packets/second at a given poll burst size."""
        return cores / self.burst_per_packet_cost(fast_path, size, burst_size)

    def forward_latency(self, fast_path: bool, active_sessions: int = 1) -> float:
        """One-way forwarding latency through the UPF, sans queueing."""
        base = (
            self.dpdk_forward_latency
            if fast_path
            else self.kernel_forward_latency
        )
        factor = (
            self.dpdk_multisession_factor
            if fast_path
            else self.kernel_multisession_factor
        )
        return base * (1.0 + factor * max(0, active_sessions - 1))

    def buffer_reinject(self, fast_path: bool, active_sessions: int = 1) -> float:
        """Per-packet cost of draining a smart buffer."""
        base = (
            self.dpdk_buffer_reinject
            if fast_path
            else self.kernel_buffer_reinject
        )
        factor = (
            self.dpdk_multisession_factor
            if fast_path
            else self.kernel_multisession_factor
        )
        return base * (1.0 + factor * max(0, active_sessions - 1))

    def scaled(self, **overrides: float) -> "CostModel":
        """A copy with selected constants replaced."""
        return replace(self, **overrides)


#: The calibrated default cost model used throughout the reproduction.
DEFAULT_COSTS = CostModel()
