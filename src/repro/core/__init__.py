"""The shared-memory NFV platform core (OpenNetVM-style).

Contains the calibrated :class:`~repro.core.costs.CostModel`, descriptor
rings and pool, the :class:`~repro.core.nf.NetworkFunction` base class,
the :class:`~repro.core.manager.NFManager`, and the message-level
:class:`~repro.core.transport.MessageBus` used by control-plane
procedures.
"""

from .costs import DEFAULT_COSTS, Channel, CostModel
from .manager import NFManager, ServiceEntry
from .nf import NetworkFunction, NFStatus
from .pool import (
    AccessDeniedError,
    Descriptor,
    PacketAction,
    PoolExhaustedError,
    SharedMemoryPool,
)
from .rings import Ring, RingEmptyError, RingFullError
from .transport import Endpoint, MessageBus, MessageRecord

__all__ = [
    "DEFAULT_COSTS",
    "Channel",
    "CostModel",
    "NFManager",
    "ServiceEntry",
    "NetworkFunction",
    "NFStatus",
    "AccessDeniedError",
    "Descriptor",
    "PacketAction",
    "PoolExhaustedError",
    "SharedMemoryPool",
    "Ring",
    "RingEmptyError",
    "RingFullError",
    "Endpoint",
    "MessageBus",
    "MessageRecord",
]
