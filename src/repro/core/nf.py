"""The network-function abstraction of the NFV platform.

Each NF owns an Rx and a Tx descriptor ring shared with the manager,
mirrors OpenNetVM's poll-mode execution, and reports liveness through a
heartbeat word the manager inspects.  Control-plane NFs (AMF, SMF, ...)
and the UPF-U all derive from :class:`NetworkFunction`.

An NF can be *frozen* (the cgroup-freezer standby of §3.5.1): it keeps
its rings and state but consumes no simulated CPU until the manager
unfreezes it.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Optional

from ..obs import spans as _tracing
from ..sim.engine import Environment, Event
from .costs import DEFAULT_COSTS, CostModel
from .pool import Descriptor, PacketAction, SharedMemoryPool
from .rings import Ring, RingFullError

__all__ = ["NFStatus", "NetworkFunction"]


class NFStatus(Enum):
    """Lifecycle states of an NF under the manager."""

    STARTING = "starting"
    RUNNING = "running"
    FROZEN = "frozen"
    FAILED = "failed"
    STOPPED = "stopped"


class NetworkFunction:
    """Base class for all NFs on the shared-memory platform.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Human-readable NF name (``"amf"``, ``"upf-u"``...).
    service_id:
        The platform-wide service this NF implements.  Several
        instances (canary versions, replicas) may share a service id.
    instance_id:
        Distinguishes instances of the same service (canary rollout).
    ring_size:
        Capacity of the Rx and Tx rings.
    burst:
        Max descriptors handled per polling iteration.
    """

    #: When True the run loop hands each polled batch to
    #: :meth:`handle_burst` in one shot (after a single timeout equal
    #: to the summed per-descriptor processing time) instead of
    #: interleaving a timeout + :meth:`handle` per descriptor.  Only
    #: NFs whose batch handling is semantically equivalent to
    #: descriptor-at-a-time handling should enable it (the UPF-U's
    #: burst pipeline is property-tested for exactly that).
    burst_mode = False

    def __init__(
        self,
        env: Environment,
        name: str,
        service_id: int,
        instance_id: int = 0,
        ring_size: int = 1024,
        burst: int = 32,
        costs: CostModel = DEFAULT_COSTS,
    ):
        self.env = env
        self.name = name
        self.service_id = service_id
        self.instance_id = instance_id
        self.burst = burst
        self.costs = costs
        self.rx_ring = Ring(ring_size, name=f"{name}.rx")
        self.tx_ring = Ring(ring_size, name=f"{name}.tx")
        self.status = NFStatus.STARTING
        self.pool: Optional[SharedMemoryPool] = None
        self.handled = 0
        self.heartbeat = 0
        self._process = None
        self._wake: Optional[Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, pool: SharedMemoryPool, file_prefix: str) -> None:
        """Join the shared memory security domain (DPDK secondary)."""
        pool.attach(self.name, file_prefix)
        self.pool = pool

    def start(self) -> None:
        """Begin the poll-mode run loop as a simulation process."""
        if self._process is not None:
            raise RuntimeError(f"{self.name} already started")
        self.status = NFStatus.RUNNING
        # Named after the NF so the race detector can attribute the
        # loop's shared-state accesses to this role.
        self._process = self.env.process(self._run(), name=self.name)

    def freeze(self) -> None:
        """Enter the zero-CPU standby state (cgroup freezer)."""
        if self.status is NFStatus.FAILED:
            raise RuntimeError(f"{self.name} has failed; cannot freeze")
        self.status = NFStatus.FROZEN

    def unfreeze(self) -> None:
        """Resume from standby; the run loop notices within a poll."""
        if self.status is not NFStatus.FROZEN:
            raise RuntimeError(f"{self.name} is not frozen")
        self.status = NFStatus.RUNNING
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def fail(self) -> None:
        """Crash the NF (used by fault injection)."""
        self.status = NFStatus.FAILED

    def stop(self) -> None:
        self.status = NFStatus.STOPPED

    @property
    def is_alive(self) -> bool:
        return self.status in (NFStatus.RUNNING, NFStatus.STARTING)

    # ------------------------------------------------------------------
    # Message handling — subclasses override
    # ------------------------------------------------------------------
    def handle(self, descriptor: Descriptor) -> Iterable[Descriptor]:
        """Process one descriptor; yield descriptors for the Tx ring.

        The default implementation forwards unchanged (a wire NF).
        Subclasses set each descriptor's action/destination.
        """
        return (descriptor,)

    def processing_time(self, descriptor: Descriptor) -> float:
        """Simulated CPU time to handle one descriptor."""
        return self.costs.dpdk_per_packet

    def handle_burst(
        self, descriptors: Iterable[Descriptor]
    ) -> Iterable[Descriptor]:
        """Process a polled batch in one shot (``burst_mode`` NFs only).

        The default simply chains :meth:`handle`; burst-capable NFs
        (the UPF-U) override it with a genuinely amortized pipeline.
        """
        outputs = []
        for descriptor in descriptors:
            outputs.extend(self.handle(descriptor))
        return outputs

    # ------------------------------------------------------------------
    # Descriptor I/O helpers
    # ------------------------------------------------------------------
    def send_to_nf(self, descriptor: Descriptor, service_id: int) -> None:
        """Queue a descriptor for another NF via the manager."""
        descriptor.set_action(PacketAction.TO_NF, service_id)
        self._tx(descriptor)

    def send_out(self, descriptor: Descriptor, port: int = 0) -> None:
        """Queue a descriptor for transmission out of a NIC port."""
        descriptor.set_action(PacketAction.OUT, port)
        self._tx(descriptor)

    def drop(self, descriptor: Descriptor) -> None:
        descriptor.set_action(PacketAction.DROP)
        self._tx(descriptor)

    def _tx(self, descriptor: Descriptor) -> None:
        try:
            self.tx_ring.enqueue(descriptor)
        except RingFullError:
            # Tail drop at the Tx ring, as on the real platform.
            descriptor.free()

    # ------------------------------------------------------------------
    # Poll-mode run loop
    # ------------------------------------------------------------------
    def _run(self):
        costs = self.costs
        while self.status not in (NFStatus.STOPPED, NFStatus.FAILED):
            if self.status is NFStatus.FROZEN:
                # A frozen NF burns no cycles: block on an explicit wake
                # event instead of polling.
                self._wake = self.env.event()
                yield self._wake
                self._wake = None
                continue
            self.heartbeat += 1
            batch = self.rx_ring.dequeue_burst(self.burst)
            if not batch:
                yield self.env.timeout(costs.poll_interval)
                continue
            if (
                self.burst_mode
                and len(batch) > 1
                and _tracing.active() is None
            ):
                # Amortized path: one timeout covering the whole batch
                # (identical total to the per-descriptor sum), then the
                # batch is handled atomically — no yields inside, so
                # the burst pipeline sees a single simulation instant.
                # Tracing falls back to the classic path below for
                # span-per-descriptor fidelity.
                work = 0.0
                for descriptor in batch:
                    work += self.processing_time(descriptor)
                if work > 0:
                    yield self.env.timeout(work)
                if self.status in (NFStatus.STOPPED, NFStatus.FAILED):
                    for descriptor in batch:
                        descriptor.free()
                    continue
                for out in self.handle_burst(batch):
                    self._tx(out)
                self.handled += len(batch)
                continue
            for descriptor in batch:
                tracer = _tracing.active()
                span = None
                if tracer is not None:
                    # Parent to the context the descriptor carried
                    # through the ring, so the handle span slots into
                    # the originating procedure's causal tree.
                    span = tracer.start_span(
                        f"nf-handle:{self.name}",
                        category="nf",
                        parent=tracer.context_of(descriptor),
                        nf=self.name,
                        service_id=self.service_id,
                    )
                work = self.processing_time(descriptor)
                if work > 0:
                    yield self.env.timeout(work)
                if self.status in (NFStatus.STOPPED, NFStatus.FAILED):
                    descriptor.free()
                    if span is not None:
                        span.end = self.env.now
                        span.attrs["aborted"] = True
                    continue
                outputs = 0
                if span is not None:
                    tracer.attach(descriptor, span)
                for out in self.handle(descriptor):
                    self._tx(out)
                    outputs += 1
                self.handled += 1
                if span is not None:
                    span.end = self.env.now
                    span.attrs["outputs"] = outputs

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, svc={self.service_id}, "
            f"inst={self.instance_id}, {self.status.value})"
        )
