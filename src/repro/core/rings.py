"""Single-producer / single-consumer descriptor rings.

OpenNetVM attaches a receive (Rx) and a transmit (Tx) ring to every NF;
the manager and the NF exchange *packet descriptors* (pointers into the
shared hugepage pool) through these rings without locks.  This module is
a faithful in-Python counterpart: a fixed-size power-of-two circular
buffer with separate head/tail counters, batch operations, and watermark
statistics.  It is a real data structure — the micro-benchmarks in
``benchmarks/`` measure it directly.

The accounting ledger (``enqueued`` / ``dequeued`` / ``dropped`` /
``enqueue_failures`` / ``high_watermark``) is backed by
:mod:`repro.obs.metrics` primitives; the int-returning attribute views
and :meth:`Ring.stats` are kept for compatibility, and
:meth:`Ring.register_into` exports the same objects into a
:class:`~repro.obs.metrics.MetricsRegistry` — one tally, two views.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis import sanitizer as _sanitizer
from ..obs import spans as _tracing
from ..obs.metrics import Counter, Gauge, MetricsRegistry

__all__ = ["Ring", "RingFullError", "RingEmptyError"]


class RingFullError(Exception):
    """Raised by :meth:`Ring.enqueue` when no slot is free."""


class RingEmptyError(Exception):
    """Raised by :meth:`Ring.dequeue` when no descriptor is queued."""


def _round_up_pow2(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


class Ring:
    """A bounded FIFO of descriptors with DPDK-ring semantics.

    Parameters
    ----------
    capacity:
        Usable slot count; rounded up to a power of two internally so
        index arithmetic is a mask operation, as in ``rte_ring``.
    name:
        Identification for debugging and statistics.
    """

    __slots__ = (
        "name",
        "_mask",
        "_slots",
        "_head",
        "_tail",
        "_enqueued",
        "_dequeued",
        "_dropped",
        "_enqueue_failures",
        "_high_watermark",
    )

    def __init__(self, capacity: int = 1024, name: str = "ring"):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive: {capacity!r}")
        size = _round_up_pow2(capacity)
        self.name = name
        self._mask = size - 1
        self._slots: List[Any] = [None] * size
        self._head = 0  # next slot to write (producer)
        self._tail = 0  # next slot to read (consumer)
        self._enqueued = Counter(f"ring.{name}.enqueued")
        self._dequeued = Counter(f"ring.{name}.dequeued")
        self._dropped = Counter(f"ring.{name}.dropped")
        self._enqueue_failures = Counter(f"ring.{name}.enqueue_failures")
        self._high_watermark = Gauge(f"ring.{name}.high_watermark")

    # -- inspection ---------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total number of usable slots."""
        return self._mask + 1

    def __len__(self) -> int:
        return self._head - self._tail

    @property
    def free_count(self) -> int:
        """Slots currently available to the producer."""
        return self.capacity - len(self)

    @property
    def is_empty(self) -> bool:
        return self._head == self._tail

    @property
    def is_full(self) -> bool:
        return len(self) == self.capacity

    # -- counter views (compatibility with the pre-obs int attributes) ------
    @property
    def enqueued(self) -> int:
        return self._enqueued.value

    @property
    def dequeued(self) -> int:
        return self._dequeued.value

    @property
    def dropped(self) -> int:
        return self._dropped.value

    @property
    def enqueue_failures(self) -> int:
        return self._enqueue_failures.value

    @property
    def high_watermark(self) -> int:
        return int(self._high_watermark.value)

    def register_into(self, registry: MetricsRegistry) -> None:
        """Export this ring's counters/watermark into ``registry``."""
        for metric in (
            self._enqueued,
            self._dequeued,
            self._dropped,
            self._enqueue_failures,
            self._high_watermark,
        ):
            registry.register(metric)
        registry.gauge(f"ring.{self.name}.occupancy").set_function(
            lambda: len(self)
        )

    # -- single operations ----------------------------------------------------
    def enqueue(self, descriptor: Any) -> None:
        """Push one descriptor; raises :class:`RingFullError` when full."""
        if self.is_full:
            self._enqueue_failures.inc()
            raise RingFullError(f"{self.name}: ring full ({self.capacity})")
        san = _sanitizer.active()
        if san is not None:
            san.on_enqueue(self.name, descriptor)
        tracer = _tracing.active()
        if tracer is not None:
            tracer.on_ring_enqueue(self.name, descriptor)
        self._slots[self._head & self._mask] = descriptor
        self._head += 1
        self._enqueued.inc()
        self._high_watermark.set_max(len(self))

    def dequeue(self) -> Any:
        """Pop one descriptor; raises :class:`RingEmptyError` when empty."""
        if self.is_empty:
            raise RingEmptyError(f"{self.name}: ring empty")
        index = self._tail & self._mask
        descriptor = self._slots[index]
        self._slots[index] = None
        self._tail += 1
        self._dequeued.inc()
        san = _sanitizer.active()
        if san is not None:
            san.on_dequeue(self.name, descriptor)
        tracer = _tracing.active()
        if tracer is not None:
            tracer.on_ring_dequeue(self.name, descriptor)
        return descriptor

    # -- batch operations (the common fast path in ONVM) -----------------------
    def enqueue_burst(self, descriptors: Sequence[Any]) -> int:
        """Push as many of ``descriptors`` as fit; returns how many."""
        space = self.free_count
        count = min(space, len(descriptors))
        san = _sanitizer.active()
        tracer = _tracing.active()
        for i in range(count):
            if san is not None:
                san.on_enqueue(self.name, descriptors[i])
            if tracer is not None:
                tracer.on_ring_enqueue(self.name, descriptors[i])
            self._slots[self._head & self._mask] = descriptors[i]
            self._head += 1
        self._enqueued.inc(count)
        self._enqueue_failures.inc(len(descriptors) - count)
        self._high_watermark.set_max(len(self))
        return count

    def dequeue_burst(self, max_count: int) -> List[Any]:
        """Pop up to ``max_count`` descriptors (possibly fewer).

        Stats-equivalent to ``count`` singleton :meth:`dequeue` calls:
        ``dequeued`` advances by exactly the number of descriptors
        returned, and the sanitizer/tracer see each descriptor
        individually.  A non-positive ``max_count`` pops nothing (a
        negative count must never reach the monotonic counter).
        """
        count = max(0, min(max_count, len(self)))
        out: List[Any] = []
        san = _sanitizer.active()
        tracer = _tracing.active()
        for _ in range(count):
            index = self._tail & self._mask
            descriptor = self._slots[index]
            self._slots[index] = None
            self._tail += 1
            if san is not None:
                san.on_dequeue(self.name, descriptor)
            if tracer is not None:
                tracer.on_ring_dequeue(self.name, descriptor)
            out.append(descriptor)
        self._dequeued.inc(count)
        return out

    def peek(self) -> Optional[Any]:
        """The oldest descriptor without removing it, or None."""
        if self.is_empty:
            return None
        return self._slots[self._tail & self._mask]

    def clear(self) -> int:
        """Drop everything; returns the number of discarded descriptors.

        Discards are charged to :attr:`dropped` so the enqueue/dequeue
        ledger stays balanced (``enqueued == dequeued + dropped + len``)
        and sanitizer/watermark numbers remain consistent.
        """
        count = len(self)
        san = _sanitizer.active()
        tracer = _tracing.active()
        if count and (san is not None or tracer is not None):
            live = [
                self._slots[index & self._mask]
                for index in range(self._tail, self._head)
            ]
            if san is not None:
                san.on_clear(self.name, live)
            if tracer is not None:
                tracer.on_ring_clear(self.name, live)
        for i in range(len(self._slots)):
            self._slots[i] = None
        self._tail = self._head
        self._dropped.inc(count)
        return count

    def stats(self) -> Dict[str, int]:
        """The ring's full accounting ledger, for harnesses and asserts."""
        return {
            "capacity": self.capacity,
            "occupancy": len(self),
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "enqueue_failures": self.enqueue_failures,
            "high_watermark": self.high_watermark,
        }

    def __repr__(self) -> str:
        return (
            f"Ring({self.name!r}, {len(self)}/{self.capacity}, "
            f"enq={self.enqueued}, deq={self.dequeued}, "
            f"drop={self.dropped})"
        )
