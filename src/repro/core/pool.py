"""The shared-memory object pool and packet descriptors.

In OpenNetVM the manager (DPDK primary process) creates a hugepage-backed
mempool; NFs (secondary processes) attach to the same pool through a
shared data file prefix and exchange fixed-size *descriptors* that point
into it.  Nothing is ever copied between NFs — only 64-byte descriptors
move through the rings.

Here the pool manages :class:`Descriptor` objects wrapping arbitrary
payloads (simulated packets or control-plane messages).  The security
domain of the paper (§3.2) is modeled by the pool's ``file_prefix``:
an NF may only attach when it presents the same prefix, and separate
L25GC instances on a node use distinct prefixes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Descriptor",
    "SharedMemoryPool",
    "PoolExhaustedError",
    "AccessDeniedError",
    "PacketAction",
]

_descriptor_ids = itertools.count(1)


class PoolExhaustedError(Exception):
    """Raised when the mempool has no free descriptors."""


class AccessDeniedError(Exception):
    """Raised when an NF presents the wrong shared-data file prefix."""


class PacketAction:
    """Descriptor metadata actions, mirroring ONVM's ``onvm_pkt_action``."""

    DROP = "drop"
    TO_NF = "tonf"
    OUT = "out"
    NEXT = "next"


@dataclass
class Descriptor:
    """A 64-byte packet descriptor in shared memory.

    Attributes
    ----------
    payload:
        The shared object this descriptor points at.  Passing the
        descriptor between NFs never copies the payload — that is the
        zero-copy property the paper exploits.
    action:
        What the manager should do when the NF returns the descriptor
        on its Tx ring (one of :class:`PacketAction`).
    destination:
        Target service id for ``TO_NF``, or port id for ``OUT``.
    """

    payload: Any = None
    action: str = PacketAction.DROP
    destination: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    descriptor_id: int = field(default_factory=lambda: next(_descriptor_ids))
    _pool: Optional["SharedMemoryPool"] = field(
        default=None, repr=False, compare=False
    )

    def set_action(self, action: str, destination: int = 0) -> "Descriptor":
        """Set the manager action; returns self for chaining."""
        if action not in (
            PacketAction.DROP,
            PacketAction.TO_NF,
            PacketAction.OUT,
            PacketAction.NEXT,
        ):
            raise ValueError(f"unknown packet action: {action!r}")
        self.action = action
        self.destination = destination
        return self

    def free(self) -> None:
        """Return this descriptor to its pool."""
        if self._pool is not None:
            self._pool.free(self)


class SharedMemoryPool:
    """A fixed-size pool of descriptors shared by all NFs of one 5GC unit.

    Parameters
    ----------
    size:
        Number of descriptors (mbufs) in the pool.
    file_prefix:
        The DPDK shared-data file prefix that forms the security domain
        boundary; NFs must present the matching prefix to attach.
    """

    def __init__(self, size: int = 8192, file_prefix: str = "l25gc"):
        if size <= 0:
            raise ValueError(f"pool size must be positive: {size!r}")
        self.size = size
        self.file_prefix = file_prefix
        self._free: List[Descriptor] = [
            Descriptor(_pool=self) for _ in range(size)
        ]
        self._attached: Dict[str, int] = {}
        self.allocations = 0
        self.alloc_failures = 0

    # -- security domain -------------------------------------------------
    def attach(self, nf_name: str, file_prefix: str) -> None:
        """Attach an NF to the pool; the prefix must match (§3.2).

        Raises :class:`AccessDeniedError` for a foreign prefix — this is
        the isolation between 5GC instances of different operators.
        """
        if file_prefix != self.file_prefix:
            raise AccessDeniedError(
                f"{nf_name}: prefix {file_prefix!r} does not match pool "
                f"{self.file_prefix!r}"
            )
        self._attached[nf_name] = self._attached.get(nf_name, 0) + 1

    def is_attached(self, nf_name: str) -> bool:
        return self._attached.get(nf_name, 0) > 0

    # -- allocation ------------------------------------------------------
    @property
    def available(self) -> int:
        """Free descriptors remaining."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.size - len(self._free)

    def alloc(self, payload: Any = None) -> Descriptor:
        """Take a descriptor from the pool and point it at ``payload``."""
        if not self._free:
            self.alloc_failures += 1
            raise PoolExhaustedError(f"pool {self.file_prefix!r} exhausted")
        descriptor = self._free.pop()
        descriptor.payload = payload
        descriptor.action = PacketAction.DROP
        descriptor.destination = 0
        descriptor.meta.clear()
        self.allocations += 1
        return descriptor

    def free(self, descriptor: Descriptor) -> None:
        """Return a descriptor to the pool."""
        if descriptor._pool is not self:
            raise ValueError("descriptor belongs to a different pool")
        if len(self._free) >= self.size:
            raise ValueError("double free of descriptor")
        descriptor.payload = None
        descriptor.meta.clear()
        self._free.append(descriptor)
