"""Fig 13 + Table 1 — data-plane latency during a paging event.

A UE goes idle; constant-rate downlink traffic (10 Kpps) then arrives
at the UPF, whose DL FAR is in BUFF+NOCP state.  The first packet
raises a downlink data report, the paging procedure runs, and the
buffer drains to the woken UE.  Measured per packet: RTT (twice the
one-way delay, as the paper's generator sees it).

Table 1's row to reproduce (free5GC vs L25GC):
base RTT 116 vs 25 us; paging time 59 vs 28 ms; RTT after paging 63 vs
30 ms; packets with elevated RTT 608 vs 294.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import SystemConfig
from ..traffic.measurement import LatencySeries, percentile
from .common import DataPlaneScenario

__all__ = ["PagingObservation", "paging_data_plane"]


@dataclass
class PagingObservation:
    """Table 1's row for one system, plus the Fig 13 time series."""

    system: str
    base_rtt_s: float
    paging_time_s: float
    rtt_after_paging_s: float
    elevated_packets: int
    dropped: int
    series: LatencySeries

    def as_row(self) -> dict:
        return {
            "system": self.system,
            "base_rtt_us": self.base_rtt_s * 1e6,
            "paging_time_ms": self.paging_time_s * 1e3,
            "rtt_after_paging_ms": self.rtt_after_paging_s * 1e3,
            "elevated_packets": self.elevated_packets,
            "dropped": self.dropped,
        }


def paging_data_plane(
    config: SystemConfig,
    costs: CostModel = DEFAULT_COSTS,
    rate_pps: float = 10_000,
    warmup: float = 0.5,
    tail: float = 0.5,
) -> PagingObservation:
    """Run the paging data-plane experiment on one system.

    Timeline: DL traffic flows [0, warmup) to establish the base RTT;
    the UE goes idle; traffic resumes at t_idle and triggers paging;
    measurement continues for ``tail`` seconds after.
    """
    scenario = DataPlaneScenario(config, costs=costs, num_ues=1)
    scenario.setup()
    env = scenario.env
    info = scenario.sessions[0]
    ue = scenario.ue(info)

    # Phase 1: steady-state traffic for the base RTT.
    scenario.start_downlink(info, rate_pps=rate_pps, duration=warmup)
    env.run(until=env.now + warmup + 0.01)

    # Phase 2: the UE goes idle (AN release installs BUFF+NOCP).
    paging_done = {}

    def release():
        yield from scenario.runner.release_to_idle(ue)

    env.process(release())
    env.run()

    # Phase 3: DL traffic resumes; the first packet triggers paging.
    def on_report(report):
        def page():
            result = yield from scenario.runner.page_ue(ue)
            paging_done["result"] = result

        env.process(page())

    scenario.core.on_report = on_report
    resume_at = env.now
    scenario.start_downlink(
        info, rate_pps=rate_pps, start=0.0, duration=tail
    )
    env.run()

    if "result" not in paging_done:
        raise RuntimeError("paging never completed")
    paging_result = paging_done["result"]
    # Paging time as the paper counts it: from the DL packet arriving
    # at the idle UPF to forwarding being re-enabled.
    paging_time = paging_result.completed_at - resume_at

    series = info.series
    base = percentile(series.window(0.0, warmup), 0.5)
    # RTT right after paging: the maximum observed (first buffered pkt
    # plus the drain tail).
    after = max(series.window(resume_at, env.now))
    elevated = sum(1 for rtt in series.rtts if rtt > 3 * base)
    session = scenario.core.sessions.by_seid(
        scenario.core.smf.context_for(info.supi, 1).seid
    )
    return PagingObservation(
        system=config.name,
        base_rtt_s=base,
        paging_time_s=paging_time,
        rtt_after_paging_s=after,
        elevated_packets=elevated,
        dropped=session.buffer.dropped,
        series=series,
    )
