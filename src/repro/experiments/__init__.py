"""One module per paper figure/table (see DESIGN.md's experiment index).

* :mod:`~repro.experiments.fig06` — serialization overheads (measured)
* :mod:`~repro.experiments.fig07` — PFCP message latency
* :mod:`~repro.experiments.fig08` — UE event completion times
* :mod:`~repro.experiments.fig09` — SBI speedup over HTTP
* :mod:`~repro.experiments.fig10` — data-plane throughput/latency + 40G
* :mod:`~repro.experiments.fig11` — PDR classifier sweep (measured)
* :mod:`~repro.experiments.fig12` — page load time under handovers
* :mod:`~repro.experiments.fig13` — paging data-plane latency (Table 1)
* :mod:`~repro.experiments.fig14` — handover data-plane latency (Table 2)
* :mod:`~repro.experiments.smart_buffering` — §5.4.2 Eqs 1-2
* :mod:`~repro.experiments.fig15` — failover (control + data planes)
* :mod:`~repro.experiments.fig16` — failover during handover
* :mod:`~repro.experiments.fig17` — repeated handovers (Appendix C)
"""

from . import (
    common,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    smart_buffering,
)

__all__ = [
    "common",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "smart_buffering",
]
