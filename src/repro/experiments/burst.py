"""Measured burst-size sweep over the UPF-U pipeline.

Unlike :func:`repro.experiments.fig10.burst_scaling` (which *models*
per-poll overhead amortization with the cost model), this experiment
**measures** the Python pipeline: the same steady-state cache-hit
workload as the platform micro-benchmarks, processed one packet per
call (``burst_size == 1``) versus through
:meth:`~repro.up.upf_u.UPFUserPlane.process_burst` at increasing burst
sizes.  The gain is real call-count amortization — one key-build pass,
one bulk cache probe per distinct flow, one stats fold per burst —
exactly the lever L25GC's NFV platform pulls with DPDK burst dequeue.

Records from this sweep land in ``BENCH_burst.json`` via
``benchmarks/record_bench.py --suite burst``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from ..classifier import Rule, exact
from ..net.packet import Direction, FiveTuple, Packet
from ..pfcp import ies as pfcp_ies
from ..sim import Environment
from ..up import FAR, FARAction, PDR, SessionTable, UPFSession, UPFUserPlane

__all__ = [
    "BURST_SIZES",
    "BurstSweepRow",
    "build_burst_upf",
    "packet_pool",
    "burst_sweep",
]

#: The swept burst sizes (packets per ``process_burst`` call).
BURST_SIZES = (1, 4, 8, 16, 32, 64)

UE_IP = 0x0A3C0001
GNB_ADDRESS = 0xC0A80201
#: Non-matching PDRs padding the session, so a cache miss pays a
#: realistic classifier walk (matches the platform micro-benchmark).
FILLER_PDRS = 64


@dataclass
class BurstSweepRow:
    """One burst size's steady-state cache-hit cost."""

    burst_size: int
    flows: int
    packets: int
    per_packet_us: float
    #: Wall-clock speedup over the one-packet-per-call baseline.
    speedup_vs_burst1: float

    @property
    def throughput_pps(self) -> float:
        return 1e6 / self.per_packet_us


def build_burst_upf(
    flow_cache: bool = True, filler_pdrs: int = FILLER_PDRS
) -> UPFUserPlane:
    """A UPF-U with one session whose DL PDR sits behind ``filler_pdrs``
    non-matching rules (the uncached walk has a realistic match to pay).
    """
    table = SessionTable()
    upf_u = UPFUserPlane(Environment(), table, flow_cache=flow_cache)
    session = UPFSession(seid=1, ue_ip=UE_IP, ul_teid=0x100)
    session.install_far(
        FAR(
            far_id=2,
            action=FARAction(
                destination_interface=pfcp_ies.ACCESS,
                outer_teid=0x500,
                outer_address=GNB_ADDRESS,
            ),
        )
    )
    session.install_pdr(
        PDR(
            pdr_id=2,
            precedence=10,
            match=Rule.from_fields(
                priority=100,
                rule_id=2,
                far_id=2,
                dst_ip=exact(UE_IP),
                source_iface=exact(pfcp_ies.CORE),
            ),
            far_id=2,
            source_interface=pfcp_ies.CORE,
        )
    )
    for i in range(filler_pdrs):
        session.install_pdr(
            PDR(
                pdr_id=100 + i,
                precedence=1,
                match=Rule.from_fields(
                    priority=500 + i,
                    rule_id=100 + i,
                    far_id=2,
                    dst_ip=exact(UE_IP),
                    dst_port=exact(10000 + i),
                    source_iface=exact(pfcp_ies.CORE),
                ),
                far_id=2,
                source_interface=pfcp_ies.CORE,
            )
        )
    table.add(session)
    return upf_u


def packet_pool(flows: int = 8, pool_size: int = 64) -> List[Packet]:
    """``pool_size`` distinct DL packet objects over ``flows`` flows.

    Distinct objects matter: a burst must never contain the same packet
    object twice (keys are built before any application mutates
    ``packet.teid``), so the pool is sliced into bursts of distinct
    packets and recycled across bursts.
    """
    return [
        Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(
                src_ip=1,
                dst_ip=UE_IP,
                src_port=80 + (i % flows),
                dst_port=4000,
            ),
            size=128,
        )
        for i in range(pool_size)
    ]


def _steady_state_us(
    upf_u: UPFUserPlane,
    pool: Sequence[Packet],
    burst_size: int,
    packets: int,
) -> float:
    """Mean per-packet microseconds at steady state (cache warm)."""
    for packet in pool:  # warm: fill the cache / fault the code paths
        upf_u.process(packet)
        packet.teid = None
    pool_size = len(pool)
    if burst_size == 1:
        process = upf_u.process
        begin = time.perf_counter()
        for i in range(packets):
            packet = pool[i % pool_size]
            packet.teid = None  # undo the previous pass's GTP encap
            process(packet)
        elapsed = time.perf_counter() - begin
    else:
        process_burst = upf_u.process_burst
        bursts = []
        offset = 0
        for _ in range(packets // burst_size):
            if offset + burst_size > pool_size:
                offset = 0
            bursts.append(pool[offset:offset + burst_size])
            offset += burst_size
        begin = time.perf_counter()
        for burst in bursts:
            for packet in burst:
                packet.teid = None  # undo the previous pass's GTP encap
            process_burst(burst)
        elapsed = time.perf_counter() - begin
        packets = len(bursts) * burst_size
    return elapsed / packets * 1e6


def burst_sweep(
    burst_sizes: Sequence[int] = BURST_SIZES,
    flows: int = 8,
    packets: int = 4096,
    repeats: int = 3,
    flow_cache: bool = True,
) -> List[BurstSweepRow]:
    """The measured sweep: per-packet cost vs. burst size.

    Each point takes the best of ``repeats`` runs (standard
    micro-benchmark practice — the minimum is the least noisy estimate
    of the true cost) on a freshly built UPF with a warm cache.
    """
    rows: List[BurstSweepRow] = []
    pool_size = max(64, max(burst_sizes))

    def measure(burst_size: int) -> float:
        return min(
            _steady_state_us(
                build_burst_upf(flow_cache=flow_cache),
                packet_pool(flows=flows, pool_size=pool_size),
                burst_size,
                packets,
            )
            for _ in range(repeats)
        )

    base_us = measure(1)
    for burst_size in burst_sizes:
        best_us = base_us if burst_size == 1 else measure(burst_size)
        rows.append(
            BurstSweepRow(
                burst_size=burst_size,
                flows=flows,
                packets=packets,
                per_packet_us=best_us,
                speedup_vs_burst1=base_us / best_us,
            )
        )
    return rows
