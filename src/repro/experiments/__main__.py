"""Command-line runner for the reproduction experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig08
    python -m repro.experiments table1 table2
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Sequence


def _print_rows(title: str, header: Sequence[str], rows) -> None:
    print(f"\n=== {title} ===")
    rows = [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(row[i]) for row in rows)) + 2
        if rows
        else len(col) + 2
        for i, col in enumerate(header)
    ]
    print("".join(col.ljust(w) for col, w in zip(header, widths)))
    for row in rows:
        print("".join(cell.ljust(w) for cell, w in zip(row, widths)))


def run_fig06() -> None:
    from .fig06 import measure_serialization

    _print_rows(
        "Fig 6: serialization overheads",
        ["format", "ser_us", "deser_us", "proto_us", "total_us", "bytes"],
        [
            (r.format, r.serialize_s * 1e6, r.deserialize_s * 1e6,
             r.protocol_s * 1e6, r.total_s * 1e6, r.encoded_bytes)
            for r in measure_serialization()
        ],
    )


def run_fig07() -> None:
    from .fig07 import pfcp_message_latency

    _print_rows(
        "Fig 7: PFCP message latency",
        ["message", "free5gc_us", "l25gc_us", "reduction_%"],
        [
            (r.message, r.free5gc_s * 1e6, r.l25gc_s * 1e6,
             r.reduction * 100)
            for r in pfcp_message_latency()
        ],
    )


def run_fig08() -> None:
    from .fig08 import event_completion_times

    _print_rows(
        "Fig 8: UE event completion time (ms)",
        ["event", "free5gc", "onvm-upf", "l25gc", "reduction_%"],
        [
            (r.event, r.free5gc_s * 1e3, r.onvm_upf_s * 1e3,
             r.l25gc_s * 1e3, r.reduction * 100)
            for r in event_completion_times()
        ],
    )


def run_fig09() -> None:
    from .fig09 import average_speedup, communication_speedup

    rows = communication_speedup()
    _print_rows(
        "Fig 9: speedup over HTTP",
        ["message", "http_us", "shm_us", "speedup_x"],
        [(r.message, r.http_s * 1e6, r.shm_s * 1e6, r.speedup) for r in rows],
    )
    print(f"average: {average_speedup(rows):.1f}x")


def run_fig10() -> None:
    from .fig10 import (
        latency_vs_packet_size,
        scaling_40g,
        throughput_vs_packet_size,
    )

    _print_rows(
        "Fig 10(a,b): throughput (Gbps)",
        ["size", "free_uni", "l25gc_uni", "ratio", "free_bi", "l25gc_bi"],
        [
            (r.size, r.free5gc_uni_gbps, r.l25gc_uni_gbps, r.uni_ratio,
             r.free5gc_bidir_gbps, r.l25gc_bidir_gbps)
            for r in throughput_vs_packet_size()
        ],
    )
    _print_rows(
        "Fig 10(c): latency (us)",
        ["size", "free5gc", "l25gc"],
        [
            (r.size, r.free5gc_s * 1e6, r.l25gc_s * 1e6)
            for r in latency_vs_packet_size()
        ],
    )
    _print_rows(
        "40G scaling",
        ["cores", "gbps"],
        [(r.cores, r.mtu_gbps) for r in scaling_40g()],
    )


def run_fig11() -> None:
    from .fig11 import CLASSIFIER_VARIANTS, lookup_latency_sweep, update_latency

    variants = list(CLASSIFIER_VARIANTS)
    _print_rows(
        "Fig 11: PDR lookup latency (us)",
        ["rules"] + variants,
        [
            tuple([r.rules] + [r.latency_s[v] * 1e6 for v in variants])
            for r in lookup_latency_sweep()
        ],
    )
    _print_rows(
        "PDR update latency (us)",
        ["variant", "update_us"],
        [(r.variant, r.update_s * 1e6) for r in update_latency()],
    )


def run_fig12() -> None:
    from .fig12 import page_load_under_handovers

    c = page_load_under_handovers()
    _print_rows(
        "Fig 12: page load under handovers",
        ["system", "plt_s", "stall_ms", "spurious", "rtx"],
        [
            ("free5gc", c.free5gc.plt, c.free5gc_stall_s * 1e3,
             c.free5gc.spurious_timeouts, c.free5gc.retransmissions),
            ("l25gc", c.l25gc.plt, c.l25gc_stall_s * 1e3,
             c.l25gc.spurious_timeouts, c.l25gc.retransmissions),
        ],
    )
    print(f"PLT improvement: {c.plt_improvement * 100:.1f}%")


def run_table1() -> None:
    from ..cp.core5g import SystemConfig
    from .fig13 import paging_data_plane

    _print_rows(
        "Table 1: paging event",
        ["system", "base_rtt_us", "paging_ms", "after_ms", "elevated",
         "dropped"],
        [
            tuple(paging_data_plane(cfg).as_row().values())
            for cfg in (SystemConfig.free5gc(), SystemConfig.l25gc())
        ],
    )


def run_table2() -> None:
    from ..cp.core5g import SystemConfig
    from .fig14 import handover_data_plane

    rows = []
    for sessions in (1, 4):
        for cfg in (SystemConfig.free5gc(), SystemConfig.l25gc()):
            rows.append(
                tuple(
                    handover_data_plane(
                        cfg, concurrent_sessions=sessions
                    ).as_row().values()
                )
            )
    _print_rows(
        "Table 2: handover event",
        ["system", "expt", "base_rtt_us", "ho_ms", "after_ms", "elevated",
         "dropped"],
        rows,
    )


def run_smart_buffering() -> None:
    from .smart_buffering import smart_buffering_cases

    rows = []
    for case, entries in smart_buffering_cases().items():
        for entry in entries:
            rows.append(
                (case, entry.scheme, entry.buffer_packets, entry.drops,
                 entry.one_way_delay_s * 1e3)
            )
    _print_rows(
        "§5.4.2: Eqs 1-2",
        ["case", "scheme", "buffer", "drops", "one_way_ms"],
        rows,
    )


def run_fig15() -> None:
    from .fig15 import control_plane_failover, data_plane_failover

    cp = control_plane_failover()
    _print_rows(
        "§5.5.1: failover (control plane)",
        ["scheme", "completion_ms"],
        [
            ("l25gc no-failure", cp.l25gc_ho_without_failure_s * 1e3),
            ("l25gc failure", cp.l25gc_ho_with_failure_s * 1e3),
            ("3gpp reattach", cp.reattach_ho_with_failure_s * 1e3),
        ],
    )
    _print_rows(
        "Fig 15: failover (data plane)",
        ["scheme", "outage_ms", "lost", "replayed", "rtx"],
        [
            (name, r.outage_s * 1e3, r.packets_lost, r.packets_replayed,
             r.retransmissions)
            for name, r in data_plane_failover().items()
        ],
    )


def run_fig16() -> None:
    from .fig16 import failover_during_handover

    _print_rows(
        "Fig 16: failover during handover",
        ["scheme", "stall_ms", "before_Mbps", "after_Mbps", "MB", "rtx"],
        [
            (name, r.stall_s * 1e3, r.goodput_before_bps / 1e6,
             r.goodput_after_bps / 1e6,
             r.total_transferred_bytes / (1 << 20), r.retransmissions)
            for name, r in failover_during_handover().items()
        ],
    )


def run_fig17() -> None:
    from .fig17 import repeated_handovers

    _print_rows(
        "Fig 17: repeated handovers",
        ["system", "HOs", "MB", "rtx", "spurious", "max_rtt_ms"],
        [
            (name, r.handovers, r.transferred_bytes / (1 << 20),
             r.retransmissions, r.spurious_timeouts, r.max_rtt_s * 1e3)
            for name, r in repeated_handovers().items()
        ],
    )


def run_scalability() -> None:
    from ..cp.core5g import SystemConfig
    from .scalability import classifier_ablation, session_scale_sweep

    _print_rows(
        "Ablation: session scaling (L25GC)",
        ["sessions", "reg_ms", "est_ms", "total_s", "messages"],
        [
            (r.sessions, r.mean_registration_s * 1e3,
             r.mean_session_establishment_s * 1e3, r.total_onboarding_s,
             r.control_messages)
            for r in session_scale_sweep(SystemConfig.l25gc())
        ],
    )
    _print_rows(
        "Ablation: classifier inside the UPF",
        ["rules/session", "PDR-LL_us", "PDR-PS_us", "speedup"],
        [
            (r.rules_per_session, r.lookup_us["PDR-LL"],
             r.lookup_us["PDR-PS"], r.speedup())
            for r in classifier_ablation()
        ],
    )


def run_shard_scale() -> None:
    from .scalability import shard_scale_sweep

    # CLI-sized sweep; the committed BENCH_shard.json carries the full
    # 10k -> 1M grid (python benchmarks/record_bench.py --suite shard).
    _print_rows(
        "Scale-out: sessions x UPF-U shards (RSS dispatch)",
        ["sessions", "shards", "p50_us", "p99_us", "Mpps/shard",
         "Mpps_total", "skew", "hit_rate"],
        [
            (r.sessions, r.shards, r.p50_us, r.p99_us,
             r.modeled_mpps_per_shard, r.modeled_mpps_total,
             r.load_skew, r.flow_cache_hit_rate)
            for r in shard_scale_sweep(
                session_counts=(10_000, 125_000),
                shard_counts=(1, 2, 4, 8),
            )
        ],
    )


def run_burst() -> None:
    from .burst import burst_sweep
    from .fig10 import burst_scaling

    # CLI-sized measured sweep; the committed BENCH_burst.json carries
    # the full grid (python benchmarks/record_bench.py --suite burst).
    _print_rows(
        "Burst sweep (measured): per-packet cost on the cache-hit path",
        ["burst", "us/pkt", "speedup_vs_1", "Mpps"],
        [
            (r.burst_size, r.per_packet_us, r.speedup_vs_burst1,
             r.throughput_pps / 1e6)
            for r in burst_sweep(packets=16384, repeats=2)
        ],
    )
    _print_rows(
        "Burst scaling (modeled): 68 B forwarding rate vs burst size",
        ["burst", "L25GC_Mpps", "free5GC_Mpps", "us/pkt"],
        [
            (r.burst_size, r.l25gc_mpps, r.free5gc_mpps,
             r.l25gc_per_packet_us)
            for r in burst_scaling()
        ],
    )


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "table1": run_table1,
    "table2": run_table2,
    "smart-buffering": run_smart_buffering,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "scalability": run_scalability,
    "shard-scale": run_shard_scale,
    "burst": run_burst,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the L25GC paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names, 'list', or 'all'",
    )
    args = parser.parse_args(argv)
    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = (
        list(EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(try 'list')"
        )
    for name in names:
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
