"""Fig 7 — single PFCP message latency between SMF and UPF-C.

The paper measures the latency of the session messages most critical
to UE events (establishment, modification, report) over free5GC's
kernel UDP socket vs. L25GC's shared memory, and finds a 21-39 %
reduction — far below the SBI's 13x because the (channel-independent)
PFCP handler dominates.

The experiment *runs* the exchange through the message bus rather than
summing constants, so it also validates the transport plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.costs import DEFAULT_COSTS, Channel, CostModel
from ..core.transport import MessageBus
from ..pfcp.builder import (
    build_downlink_report,
    build_path_switch,
    build_session_establishment,
)
from ..pfcp.messages import PFCPMessage
from ..sim.engine import Environment

__all__ = ["PFCPLatencyRow", "pfcp_message_latency", "MESSAGE_BUILDERS"]


def _establishment() -> PFCPMessage:
    return build_session_establishment(
        seid=1,
        sequence=1,
        ue_ip=0x0A3C0001,
        upf_address=0xC0A80102,
        ul_teid=0x1000,
        gnb_address=0xC0A80101,
        dl_teid=0x2000,
    )


def _modification() -> PFCPMessage:
    return build_path_switch(
        seid=1, sequence=2, new_gnb_address=0xC0A80103, new_dl_teid=0x3000
    )


def _report() -> PFCPMessage:
    return build_downlink_report(seid=1, sequence=3)


MESSAGE_BUILDERS = {
    "SessionEstablishment": _establishment,
    "SessionModification": _modification,
    "SessionReport": _report,
}


@dataclass
class PFCPLatencyRow:
    """One message group of Fig 7."""

    message: str
    free5gc_s: float
    l25gc_s: float

    @property
    def reduction(self) -> float:
        """Fractional latency reduction of L25GC over free5GC."""
        return 1.0 - self.l25gc_s / self.free5gc_s


def _one_way_latency(
    message: PFCPMessage, channel: Channel, costs: CostModel
) -> float:
    """Run one SMF -> UPF-C delivery on a bus; return total latency."""
    env = Environment()
    bus = MessageBus(env, costs, default_channel=channel)
    bus.register("upf-c", lambda m, b: None)
    done = bus.send(
        "smf",
        "upf-c",
        message,
        channel=channel,
        size=len(message.encode()),
        handler_time=message.HANDLER_TIME,
    )
    env.run()
    if not done.triggered:
        raise RuntimeError("message was not delivered")
    record = bus.log[-1]
    return record.total_latency


def pfcp_message_latency(
    costs: CostModel = DEFAULT_COSTS,
) -> List[PFCPLatencyRow]:
    """Fig 7's rows: each message over UDP vs shared memory."""
    rows: List[PFCPLatencyRow] = []
    for name, builder in MESSAGE_BUILDERS.items():
        rows.append(
            PFCPLatencyRow(
                message=name,
                free5gc_s=_one_way_latency(
                    builder(), Channel.UDP_PFCP, costs
                ),
                l25gc_s=_one_way_latency(
                    builder(), Channel.SHARED_MEMORY, costs
                ),
            )
        )
    return rows
