"""Fig 11 — PDR lookup latency and throughput vs. rule count.

Unlike the DES-based figures, this experiment is a **real
measurement**: the three classifiers are actual data structures and we
time actual lookups over ClassBench-style PDR sets with 20 PDI IEs.
The paper's shape to reproduce:

* PDR-TSS_Best is flat (one hash probe) and beats PDR-LL beyond a few
  dozen rules;
* PDR-TSS_Worst degenerates (N probes) and leaves the chart by ~100
  rules;
* PDR-PS is the best across the sweep, both latency and throughput;
* updates: LL < TSS < PS in cost, but all within the same order
  (the paper: 0.38 / 1.41 / 6.14 us).

Absolute numbers are Python-speed, not C-speed; ratios and crossovers
are what the benchmarks assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..classifier.base import Classifier
from ..classifier.classbench import (
    PROFILE_BEST,
    PROFILE_MIXED,
    PROFILE_WORST,
    ClassBenchGenerator,
)
from ..classifier.linear import LinearClassifier
from ..classifier.partition_sort import PartitionSortClassifier
from ..classifier.rule import PacketKey
from ..classifier.tss import TupleSpaceClassifier
from ..up.flow_cache import FlowCache, RuleEpoch

__all__ = [
    "RULE_COUNTS",
    "LookupRow",
    "lookup_latency_sweep",
    "UpdateRow",
    "update_latency",
    "build_classifier",
    "CLASSIFIER_VARIANTS",
    "CachedLookupRow",
    "cached_lookup_sweep",
    "BulkProbeRow",
    "bulk_probe_sweep",
]

#: The swept rule-set sizes (the paper sweeps to several thousand).
RULE_COUNTS = (2, 10, 50, 100, 500, 1000, 2000)

#: Fig 11's lines: name -> (classifier class, generator profile).
CLASSIFIER_VARIANTS: Dict[str, tuple] = {
    "PDR-LL": (LinearClassifier, PROFILE_MIXED),
    "PDR-TSS_Best": (TupleSpaceClassifier, PROFILE_BEST),
    "PDR-TSS_Worst": (TupleSpaceClassifier, PROFILE_WORST),
    "PDR-PS": (PartitionSortClassifier, PROFILE_MIXED),
}


def build_classifier(
    variant: str, rule_count: int, seed: int = 7
) -> tuple:
    """(classifier, matching keys) for one Fig 11 data point."""
    classifier_class, profile = CLASSIFIER_VARIANTS[variant]
    generator = ClassBenchGenerator(seed=seed, profile=profile)
    rules = generator.rules(rule_count)
    if variant == "PDR-LL":
        # The paper assumes the match lands in the second half of the
        # list: drop keys matching the top half by construction of the
        # trace from low-priority rules only.
        by_priority = sorted(rules, key=lambda rule: -rule.priority)
        trace_rules = by_priority[len(by_priority) // 2 :]
    elif variant == "PDR-TSS_Worst":
        # Assume the match is in the last probed sub-table.
        trace_rules = rules[-max(1, rule_count // 10) :]
    else:
        trace_rules = rules
    keys = generator.matching_keys(trace_rules, 256)
    classifier = classifier_class()
    classifier.extend(rules)
    return classifier, keys


@dataclass
class LookupRow:
    """Mean lookup latency per variant at one rule count."""

    rules: int
    latency_s: Dict[str, float] = field(default_factory=dict)

    def throughput_pps(self, variant: str) -> float:
        return 1.0 / self.latency_s[variant]


def _time_lookups(classifier: Classifier, keys: Sequence[PacketKey]) -> float:
    begin = time.perf_counter()
    for key in keys:
        classifier.lookup(key)
    return (time.perf_counter() - begin) / len(keys)


def lookup_latency_sweep(
    rule_counts: Sequence[int] = RULE_COUNTS,
    variants: Sequence[str] = tuple(CLASSIFIER_VARIANTS),
    seed: int = 7,
) -> List[LookupRow]:
    """Fig 11(a)/(b): mean lookup latency per variant per rule count."""
    rows: List[LookupRow] = []
    for count in rule_counts:
        row = LookupRow(rules=count)
        for variant in variants:
            classifier, keys = build_classifier(variant, count, seed)
            row.latency_s[variant] = _time_lookups(classifier, keys)
        rows.append(row)
    return rows


@dataclass
class CachedLookupRow:
    """Flow-cache ablation at one rule count: steady-state hit vs the
    uncached classifier walk (both real, wall-clock measurements)."""

    rules: int
    uncached_s: float
    cached_s: float

    @property
    def speedup(self) -> float:
        return self.uncached_s / self.cached_s


def cached_lookup_sweep(
    rule_counts: Sequence[int] = RULE_COUNTS,
    variant: str = "PDR-PS",
    flows: int = 64,
    seed: int = 7,
) -> List[CachedLookupRow]:
    """The 5GC²ache ablation: memoized decision vs full classification.

    For each rule count, a :class:`~repro.up.flow_cache.FlowCache` is
    warmed with ``flows`` distinct packet keys (the steady-state
    working set) and the per-lookup latency of cache hits is measured
    against the same keys walking the raw classifier.  The gap is what
    the UPF-U fast path saves per steady-state packet; it widens with
    the rule count because the cached probe is O(1) while every
    classifier costs more as rules grow.
    """
    rows: List[CachedLookupRow] = []
    for count in rule_counts:
        classifier, keys = build_classifier(variant, count, seed)
        working_set = keys[:flows]
        cache = FlowCache(RuleEpoch(), capacity=max(flows * 2, 128))
        for key in working_set:
            cache.insert(key, None, classifier.lookup(key), None)
        # Interleave the working set the way steady-state traffic does.
        trace = [working_set[i % len(working_set)] for i in range(512)]
        begin = time.perf_counter()
        for key in trace:
            classifier.lookup(key)
        uncached = (time.perf_counter() - begin) / len(trace)
        begin = time.perf_counter()
        for key in trace:
            cache.lookup(key)
        cached = (time.perf_counter() - begin) / len(trace)
        rows.append(
            CachedLookupRow(rules=count, uncached_s=uncached, cached_s=cached)
        )
    return rows


@dataclass
class BulkProbeRow:
    """Per-key probe cost: singleton ``lookup`` vs bulk ``lookup_many``
    at one burst size (both real, wall-clock measurements)."""

    burst_size: int
    flows: int
    lookup_s: float
    lookup_many_s: float

    @property
    def speedup(self) -> float:
        return self.lookup_s / self.lookup_many_s


def bulk_probe_sweep(
    burst_sizes: Sequence[int] = (1, 4, 8, 16, 32, 64),
    flows: int = 64,
    rules: int = 1000,
    variant: str = "PDR-PS",
    trace_len: int = 4096,
    seed: int = 7,
) -> List[BulkProbeRow]:
    """The burst-probe ablation behind ``process_burst``'s cache stage.

    A warm :class:`~repro.up.flow_cache.FlowCache` is probed with the
    same steady-state trace two ways: one :meth:`~FlowCache.lookup`
    call per key (an epoch load, an LRU touch, and counter updates
    each) versus :meth:`~FlowCache.lookup_many` over ``burst_size``
    chunks (one epoch load per chunk, raw probes only — the LRU /
    counter effects replay later in ``commit_burst``).  The gap is the
    per-packet probe overhead the burst pipeline amortizes.
    """
    classifier, keys = build_classifier(variant, rules, seed)
    working_set = keys[:flows]
    cache = FlowCache(RuleEpoch(), capacity=max(flows * 2, 128))
    for key in working_set:
        cache.insert(key, None, classifier.lookup(key), None)
    trace = [working_set[i % len(working_set)] for i in range(trace_len)]
    begin = time.perf_counter()
    for key in trace:
        cache.lookup(key)
    single = (time.perf_counter() - begin) / len(trace)
    rows: List[BulkProbeRow] = []
    for burst in burst_sizes:
        chunks = [
            trace[i:i + burst] for i in range(0, len(trace), burst)
        ]
        begin = time.perf_counter()
        for chunk in chunks:
            cache.lookup_many(chunk)
        bulk = (time.perf_counter() - begin) / len(trace)
        rows.append(
            BulkProbeRow(
                burst_size=burst,
                flows=flows,
                lookup_s=single,
                lookup_many_s=bulk,
            )
        )
    return rows


@dataclass
class UpdateRow:
    """§5.3 'PDR update comparison': mean single-update latency."""

    variant: str
    update_s: float


def update_latency(
    rule_count: int = 1000, updates: int = 50, seed: int = 11
) -> List[UpdateRow]:
    """Average latency of a single PDR update, repeated ``updates``
    times (the paper's methodology)."""
    rows: List[UpdateRow] = []
    for variant in ("PDR-LL", "PDR-TSS_Best", "PDR-PS"):
        classifier_class, profile = CLASSIFIER_VARIANTS[variant]
        generator = ClassBenchGenerator(seed=seed, profile=profile)
        rules = generator.rules(rule_count + updates)
        classifier = classifier_class()
        classifier.extend(rules[:rule_count])
        victims = rules[rule_count:]
        begin = time.perf_counter()
        for rule in victims:
            classifier.insert(rule)
            classifier.remove(rule)
        elapsed = time.perf_counter() - begin
        rows.append(
            UpdateRow(variant=variant, update_s=elapsed / (2 * updates))
        )
    return rows
