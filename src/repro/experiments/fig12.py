"""Fig 12 / §5.4.1 — page load time under intermittent handovers.

A Firefox-like page load (six parallel TCP connections, ~15 MB images)
runs through a 30 Mbps / 20 ms bottleneck while the UE hands over
periodically.  Each handover stalls the downlink for that system's
measured handover duration (derived from the Fig 8 procedures, not
hard-coded): free5GC's stall exceeds the 200 ms minimum RTO and causes
spurious retransmissions and cwnd collapse; L25GC's does not.

Expected shape: PLT ~32 s vs ~28 s (a ~12.5 % improvement), ~1500
spurious retransmissions for free5GC vs none for L25GC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import SystemConfig
from ..sim.engine import MS, Environment
from ..tcpmodel.tcp import PathModel
from ..tcpmodel.web import PageLoad, PageLoadResult
from .common import run_ue_events

__all__ = ["PageLoadComparison", "page_load_under_handovers", "measured_handover_stall"]


def measured_handover_stall(
    config: SystemConfig, costs: CostModel = DEFAULT_COSTS
) -> float:
    """The DL stall one handover imposes: the measured HO duration
    plus the buffered-drain tail at the configured data rate."""
    results = run_ue_events(config, costs=costs)
    duration = results["handover"].duration
    # Buffered packets re-inject after the switch; at web data rates
    # (~2.5 kpps of MTU packets at 30 Mbps) the tail is the count times
    # the per-packet re-injection cost.
    buffered = 2500 * duration
    drain = buffered * costs.buffer_reinject(config.fast_path)
    return duration + drain


@dataclass
class PageLoadComparison:
    """Fig 12's summary for both systems."""

    free5gc: PageLoadResult
    l25gc: PageLoadResult
    free5gc_stall_s: float
    l25gc_stall_s: float

    @property
    def plt_improvement(self) -> float:
        return 1.0 - self.l25gc.plt / self.free5gc.plt


def _load_with_stalls(
    stall: float,
    handover_period: float,
    bandwidth_bps: float,
    base_rtt: float,
) -> PageLoadResult:
    env = Environment()
    path = PathModel(bandwidth_bps=bandwidth_bps, base_rtt=base_rtt)
    # Handovers recur for the whole plausible load window.
    for index in range(1, 40):
        path.add_interruption(start=handover_period * index, duration=stall)
    return PageLoad(env, path).run()


def page_load_under_handovers(
    costs: CostModel = DEFAULT_COSTS,
    handover_period: float = 3.0,
    bandwidth_bps: float = 30e6,
    base_rtt: float = 20 * MS,
    free5gc_stall: Optional[float] = None,
    l25gc_stall: Optional[float] = None,
) -> PageLoadComparison:
    """Run the Fig 12 experiment end to end.

    The stalls default to the durations measured from the actual
    handover procedures (§5.2) — pass overrides to ablate.
    """
    if free5gc_stall is None:
        free5gc_stall = measured_handover_stall(
            SystemConfig.free5gc(), costs
        )
    if l25gc_stall is None:
        l25gc_stall = measured_handover_stall(SystemConfig.l25gc(), costs)
    return PageLoadComparison(
        free5gc=_load_with_stalls(
            free5gc_stall, handover_period, bandwidth_bps, base_rtt
        ),
        l25gc=_load_with_stalls(
            l25gc_stall, handover_period, bandwidth_bps, base_rtt
        ),
        free5gc_stall_s=free5gc_stall,
        l25gc_stall_s=l25gc_stall,
    )
