"""Fig 6 — serialization, deserialization and protocol overheads.

The paper exchanges a ``PostSmContextsRequest`` between two co-located
NFs and breaks down the cost per serializing structure: JSON
(free5GC's REST), Protobuf (Buyakar et al.), FlatBuffers (Neutrino) and
L25GC's shared-memory descriptor passing.

Here the serialize/deserialize columns are **measured** on the real
codecs of :mod:`repro.sbi.codecs`; the protocol column (kernel sockets,
TCP/HTTP processing, copies — zero for shared memory) comes from the
calibrated cost model, since Python cannot observe a kernel it bypasses.
The paper's qualitative claims that must hold:

* FlatBuffers' deserialization is near zero but its *protocol* cost
  remains — optimized serialization alone cannot fix the SBI;
* shared memory eliminates all three components.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.costs import DEFAULT_COSTS, Channel, CostModel
from ..sbi.codecs import all_codecs
from ..sbi.messages import PostSmContextsRequest

__all__ = ["SerializationRow", "measure_serialization", "CODEC_CHANNELS"]

#: Which modeled transport channel each codec rides.
CODEC_CHANNELS: Dict[str, Channel] = {
    "json": Channel.HTTP_JSON,
    "protobuf": Channel.HTTP_PROTOBUF,
    "flatbuffers": Channel.HTTP_FLATBUFFERS,
    "shm-descriptor": Channel.SHARED_MEMORY,
}


@dataclass
class SerializationRow:
    """One bar group of Fig 6."""

    format: str
    serialize_s: float
    deserialize_s: float
    protocol_s: float
    encoded_bytes: int

    @property
    def total_s(self) -> float:
        return self.serialize_s + self.deserialize_s + self.protocol_s


def _measure(operation: Callable[[], object], repeats: int) -> float:
    """Median wall time of ``operation`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        operation()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return samples[len(samples) // 2]


def measure_serialization(
    repeats: int = 200, costs: CostModel = DEFAULT_COSTS
) -> List[SerializationRow]:
    """Measure every codec on the paper's message; returns Fig 6 rows."""
    message = PostSmContextsRequest()
    rows: List[SerializationRow] = []
    for codec in all_codecs():
        encoded = codec.encode(message)
        serialize = _measure(lambda: codec.encode(message), repeats)
        deserialize = _measure(lambda: codec.decode(encoded), repeats)
        channel = CODEC_CHANNELS[codec.name]
        size = len(encoded) if isinstance(encoded, (bytes, bytearray)) else 0
        if channel is Channel.SHARED_MEMORY:
            # The microbenchmark exchanges a bare descriptor between
            # two pinned NFs — ring ops only, no Go shim in the loop.
            protocol = (
                2 * costs.ring_op
                + costs.manager_dispatch
                + costs.poll_interval
            )
        else:
            protocol = costs.protocol_cost(channel, size or 1024)
        rows.append(
            SerializationRow(
                format=codec.name,
                serialize_s=serialize,
                deserialize_s=deserialize,
                protocol_s=protocol,
                encoded_bytes=size,
            )
        )
    return rows
