"""§5.5.3 + Fig 16 — failure during handover *and* data transfer.

A TCP transfer is in flight; at 4.5 s a handover begins, and halfway
through it the links to the primary 5GC fail.  L25GC replays the
buffered control (handover) packets and forwards the logged data, so
the handover completes a few ms late and goodput barely dips.  The
3GPP approach waits out a re-attach: every buffered packet is lost and
goodput collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.costs import DEFAULT_COSTS, CostModel
from ..sim.engine import MS, Environment
from ..tcpmodel.tcp import InterruptionKind, PathModel, TCPConnection
from .fig15 import control_plane_failover

__all__ = ["FailoverDuringHandover", "failover_during_handover"]


@dataclass
class FailoverDuringHandover:
    """One scheme's Fig 16 outcome."""

    scheme: str
    stall_s: float
    goodput_before_bps: float
    goodput_after_bps: float
    total_transferred_bytes: int
    retransmissions: int
    spurious_timeouts: int


def failover_during_handover(
    costs: CostModel = DEFAULT_COSTS,
    handover_at: float = 4.5,
    run_seconds: float = 12.0,
) -> Dict[str, FailoverDuringHandover]:
    """Run Fig 16 for both schemes.

    The downlink stall each scheme imposes is the handover duration
    plus the failover penalty derived by
    :func:`repro.experiments.fig15.control_plane_failover` — buffered
    (and replayed) for L25GC, dropped for the 3GPP re-attach.
    """
    control = control_plane_failover(costs, failure_fraction=0.5)
    stalls = {
        "l25gc": (
            control.l25gc_ho_with_failure_s,
            InterruptionKind.BUFFERED,
        ),
        "3gpp-reattach": (
            control.reattach_ho_with_failure_s,
            InterruptionKind.DROPPED,
        ),
    }
    results: Dict[str, FailoverDuringHandover] = {}
    for scheme, (stall, kind) in stalls.items():
        env = Environment()
        path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
        path.add_interruption(start=handover_at, duration=stall, kind=kind)
        # A long transfer spanning the whole window.
        connection = TCPConnection(
            env, path, total_bytes=int(30e6 / 8 * run_seconds)
        )
        env.process(connection.run())
        env.run(until=run_seconds)
        stats = connection.stats
        results[scheme] = FailoverDuringHandover(
            scheme=scheme,
            stall_s=stall,
            goodput_before_bps=stats.goodput_bps(
                handover_at - 2.0, handover_at
            ),
            goodput_after_bps=stats.goodput_bps(
                handover_at, min(run_seconds, handover_at + 3.0)
            ),
            total_transferred_bytes=stats.bytes_acked,
            retransmissions=stats.retransmissions,
            spurious_timeouts=stats.spurious_timeouts,
        )
    return results
