"""Shared scenario builders for the per-figure experiment modules.

Everything here is deterministic: the same configuration produces the
same numbers, so the benchmark suite can assert the paper's shape
(who wins, by what factor) without tolerance gymnastics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import FiveGCore, SystemConfig
from ..cp.procedures import EventResult, ProcedureRunner
from ..net.packet import Direction, FiveTuple, Packet
from ..sim.engine import Environment
from ..traffic.generator import ConstantRateGenerator
from ..traffic.measurement import LatencySeries

__all__ = [
    "ALL_SYSTEMS",
    "UE_EVENTS",
    "run_ue_events",
    "DataPlaneScenario",
]

#: The three systems of the evaluation, in the paper's order.
ALL_SYSTEMS: Dict[str, Callable[[], SystemConfig]] = {
    "free5gc": SystemConfig.free5gc,
    "onvm-upf": SystemConfig.onvm_upf,
    "l25gc": SystemConfig.l25gc,
}

#: Fig 8's UE events, in the paper's order.
UE_EVENTS = ("registration", "session-request", "handover", "paging")


def run_ue_events(
    config: SystemConfig,
    costs: CostModel = DEFAULT_COSTS,
    num_ues: int = 1,
) -> Dict[str, EventResult]:
    """Run the full UE lifecycle; returns per-event results.

    With ``num_ues`` > 1 the additional UEs execute the same procedures
    concurrently (the paper checked 1 vs 2 users and saw no perceptible
    difference); the returned results are those of the first UE.
    """
    env = Environment()
    core = FiveGCore(env, config, costs=costs)
    runner = ProcedureRunner(core)
    results: Dict[str, EventResult] = {}

    def lifecycle(index: int):
        ue = core.add_ue(f"imsi-20893000000{index:04d}")
        keep = index == 0
        result = yield from runner.register_ue(ue, gnb_id=1)
        if keep:
            results["registration"] = result
        result = yield from runner.establish_session(ue, pdu_session_id=1)
        if keep:
            results["session-request"] = result
        result = yield from runner.handover(ue, target_gnb_id=2)
        if keep:
            results["handover"] = result
        yield from runner.release_to_idle(ue)
        result = yield from runner.page_ue(ue)
        if keep:
            results["paging"] = result

    for index in range(num_ues):
        env.process(lifecycle(index))
    env.run()
    missing = [event for event in UE_EVENTS if event not in results]
    if missing:
        raise RuntimeError(f"events did not complete: {missing}")
    return results


@dataclass
class SessionInfo:
    """Bookkeeping for one UE's data session in a scenario."""

    supi: str
    ue_ip: int = 0
    flow: Optional[FiveTuple] = None
    series: LatencySeries = field(default_factory=LatencySeries)


class DataPlaneScenario:
    """A core with registered UEs and downlink traffic plumbing.

    Used by the paging/handover/failover data-plane experiments
    (Figs 13-16).  The RAN-side radio latency is zeroed: the paper's
    testbed terminates measurements at the RAN simulator host, so the
    base RTT reflects only the core's forwarding path.
    """

    DN_IP = 0x08080808

    def __init__(
        self,
        config: SystemConfig,
        costs: CostModel = DEFAULT_COSTS,
        num_ues: int = 1,
    ):
        self.env = Environment()
        self.config = config
        self.costs = costs
        self.core = FiveGCore(self.env, config, costs=costs)
        for gnb in self.core.gnbs.values():
            gnb.radio_latency = 0.0
        self.runner = ProcedureRunner(self.core)
        self.sessions: List[SessionInfo] = [
            SessionInfo(supi=f"imsi-20893000001{index:04d}")
            for index in range(num_ues)
        ]
        self.generators: List[ConstantRateGenerator] = []
        self._setup_done = False

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Register every UE and establish its PDU session (instant
        relative to the measurement window — run before t=0 traffic)."""
        if self._setup_done:
            raise RuntimeError("setup already ran")

        def prepare(info: SessionInfo):
            ue = self.core.add_ue(info.supi)
            yield from self.runner.register_ue(ue, gnb_id=1)
            result = yield from self.runner.establish_session(ue)
            info.ue_ip = result.detail["ue_ip"]
            info.flow = FiveTuple(
                src_ip=self.DN_IP,
                dst_ip=info.ue_ip,
                src_port=80,
                dst_port=40000,
            )

        for info in self.sessions:
            self.env.process(prepare(info))
        self.env.run()
        self._setup_done = True
        # Collect deliveries into each session's latency series.
        for info in self.sessions:
            ue = self.core.ues[info.supi]
            series = info.series
            original_deliver = ue.deliver

            def hooked(packet: Packet, now: float, _orig=original_deliver, _series=series):
                _orig(packet, now)
                _series.record_one_way(packet)

            ue.deliver = hooked  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def start_downlink(
        self,
        info: SessionInfo,
        rate_pps: float = 10_000,
        size: int = 128,
        start: float = 0.0,
        duration: Optional[float] = None,
    ) -> ConstantRateGenerator:
        """Constant-rate DL traffic from the DN towards one UE."""
        if info.flow is None:
            raise RuntimeError("call setup() first")
        generator = ConstantRateGenerator(
            self.env,
            sink=self.core.inject_downlink,
            rate_pps=rate_pps,
            flow=info.flow,
            size=size,
            direction=Direction.DOWNLINK,
            start=start,
            duration=duration,
        )
        self.generators.append(generator)
        return generator

    def ue(self, info: SessionInfo):
        return self.core.ues[info.supi]
