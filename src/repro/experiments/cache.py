"""Measured cache-layout experiments: working-set sweep + flow-cache
ablation.

Two studies back the hot/cold session-state split:

* :func:`working_set_sweep` **measures** what
  :func:`repro.experiments.fig10.llc_cliff` *models*: per-decision cost
  as the session working set grows, resolved through the production
  hot-record slab (:class:`~repro.up.hot_store.HotSessionStore`:
  dict -> dense index -> compact ``__slots__`` record) versus the
  pre-split dict-of-objects layout (dict -> fat session object ->
  property-delegated rule reads).  Both series run the *identical*
  resolution steps — session probe, classifier lookup, PDR/FAR/QER/URR
  resolution — so the delta is purely the state layout.
* :func:`flow_cache_ablation_sweep` measures the flow-cache
  capacity/associativity trade: hit rate and per-packet cost as the
  cache shrinks below the flow working set (capacity misses) and as
  associativity drops at fixed capacity (conflict misses, via
  :class:`~repro.up.flow_cache.SetAssociativeFlowCache`).

Records from both land in ``BENCH_cache.json`` via
``benchmarks/record_bench.py --suite cache``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from ..classifier import Rule, exact
from ..net.packet import Direction, FiveTuple, Packet
from ..pfcp import ies as pfcp_ies
from ..sim import Environment
from ..up import FAR, FARAction, PDR, SessionTable, UPFSession, UPFUserPlane
from ..up.flow_cache import SetAssociativeFlowCache
from ..up.session import packet_key

__all__ = [
    "WORKING_SET_SESSIONS",
    "ABLATION_CAPACITIES",
    "ABLATION_WAYS",
    "WorkingSetRow",
    "CacheAblationRow",
    "build_session_table",
    "working_set_packets",
    "working_set_sweep",
    "flow_cache_ablation_sweep",
]

#: Session counts swept by the measured working-set study.
WORKING_SET_SESSIONS = (100, 1_000, 10_000, 30_000)

#: Flow-cache capacities swept at fixed flow count (capacity misses).
ABLATION_CAPACITIES = (256, 1024, 4096, 8192)

#: Associativity sweep at fixed capacity (conflict misses); 0 means
#: the production fully-associative LRU cache.
ABLATION_WAYS = (1, 2, 4, 8, 0)

UE_BASE = 0x0A000001
TEID_BASE = 0x10000
GNB_ADDRESS = 0xC0A80201
FAR_ID = 2
PDR_ID = 2


@dataclass
class WorkingSetRow:
    """One session count's measured per-decision cost, both layouts."""

    sessions: int
    packets: int
    slab_ns_per_packet: float
    dict_ns_per_packet: float

    @property
    def dict_over_slab(self) -> float:
        """How much the fat-object layout costs over the hot slab."""
        return self.dict_ns_per_packet / self.slab_ns_per_packet


@dataclass
class CacheAblationRow:
    """One flow-cache configuration's steady-state behavior."""

    capacity: int
    #: Set-associativity (0 = fully associative LRU).
    ways: int
    flows: int
    packets: int
    hit_rate: float
    evictions: int
    per_packet_us: float


def build_session_table(sessions: int) -> SessionTable:
    """A table with ``sessions`` one-DL-PDR sessions (distinct UE IPs).

    Each session carries the minimal decision state a forwarded DL
    packet touches — one exact-match PDR and its FORW FAR — so the
    sweep measures state *layout*, not rule-set size.
    """
    table = SessionTable()
    for i in range(sessions):
        session = UPFSession(
            seid=i + 1, ue_ip=UE_BASE + i, ul_teid=TEID_BASE + i
        )
        session.install_far(
            FAR(
                far_id=FAR_ID,
                action=FARAction(
                    destination_interface=pfcp_ies.ACCESS,
                    outer_teid=0x500,
                    outer_address=GNB_ADDRESS,
                ),
            )
        )
        session.install_pdr(
            PDR(
                pdr_id=PDR_ID,
                precedence=10,
                match=Rule.from_fields(
                    priority=100,
                    rule_id=PDR_ID,
                    far_id=FAR_ID,
                    dst_ip=exact(UE_BASE + i),
                    source_iface=exact(pfcp_ies.CORE),
                ),
                far_id=FAR_ID,
                source_interface=pfcp_ies.CORE,
            )
        )
        table.add(session)
    return table


def working_set_packets(sessions: int) -> List[Packet]:
    """One DL packet per session, so a measurement pass touches every
    session's state exactly once (a full working-set traversal)."""
    return [
        Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(
                src_ip=1, dst_ip=UE_BASE + i, src_port=80, dst_port=4000
            ),
            size=128,
        )
        for i in range(sessions)
    ]


def _resolve_slab(store, packet):
    """The production resolution path: slab probe + hot-record reads.

    Step-for-step identical to :func:`_resolve_dict` — session probe,
    key build, classifier lookup, rule-container reads — so the
    measured delta is the state layout alone (dense slab + fixed-offset
    slot loads vs. object dict + property-delegated reads).
    """
    record = store.by_ue_ip(packet.flow.dst_ip)
    if record is None:
        return None
    key = packet_key(packet)
    rule = record.classifier.lookup(key)
    if rule is None:
        return None
    pdr = record.pdrs.get(rule.rule_id)
    far = record.fars.get(pdr.far_id)
    enforcer = (
        record.qer_enforcers.get(pdr.qer_id)
        if pdr.qer_id is not None
        else None
    )
    counter = (
        record.usage_counters.get(pdr.urr_id)
        if pdr.urr_id is not None
        else None
    )
    return far, enforcer, counter


def _resolve_dict(by_ue_ip, packet):
    """The pre-split layout: object dict probe + fat-object reads.

    Identical steps to :func:`_resolve_slab`; the session's rule
    containers are read through the cold object's delegation surface,
    which is how every access paid for the full session context before
    the split.
    """
    session = by_ue_ip.get(packet.flow.dst_ip)
    if session is None:
        return None
    key = packet_key(packet)
    rule = session.classifier.lookup(key)
    if rule is None:
        return None
    pdr = session.pdrs.get(rule.rule_id)
    far = session.fars.get(pdr.far_id)
    enforcer = (
        session.qer_enforcers.get(pdr.qer_id)
        if pdr.qer_id is not None
        else None
    )
    counter = (
        session.usage_counters.get(pdr.urr_id)
        if pdr.urr_id is not None
        else None
    )
    return far, enforcer, counter


def _measure_ns(resolve, arg, packets, passes: int) -> float:
    """Mean ns per resolution over ``passes`` working-set traversals."""
    # Warm pass: fault code paths and hash tables before timing.
    for packet in packets:
        resolve(arg, packet)
    begin = time.perf_counter()
    for _ in range(passes):
        for packet in packets:
            resolve(arg, packet)
    elapsed = time.perf_counter() - begin
    return elapsed / (passes * len(packets)) * 1e9


def working_set_sweep(
    session_counts: Sequence[int] = WORKING_SET_SESSIONS,
    repeats: int = 3,
    min_resolutions: int = 20_000,
) -> List[WorkingSetRow]:
    """Measured per-decision cost vs. working-set size, slab vs. dict.

    Each point takes the best of ``repeats`` measurements (the minimum
    is the least noisy estimator); every measurement traverses the
    whole working set round-robin so consecutive resolutions never
    reuse a session's state — the access pattern that defeats locality
    and exposes the layout.
    """
    rows: List[WorkingSetRow] = []
    for sessions in session_counts:
        table = build_session_table(sessions)
        packets = working_set_packets(sessions)
        # Legacy-layout emulation: the object dict the table kept per
        # key before the hot/cold split.
        by_ue_ip = {s.ue_ip: s for s in table.sessions()}
        passes = max(1, min_resolutions // sessions)
        slab_ns = min(
            _measure_ns(_resolve_slab, table.hot_store, packets, passes)
            for _ in range(repeats)
        )
        dict_ns = min(
            _measure_ns(_resolve_dict, by_ue_ip, packets, passes)
            for _ in range(repeats)
        )
        rows.append(
            WorkingSetRow(
                sessions=sessions,
                packets=passes * sessions,
                slab_ns_per_packet=slab_ns,
                dict_ns_per_packet=dict_ns,
            )
        )
    return rows


def _build_ablation_upf(
    flows: int, capacity: int, ways: int
) -> UPFUserPlane:
    """One-session UPF whose flow cache has the requested geometry."""
    table = build_session_table(1)
    upf_u = UPFUserPlane(
        Environment(), table, flow_cache=True, flow_cache_capacity=capacity
    )
    if ways:
        # Swap in the set-associative variant (UPF-U private state;
        # the ablation drives the sequential pipeline only).
        upf_u.flow_cache = SetAssociativeFlowCache(
            table.epoch, capacity=capacity, ways=ways
        )
    return upf_u


def _ablation_packets(flows: int) -> List[Packet]:
    """``flows`` distinct DL microflows into the single test session."""
    return [
        Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(
                src_ip=1,
                dst_ip=UE_BASE,
                src_port=1024 + (i % 0xF000),
                dst_port=4000 + i // 0xF000,
            ),
            size=128,
        )
        for i in range(flows)
    ]


def flow_cache_ablation_sweep(
    capacities: Sequence[int] = ABLATION_CAPACITIES,
    ways_sweep: Sequence[int] = ABLATION_WAYS,
    flows: int = 2048,
    passes: int = 4,
) -> List[CacheAblationRow]:
    """Hit rate and cost vs. flow-cache capacity and associativity.

    The capacity sweep holds ``flows`` fixed and shrinks the cache
    through it: once ``capacity < flows`` the LRU round-robin working
    set thrashes (hit rate collapses — the capacity-miss cliff).  The
    associativity sweep holds capacity fixed at the largest value and
    reduces ways: conflict evictions appear even though the cache is
    bigger than the working set.
    """
    rows: List[CacheAblationRow] = []
    configs = [(capacity, 0) for capacity in capacities] + [
        (max(capacities), ways) for ways in ways_sweep if ways
    ]
    for capacity, ways in configs:
        upf_u = _build_ablation_upf(flows, capacity, ways)
        packets = _ablation_packets(flows)
        process = upf_u.process
        for packet in packets:  # warm/fill pass (not timed)
            process(packet)
            packet.teid = None
        cache = upf_u.flow_cache
        cache.hits = cache.misses = cache.stale = 0
        cache.evictions = 0
        begin = time.perf_counter()
        for _ in range(passes):
            for packet in packets:
                packet.teid = None  # undo the previous pass's encap
                process(packet)
        elapsed = time.perf_counter() - begin
        measured = passes * flows
        rows.append(
            CacheAblationRow(
                capacity=capacity,
                ways=ways,
                flows=flows,
                packets=measured,
                hit_rate=cache.hit_rate,
                evictions=cache.evictions,
                per_packet_us=elapsed / measured * 1e6,
            )
        )
    return rows
