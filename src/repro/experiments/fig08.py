"""Fig 8 — total control-plane latency per UE event.

Runs the full registration / session-request / N2-handover / paging
procedures on all three systems (free5GC, ONVM-UPF, L25GC) and reports
completion times.  Expected shape, per the paper:

* ONVM-UPF is only marginally better than free5GC (only N4 improved);
* L25GC roughly halves every event (up to ~51 % reduction);
* paging lands near 59 ms vs 28 ms, handover near 227 ms vs 130 ms
  (these durations also drive Tables 1-2).

:func:`event_interface_breakdown` decomposes each event's wall time by
interface (SBI / N4 / NGAP / radio).  It runs the same lifecycle under
:mod:`repro.obs` tracing and queries the span tree — no bespoke
message accounting; the trace is the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.costs import DEFAULT_COSTS, CostModel
from ..obs import breakdown as _breakdown
from ..obs import spans as _tracing
from .common import ALL_SYSTEMS, UE_EVENTS, run_ue_events

__all__ = [
    "EventLatencyRow",
    "event_completion_times",
    "event_interface_breakdown",
]


@dataclass
class EventLatencyRow:
    """One event's bar group in Fig 8."""

    event: str
    free5gc_s: float
    onvm_upf_s: float
    l25gc_s: float
    messages: int

    @property
    def reduction(self) -> float:
        return 1.0 - self.l25gc_s / self.free5gc_s


def event_completion_times(
    costs: CostModel = DEFAULT_COSTS, num_ues: int = 1
) -> List[EventLatencyRow]:
    """Fig 8's bar groups, with per-event message counts."""
    durations: Dict[str, Dict[str, float]] = {}
    messages: Dict[str, int] = {}
    for system, config_factory in ALL_SYSTEMS.items():
        results = run_ue_events(config_factory(), costs=costs, num_ues=num_ues)
        durations[system] = {
            event: result.duration for event, result in results.items()
        }
        if system == "free5gc":
            messages = {
                event: result.messages for event, result in results.items()
            }
    return [
        EventLatencyRow(
            event=event,
            free5gc_s=durations["free5gc"][event],
            onvm_upf_s=durations["onvm-upf"][event],
            l25gc_s=durations["l25gc"][event],
            messages=messages[event],
        )
        for event in UE_EVENTS
    ]


def event_interface_breakdown(
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-system, per-event wall time split by interface (seconds).

    Returns ``{system: {event: {"sbi": ..., "n4": ..., "ngap": ...,
    "radio": ..., "other": ..., "total": ...}}}``.  The split is
    derived entirely from the trace's message and radio spans, plus the
    trace-derived message count (``messages``) — the same numbers the
    pre-obs code kept in hand-rolled tallies.
    """
    from ..cp.core5g import FiveGCore
    from ..cp.procedures import ProcedureRunner
    from ..sim.engine import Environment

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for system, config_factory in ALL_SYSTEMS.items():
        config = config_factory()
        # run_ue_events builds its own Environment internally, so the
        # traced variant reproduces its (short) single-UE lifecycle
        # here with a local env the tracer can clock against.
        env = Environment()
        core = FiveGCore(env, config, costs=costs)
        runner = ProcedureRunner(core)
        tracer = _tracing.enable(env)
        try:
            ue = core.add_ue("imsi-208930000000001")

            def lifecycle():
                yield from runner.register_ue(ue, gnb_id=1)
                yield from runner.establish_session(ue, pdu_session_id=1)
                yield from runner.handover(ue, target_gnb_id=2)
                yield from runner.release_to_idle(ue)
                yield from runner.page_ue(ue)

            env.process(lifecycle())
            env.run()
        finally:
            _tracing.disable()

        per_event: Dict[str, Dict[str, float]] = {}
        for root in tracer.roots():
            if root.name not in UE_EVENTS:
                continue
            split = _breakdown.interface_breakdown(tracer, root)
            split["messages"] = float(
                len(tracer.find(category="message", within=root))
            )
            per_event[root.name] = split
        out[system] = per_event
    return out
