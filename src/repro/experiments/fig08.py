"""Fig 8 — total control-plane latency per UE event.

Runs the full registration / session-request / N2-handover / paging
procedures on all three systems (free5GC, ONVM-UPF, L25GC) and reports
completion times.  Expected shape, per the paper:

* ONVM-UPF is only marginally better than free5GC (only N4 improved);
* L25GC roughly halves every event (up to ~51 % reduction);
* paging lands near 59 ms vs 28 ms, handover near 227 ms vs 130 ms
  (these durations also drive Tables 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.costs import DEFAULT_COSTS, CostModel
from .common import ALL_SYSTEMS, UE_EVENTS, run_ue_events

__all__ = ["EventLatencyRow", "event_completion_times"]


@dataclass
class EventLatencyRow:
    """One event's bar group in Fig 8."""

    event: str
    free5gc_s: float
    onvm_upf_s: float
    l25gc_s: float
    messages: int

    @property
    def reduction(self) -> float:
        return 1.0 - self.l25gc_s / self.free5gc_s


def event_completion_times(
    costs: CostModel = DEFAULT_COSTS, num_ues: int = 1
) -> List[EventLatencyRow]:
    """Fig 8's bar groups, with per-event message counts."""
    durations: Dict[str, Dict[str, float]] = {}
    messages: Dict[str, int] = {}
    for system, config_factory in ALL_SYSTEMS.items():
        results = run_ue_events(config_factory(), costs=costs, num_ues=num_ues)
        durations[system] = {
            event: result.duration for event, result in results.items()
        }
        if system == "free5gc":
            messages = {
                event: result.messages for event, result in results.items()
            }
    return [
        EventLatencyRow(
            event=event,
            free5gc_s=durations["free5gc"][event],
            onvm_upf_s=durations["onvm-upf"][event],
            l25gc_s=durations["l25gc"][event],
            messages=messages[event],
        )
        for event in UE_EVENTS
    ]
