"""§5.5.1/§5.5.2 + Fig 15 — impact of 5GC failure.

Control plane (§5.5.1): a failure hits while a handover is in flight.
L25GC detects in < 0.5 ms, unfreezes the remote replica, re-routes and
replays (2 ms / 3 ms, overlapped) and completes the handover only a few
milliseconds late (134 vs 130 ms).  The 3GPP alternative re-attaches:
the UE runs a fresh registration + session establishment through the
target gNB, completing only around 400 ms.

Data plane (§5.5.2, Fig 15): during an ongoing TCP transfer, the
primary fails.  With reattach all in-flight packets (~121 at 10 Kpps
over the outage) are lost and TCP's goodput collapses; L25GC's LB
replays its four-queue log, so nothing is lost and only a handful of
packets see a slightly higher RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import SystemConfig
from ..cp.nfs import AMF, SMF
from ..net.packet import Direction, PacketKind
from ..resiliency.failover import ResiliencyFramework, reattach_time
from ..sim.engine import MS, Environment
from ..tcpmodel.tcp import InterruptionKind, PathModel, TCPConnection
from .common import run_ue_events

__all__ = [
    "ControlPlaneFailover",
    "control_plane_failover",
    "DataPlaneFailover",
    "data_plane_failover",
]


@dataclass
class ControlPlaneFailover:
    """§5.5.1's numbers."""

    l25gc_ho_with_failure_s: float
    l25gc_ho_without_failure_s: float
    reattach_ho_with_failure_s: float
    detection_s: float
    reroute_s: float
    replay_s: float


def control_plane_failover(
    costs: CostModel = DEFAULT_COSTS, failure_fraction: float = 0.5
) -> ControlPlaneFailover:
    """Handover completion with a failure ``failure_fraction`` through.

    Derives every number from the measured procedures plus the
    resiliency cost model — no hard-coded outcomes.
    """
    l25gc_ho = run_ue_events(SystemConfig.l25gc(), costs=costs)[
        "handover"
    ].duration

    # L25GC: the failover machinery runs while the handover pauses.
    env = Environment()
    framework = ResiliencyFramework(
        env, {"amf": AMF(), "smf": SMF()}, costs=costs
    )
    framework.start()
    outage = {}

    def scenario():
        yield env.timeout(failure_fraction * l25gc_ho)
        framework.fail_primary()
        report = yield from framework.run_failover()
        outage["value"] = report.outage

    env.process(scenario())
    env.run(until=1.0)
    l25gc_with_failure = l25gc_ho + outage["value"]

    # 3GPP: re-attach through the target gNB after the failure.
    reattach = (
        failure_fraction * run_ue_events(SystemConfig.free5gc(), costs=costs)[
            "handover"
        ].duration
        + reattach_time(costs)
    )
    return ControlPlaneFailover(
        l25gc_ho_with_failure_s=l25gc_with_failure,
        l25gc_ho_without_failure_s=l25gc_ho,
        reattach_ho_with_failure_s=reattach,
        detection_s=costs.failure_detection,
        reroute_s=costs.reroute,
        replay_s=costs.replay,
    )


@dataclass
class DataPlaneFailover:
    """Fig 15's comparison for one scheme."""

    scheme: str
    outage_s: float
    packets_lost: int
    packets_replayed: int
    goodput_before_bps: float
    goodput_during_bps: float
    goodput_after_bps: float
    retransmissions: int


def _tcp_through_failure(
    outage: float, kind: InterruptionKind, fail_at: float = 2.0
) -> tuple:
    env = Environment()
    path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS, connections=1)
    path.add_interruption(start=fail_at, duration=outage, kind=kind)
    connection = TCPConnection(env, path, total_bytes=40 << 20)
    env.process(connection.run())
    env.run()
    stats = connection.stats
    return (
        stats.goodput_bps(fail_at - 1.0, fail_at),
        stats.goodput_bps(fail_at, fail_at + max(outage, 0.5)),
        stats.goodput_bps(
            fail_at + max(outage, 0.5), fail_at + max(outage, 0.5) + 1.0
        ),
        stats.retransmissions,
    )


def data_plane_failover(
    costs: CostModel = DEFAULT_COSTS,
    rate_pps: float = 10_000,
) -> Dict[str, DataPlaneFailover]:
    """Fig 15: TCP behaviour through a 5GC failure, both schemes."""
    # L25GC outage: detection + unfreeze + overlapped reroute/replay.
    env = Environment()
    framework = ResiliencyFramework(
        env, {"amf": AMF(), "smf": SMF()}, costs=costs
    )
    framework.start()
    report_holder = {}

    def scenario():
        # Log in-flight data packets, then fail.
        for index in range(200):
            framework.log_message(
                f"data-{index}", Direction.DOWNLINK, PacketKind.DATA
            )
            yield env.timeout(1.0 / rate_pps)
        framework.fail_primary()
        report = yield from framework.run_failover()
        report_holder["report"] = report

    env.process(scenario())
    env.run(until=1.0)
    report = report_holder["report"]

    l25gc_lost = 0
    l25gc_outage = report.outage
    reattach_outage = reattach_time(costs)
    reattach_lost = round(rate_pps * reattach_outage)

    results: Dict[str, DataPlaneFailover] = {}
    for scheme, outage, kind, lost, replayed in (
        (
            "l25gc",
            l25gc_outage,
            InterruptionKind.BUFFERED,
            l25gc_lost,
            report.recovered_data_packets,
        ),
        (
            "3gpp-reattach",
            reattach_outage,
            InterruptionKind.DROPPED,
            reattach_lost,
            0,
        ),
    ):
        before, during, after, rtx = _tcp_through_failure(outage, kind)
        results[scheme] = DataPlaneFailover(
            scheme=scheme,
            outage_s=outage,
            packets_lost=lost,
            packets_replayed=replayed,
            goodput_before_bps=before,
            goodput_during_bps=during,
            goodput_after_bps=after,
            retransmissions=rtx,
        )
    return results
