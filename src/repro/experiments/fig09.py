"""Fig 9 — per-message communication speedup over HTTP.

For the frequent control-plane messages, the one-way exchange latency
over free5GC's HTTP/REST channel divided by L25GC's shared-memory
latency.  The paper reports an average of ~13x (log-scale bars).

Message sizes come from the real JSON encodings, so heavier messages
(discovery responses, SM context creation) show slightly larger copy
components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.costs import DEFAULT_COSTS, Channel, CostModel
from ..sbi.codecs import JsonCodec
from ..sbi.messages import (
    AmPolicyCreateRequest,
    N1N2MessageTransfer,
    NFDiscoveryRequest,
    PostSmContextsRequest,
    SBIMessage,
    SubscriptionDataRequest,
    UEAuthenticationRequest,
    UpdateSmContextRequest,
)

__all__ = ["SpeedupRow", "communication_speedup", "SELECTED_MESSAGES"]

#: The "important and frequently used" messages of Fig 9.
SELECTED_MESSAGES = (
    PostSmContextsRequest,
    UpdateSmContextRequest,
    UEAuthenticationRequest,
    N1N2MessageTransfer,
    AmPolicyCreateRequest,
    SubscriptionDataRequest,
    NFDiscoveryRequest,
)


@dataclass
class SpeedupRow:
    """One bar of Fig 9."""

    message: str
    http_s: float
    shm_s: float
    json_bytes: int

    @property
    def speedup(self) -> float:
        return self.http_s / self.shm_s


def communication_speedup(
    costs: CostModel = DEFAULT_COSTS,
) -> List[SpeedupRow]:
    """Fig 9's bars plus the average speedup."""
    codec = JsonCodec()
    rows: List[SpeedupRow] = []
    for message_class in SELECTED_MESSAGES:
        message: SBIMessage = message_class()
        size = len(codec.encode(message))
        rows.append(
            SpeedupRow(
                message=message.name,
                http_s=costs.message_cost(Channel.HTTP_JSON, size),
                shm_s=costs.message_cost(Channel.SHARED_MEMORY, size),
                json_bytes=size,
            )
        )
    return rows


def average_speedup(rows: List[SpeedupRow]) -> float:
    """The paper's headline: ~13x on average."""
    return sum(row.speedup for row in rows) / len(rows)
