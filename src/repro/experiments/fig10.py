"""Fig 10 — data-plane throughput and latency vs. packet size.

(a) unidirectional UL/DL throughput, (b) bidirectional, (c) mean
end-to-end latency, each as a function of packet size on a 10 Gbps
link, plus the §5.3 core-scaling study up to 40 Gbps.

Throughput is the min of the NIC line rate and the CPU-limited
forwarding rate from the calibrated per-packet costs; this reproduces
the paper's 27x advantage at 68 B (L25GC at line rate on one core) and
free5GC's slight improvement at larger packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.costs import DEFAULT_COSTS, CostModel

__all__ = [
    "PACKET_SIZES",
    "ThroughputRow",
    "LatencyRow",
    "throughput_vs_packet_size",
    "latency_vs_packet_size",
    "ScalingRow",
    "scaling_40g",
    "line_rate_pps",
    "CachedAblationRow",
    "flow_cache_ablation",
    "BURST_SIZES",
    "BurstScalingRow",
    "burst_scaling",
    "SESSION_COUNTS",
    "LlcCliffRow",
    "llc_cliff",
]

#: The swept packet sizes (bytes on the wire).
PACKET_SIZES = (68, 128, 256, 512, 1024, 1500)

#: Ethernet preamble + IFG + CRC overhead per packet on the wire.
_WIRE_OVERHEAD = 24


def line_rate_pps(size: int, link_bps: float = 10e9) -> float:
    """Packets/second at line rate for a given packet size."""
    return link_bps / (8.0 * (size + _WIRE_OVERHEAD))


@dataclass
class ThroughputRow:
    """One packet size's throughput figures (Gbps of L2 payload)."""

    size: int
    free5gc_uni_gbps: float
    l25gc_uni_gbps: float
    free5gc_bidir_gbps: float
    l25gc_bidir_gbps: float

    @property
    def uni_ratio(self) -> float:
        return self.l25gc_uni_gbps / self.free5gc_uni_gbps


@dataclass
class LatencyRow:
    """One packet size's mean end-to-end latency (seconds)."""

    size: int
    free5gc_s: float
    l25gc_s: float


def _throughput_gbps(
    costs: CostModel,
    fast_path: bool,
    size: int,
    cores: int,
    link_bps: float,
    directions: int,
) -> float:
    """Offered-load-limited throughput in Gbps (per direction sum).

    With bidirectional traffic the CPU is shared across both
    directions, while each direction has its own line rate.
    """
    cpu_pps = costs.forwarding_rate_pps(fast_path, size, cores)
    per_direction_line = line_rate_pps(size, link_bps)
    total_pps = min(cpu_pps, directions * per_direction_line)
    return total_pps * size * 8.0 / 1e9


def throughput_vs_packet_size(
    costs: CostModel = DEFAULT_COSTS,
    cores: int = 1,
    link_bps: float = 10e9,
) -> List[ThroughputRow]:
    """Fig 10(a) and (b): uni- and bidirectional throughput."""
    rows: List[ThroughputRow] = []
    for size in PACKET_SIZES:
        rows.append(
            ThroughputRow(
                size=size,
                free5gc_uni_gbps=_throughput_gbps(
                    costs, False, size, cores, link_bps, 1
                ),
                l25gc_uni_gbps=_throughput_gbps(
                    costs, True, size, cores, link_bps, 1
                ),
                free5gc_bidir_gbps=_throughput_gbps(
                    costs, False, size, cores, link_bps, 2
                ),
                l25gc_bidir_gbps=_throughput_gbps(
                    costs, True, size, cores, link_bps, 2
                ),
            )
        )
    return rows


def latency_vs_packet_size(
    costs: CostModel = DEFAULT_COSTS,
) -> List[LatencyRow]:
    """Fig 10(c): mean end-to-end one-way latency per packet size.

    free5GC pays interrupt-driven kernel processing plus per-byte
    copies; L25GC's poll-mode path stays flat across sizes.
    """
    rows: List[LatencyRow] = []
    for size in PACKET_SIZES:
        rows.append(
            LatencyRow(
                size=size,
                free5gc_s=(
                    costs.kernel_forward_latency
                    + costs.per_packet_cost(False, size)
                    + costs.lan_propagation
                ),
                l25gc_s=(
                    costs.dpdk_forward_latency
                    + costs.per_packet_cost(True, size)
                    + costs.lan_propagation
                ),
            )
        )
    return rows


@dataclass
class CachedAblationRow:
    """Flow-cache ablation: CPU-limited forwarding rate per path.

    Rates are deliberately *not* capped at the NIC line rate — the
    ablation isolates what the match pipeline costs the CPU, which is
    exactly the headroom the flow cache buys for QER/URR work or more
    sessions per core.
    """

    size: int
    l25gc_mpps: float
    l25gc_cached_mpps: float
    free5gc_mpps: float
    free5gc_cached_mpps: float

    @property
    def l25gc_speedup(self) -> float:
        return self.l25gc_cached_mpps / self.l25gc_mpps

    @property
    def free5gc_speedup(self) -> float:
        return self.free5gc_cached_mpps / self.free5gc_mpps


def flow_cache_ablation(
    costs: CostModel = DEFAULT_COSTS, cores: int = 1
) -> List[CachedAblationRow]:
    """Cached-vs-uncached forwarding rate across packet sizes.

    The cached series models every packet hitting the exact-match flow
    cache (steady state, zero rule churn); the uncached series is the
    full per-packet match pipeline.
    """
    rows: List[CachedAblationRow] = []
    for size in PACKET_SIZES:
        rows.append(
            CachedAblationRow(
                size=size,
                l25gc_mpps=costs.forwarding_rate_pps(True, size, cores) / 1e6,
                l25gc_cached_mpps=(
                    costs.cached_forwarding_rate_pps(True, size, cores) / 1e6
                ),
                free5gc_mpps=(
                    costs.forwarding_rate_pps(False, size, cores) / 1e6
                ),
                free5gc_cached_mpps=(
                    costs.cached_forwarding_rate_pps(False, size, cores) / 1e6
                ),
            )
        )
    return rows


#: The swept poll burst sizes (packets drained per ring poll).
BURST_SIZES = (1, 4, 8, 16, 32, 64)


@dataclass
class BurstScalingRow:
    """Burst-size ablation: per-poll overhead amortization per path.

    Models what the platform's ``dequeue_burst`` buys: the fixed
    per-poll cost (ring doorbell, descriptor prefetch, bookkeeping)
    divides over the burst, so the DPDK rate climbs towards its
    calibrated 32-packet-burst value while the kernel path — which has
    no burst lever — stays flat.  Rates are CPU-limited (not capped at
    line rate) for the same reason as :class:`CachedAblationRow`.
    """

    burst_size: int
    size: int
    l25gc_mpps: float
    free5gc_mpps: float

    @property
    def l25gc_per_packet_us(self) -> float:
        return 1.0 / self.l25gc_mpps


def burst_scaling(
    costs: CostModel = DEFAULT_COSTS,
    burst_sizes=BURST_SIZES,
    size: int = 68,
    cores: int = 1,
) -> List[BurstScalingRow]:
    """CPU-limited forwarding rate vs. poll burst size at one packet
    size.

    ``burst_size == costs.calibrated_burst_size`` reproduces the
    headline fig10 rate exactly; burst 1 shows the cost of draining
    the ring one descriptor at a time.
    """
    rows: List[BurstScalingRow] = []
    for burst in burst_sizes:
        rows.append(
            BurstScalingRow(
                burst_size=burst,
                size=size,
                l25gc_mpps=(
                    costs.burst_forwarding_rate_pps(True, size, burst, cores)
                    / 1e6
                ),
                free5gc_mpps=(
                    costs.burst_forwarding_rate_pps(False, size, burst, cores)
                    / 1e6
                ),
            )
        )
    return rows


#: Session counts swept by the LLC-cliff study (log-spaced so the
#: L1 -> LLC -> DRAM transitions of both layouts land inside the sweep:
#: the dict layout overflows a 32 MB LLC near 32 K sessions at
#: ~1 KB/session, the 64 B hot slab not until ~512 K).
SESSION_COUNTS = (
    1, 100, 1_000, 10_000, 32_000, 100_000, 320_000, 1_000_000, 3_200_000,
)


@dataclass
class LlcCliffRow:
    """Cache-residency study: active sessions -> forwarding rate.

    Models 5GC²ache's central measurement with the
    :meth:`~repro.core.costs.CostModel.cache_aware_forwarding_rate_pps`
    term: per-packet cost gains a session-state access component priced
    by where the session working set lives (L1 / LLC / DRAM).  The
    ``hot`` series uses the compact 64 B/session slab layout, the
    ``dict`` series the ~1 KB/session dict-of-objects layout — the rate
    cliffs when each working set overflows LLC, and the hot layout's
    cliff lands ~an order of magnitude more sessions out.
    """

    sessions: int
    hot_mpps: float
    dict_mpps: float
    hot_working_set_bytes: float
    dict_working_set_bytes: float

    @property
    def hot_advantage(self) -> float:
        return self.hot_mpps / self.dict_mpps


def llc_cliff(
    costs: CostModel = DEFAULT_COSTS,
    session_counts=SESSION_COUNTS,
    size: int = 68,
    cores: int = 1,
) -> List[LlcCliffRow]:
    """Forwarding rate vs. active sessions, hot-slab vs. dict layout.

    CPU-limited (not line-rate-capped) for the same reason as
    :func:`flow_cache_ablation`: the study isolates what state layout
    costs the match pipeline.
    """
    rows: List[LlcCliffRow] = []
    for sessions in session_counts:
        rows.append(
            LlcCliffRow(
                sessions=sessions,
                hot_mpps=costs.cache_aware_forwarding_rate_pps(
                    True, size, sessions, hot_layout=True, cores=cores
                ) / 1e6,
                dict_mpps=costs.cache_aware_forwarding_rate_pps(
                    True, size, sessions, hot_layout=False, cores=cores
                ) / 1e6,
                hot_working_set_bytes=costs.session_state_working_set(
                    sessions, hot_layout=True
                ),
                dict_working_set_bytes=costs.session_state_working_set(
                    sessions, hot_layout=False
                ),
            )
        )
    return rows


@dataclass
class ScalingRow:
    """§5.3 'Supporting 40Gbps links': cores -> achievable rate."""

    cores: int
    mtu_gbps: float


def scaling_40g(
    costs: CostModel = DEFAULT_COSTS, link_bps: float = 40e9
) -> List[ScalingRow]:
    """MTU-packet forwarding rate as UPF cores scale 1 -> 4."""
    rows: List[ScalingRow] = []
    for cores in (1, 2, 4):
        rows.append(
            ScalingRow(
                cores=cores,
                mtu_gbps=_throughput_gbps(
                    costs, True, 1500, cores, link_bps, 1
                ),
            )
        )
    return rows
