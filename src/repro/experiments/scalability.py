"""Session-scalability and design-choice ablations.

The paper is candid that "L25GC's design is general, although the
current implementation supports a limited number of user sessions"
(§1, §3.2: the control plane supports two users; the data plane as
many as resources allow).  These ablations quantify where session
count actually bites in our reproduction:

* :func:`session_scale_sweep` — onboarding N UEs (registration + PDU
  session) and measuring per-UE event latency and aggregate state as N
  grows; the control plane should scale near-linearly since sessions
  are independent.
* :func:`classifier_ablation` — the Fig 11 result *in situ*: UPF-U
  forwarding wall-time per packet with the session's PDR set held in a
  linear list vs. PartitionSort, as rules-per-session grows (the
  paper's challenge 3 trajectory from 2 rules to hundreds).
* :func:`shard_scale_sweep` — the scale-out axis: 10k -> 1M+ sessions
  across 1/2/4/8 UPF-U shards behind RSS dispatch, holding data-plane
  p99 while reporting modeled Mpps/shard and load skew.  Session
  *placement* is computed for the full population (that is what load
  skew measures); a bounded resident sample per shard is actually
  installed and carries the measured traffic, since a million live
  session contexts would only measure the host's memory bandwidth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from ..classifier.base import Classifier
from ..classifier.linear import LinearClassifier
from ..classifier.partition_sort import PartitionSortClassifier
from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import FiveGCore, SystemConfig
from ..cp.procedures import ProcedureRunner
from ..net.packet import Direction, FiveTuple, Packet
from ..pfcp import ies as pfcp_ies
from ..pfcp.builder import build_session_establishment
from ..sim.engine import Environment
from ..up.rules import PDR
from ..up.session import SessionTable, UPFSession
from ..up.upf_u import UPFUserPlane

__all__ = [
    "ScaleRow",
    "session_scale_sweep",
    "AblationRow",
    "classifier_ablation",
    "ShardScaleRow",
    "shard_scale_sweep",
]


@dataclass
class ScaleRow:
    """Onboarding metrics at one session count."""

    sessions: int
    mean_registration_s: float
    mean_session_establishment_s: float
    total_onboarding_s: float
    upf_sessions: int
    control_messages: int


def session_scale_sweep(
    config: SystemConfig,
    session_counts: Sequence[int] = (1, 2, 5, 10, 25, 50),
    costs: CostModel = DEFAULT_COSTS,
) -> List[ScaleRow]:
    """Onboard N UEs sequentially and record per-UE latencies."""
    rows: List[ScaleRow] = []
    for count in session_counts:
        env = Environment()
        core = FiveGCore(env, config, costs=costs)
        runner = ProcedureRunner(core)
        registrations: List[float] = []
        establishments: List[float] = []

        def onboard_all():
            for index in range(count):
                ue = core.add_ue(f"imsi-2089399{index:08d}")
                result = yield from runner.register_ue(ue, gnb_id=1)
                registrations.append(result.duration)
                result = yield from runner.establish_session(ue)
                establishments.append(result.duration)

        env.process(onboard_all())
        env.run()
        rows.append(
            ScaleRow(
                sessions=count,
                mean_registration_s=sum(registrations) / count,
                mean_session_establishment_s=sum(establishments) / count,
                total_onboarding_s=env.now,
                upf_sessions=len(core.sessions),
                control_messages=core.bus.total_messages(),
            )
        )
    return rows


@dataclass
class AblationRow:
    """Forwarding cost at one rules-per-session point."""

    rules_per_session: int
    lookup_us: Dict[str, float] = field(default_factory=dict)

    def speedup(self) -> float:
        return self.lookup_us["PDR-LL"] / self.lookup_us["PDR-PS"]


def _session_with_rules(
    classifier_class: Type[Classifier], extra_rules: int
) -> tuple:
    """A UPF with one session holding 2 + extra_rules PDRs."""
    from ..classifier.classbench import ClassBenchGenerator
    from ..up.upf_c import UPFControlPlane

    env = Environment()
    table = SessionTable()
    upf_u = UPFUserPlane(env, table)
    upf_c = UPFControlPlane(
        table, upf_u=upf_u, address=1, classifier_class=classifier_class
    )
    ue_ip = 0x0A3C0001
    upf_c.handle(
        build_session_establishment(
            seid=1, sequence=1, ue_ip=ue_ip, upf_address=1,
            ul_teid=0x100, gnb_address=2, dl_teid=0x500,
        )
    )
    session = table.by_seid(1)
    # Demote the catch-all DL rule below the filter set: firewall/NAT
    # rules (challenge 3) take precedence over default forwarding, so
    # every lookup must consider them before falling through.
    import dataclasses

    base = session.pdrs[2]
    demoted = PDR(
        pdr_id=base.pdr_id,
        precedence=5000,
        match=dataclasses.replace(base.match, priority=(1 << 16) - 5000),
        far_id=base.far_id,
        source_interface=base.source_interface,
    )
    session.install_pdr(demoted)
    # Grow the PDR set with higher-precedence subflow filters that do
    # not match the probe flow (the scan cost the paper measures).
    generator = ClassBenchGenerator(seed=13)
    for index, rule in enumerate(generator.rules(extra_rules)):
        match = dataclasses.replace(
            rule, priority=(1 << 16) - (100 + index), rule_id=100 + index
        )
        session.install_pdr(
            PDR(
                pdr_id=100 + index,
                precedence=100 + index,
                match=match,
                far_id=2,
                source_interface=pfcp_ies.CORE,
            )
        )
    packet = Packet(
        direction=Direction.DOWNLINK,
        flow=FiveTuple(src_ip=1, dst_ip=ue_ip, src_port=80, dst_port=4000),
    )
    return upf_u, packet


@dataclass
class ShardScaleRow:
    """One (session count, shard count) cell of the scale-out sweep."""

    sessions: int
    shards: int
    #: Sessions actually installed and carrying the measured traffic.
    resident_sessions: int
    p50_us: float
    p99_us: float
    modeled_mpps_per_shard: float
    #: Aggregate forwarding capacity, discounted by load skew (the
    #: most-loaded shard saturates first).
    modeled_mpps_total: float
    #: max/mean sessions per shard over the *full* population.
    load_skew: float
    flow_cache_hit_rate: float


_SHARD_UE_BASE = 0x0A000001
_SHARD_DN_IP = 0x08080808
_SHARD_GNB = 0xC0A80201


def _resident_session(seid: int, ue_ip: int, ul_teid: int) -> UPFSession:
    """A minimal forwarding session: UL + DL PDR, forward FARs."""
    from ..classifier import Rule, exact
    from ..up.rules import FAR, FARAction

    session = UPFSession(
        seid=seid,
        ue_ip=ue_ip,
        ul_teid=ul_teid,
        classifier_class=LinearClassifier,
        buffer_capacity=8,
    )
    session.install_pdr(
        PDR(
            pdr_id=1,
            precedence=10,
            match=Rule.from_fields(
                priority=100, rule_id=1, far_id=1,
                teid=exact(ul_teid),
                source_iface=exact(pfcp_ies.ACCESS),
            ),
            far_id=1,
            outer_header_removal=True,
            source_interface=pfcp_ies.ACCESS,
        )
    )
    session.install_pdr(
        PDR(
            pdr_id=2,
            precedence=10,
            match=Rule.from_fields(
                priority=100, rule_id=2, far_id=2,
                dst_ip=exact(ue_ip),
                source_iface=exact(pfcp_ies.CORE),
            ),
            far_id=2,
            source_interface=pfcp_ies.CORE,
        )
    )
    session.install_far(
        FAR(far_id=1, action=FARAction(destination_interface=pfcp_ies.CORE))
    )
    session.install_far(
        FAR(
            far_id=2,
            action=FARAction(
                destination_interface=pfcp_ies.ACCESS,
                outer_teid=0x40000000 ^ ul_teid,
                outer_address=_SHARD_GNB,
            ),
        )
    )
    return session


def shard_scale_sweep(
    session_counts: Sequence[int] = (10_000, 125_000, 500_000, 1_000_000),
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    resident_per_shard: int = 256,
    packets: int = 4000,
    warmup: int = 500,
    packet_size: int = 128,
    repeats: int = 3,
    costs: CostModel = DEFAULT_COSTS,
) -> List[ShardScaleRow]:
    """Sweep session count x shard count on the sharded user plane.

    For each cell the *placement* of all N sessions is computed
    through the real dispatch hash (TEID steering included), giving
    the exact load skew; ``resident_per_shard`` of them per shard are
    fully installed and carry ``packets`` measured packets (alternating
    UL/DL, round-robin across sessions).  p50/p99 are wall-clock
    per-packet pipeline times, best of ``repeats`` passes (the usual
    defence against scheduler noise in percentile comparisons); Mpps
    is modeled from the calibrated cost model blended with the
    measured flow-cache hit rate.
    """
    from ..deploy.sharded import ShardedUserPlane
    from ..obs.metrics import MetricsRegistry

    rows: List[ShardScaleRow] = []
    for shards in shard_counts:
        for count in session_counts:
            env = Environment()
            plane = ShardedUserPlane(
                env,
                shards,
                flow_cache=True,
                fast_path=True,
                costs=costs,
            )
            registry = MetricsRegistry()
            plane.register_into(registry)
            router = plane.router
            # Place the full population; install a resident sample.
            per_shard = [0] * shards
            resident: List[UPFSession] = []
            resident_count = [0] * shards
            for index in range(count):
                ue_ip = _SHARD_UE_BASE + index
                shard = router.shard_for_ue_ip(ue_ip)
                per_shard[shard] += 1
                if resident_count[shard] < resident_per_shard:
                    resident_count[shard] += 1
                    ul_teid = router.steer_teid(ue_ip, 0x1000 + index)
                    session = _resident_session(
                        seid=index + 1, ue_ip=ue_ip, ul_teid=ul_teid
                    )
                    plane.sessions.add(session)
                    resident.append(session)
            mean = sum(per_shard) / shards
            skew = max(per_shard) / mean if mean else 1.0
            # Pre-built packet pool (construction outside the timing).
            pool = []
            for session in resident:
                pool.append(
                    Packet(
                        direction=Direction.UPLINK,
                        teid=session.ul_teid,
                        flow=FiveTuple(
                            src_ip=session.ue_ip, dst_ip=_SHARD_DN_IP,
                            src_port=4000, dst_port=80,
                        ),
                        size=packet_size,
                    )
                )
                pool.append(
                    Packet(
                        direction=Direction.DOWNLINK,
                        flow=FiveTuple(
                            src_ip=_SHARD_DN_IP, dst_ip=session.ue_ip,
                            src_port=80, dst_port=4000,
                        ),
                        size=packet_size,
                    )
                )
            process = plane.process
            timer = time.perf_counter
            # Warm every flow at least once so the measured phase sees
            # the steady state (first-packet misses are setup, not
            # per-packet behaviour); hit rate is post-warmup only.
            cell_warmup = max(warmup, len(pool))
            warm_hits = warm_probes = 0
            best: Optional[List[float]] = None
            for repetition in range(repeats):
                latencies: List[float] = []
                prelude = cell_warmup if repetition == 0 else 0
                for iteration in range(prelude + packets):
                    packet = pool[iteration % len(pool)]
                    # The pipeline strips/sets the outer header in
                    # place; restore the template before re-injecting.
                    restore_teid = packet.teid
                    begin = timer()
                    process(packet)
                    elapsed = timer() - begin
                    packet.teid = restore_teid
                    if repetition == 0 and iteration == prelude - 1:
                        for shard in plane.shards:
                            cache = shard.upf_u.flow_cache
                            warm_hits += cache.hits
                            warm_probes += cache.hits + cache.misses
                    if iteration >= prelude:
                        latencies.append(elapsed)
                        plane.observe_latency(
                            router.shard_for_packet(packet), elapsed
                        )
                latencies.sort()
                tail = latencies[
                    min(len(latencies) - 1, int(len(latencies) * 0.99))
                ]
                if best is None or tail < best[
                    min(len(best) - 1, int(len(best) * 0.99))
                ]:
                    best = latencies
            p50 = best[len(best) // 2]
            p99 = best[min(len(best) - 1, int(len(best) * 0.99))]
            hits = probes = 0
            for shard in plane.shards:
                cache = shard.upf_u.flow_cache
                hits += cache.hits
                probes += cache.hits + cache.misses
            measured_probes = probes - warm_probes
            hit_rate = (
                (hits - warm_hits) / measured_probes
                if measured_probes
                else 0.0
            )
            per_packet = (
                hit_rate * costs.cached_lookup(True, packet_size)
                + (1.0 - hit_rate) * costs.per_packet_cost(True, packet_size)
            )
            per_shard_mpps = 1.0 / per_packet / 1e6
            rows.append(
                ShardScaleRow(
                    sessions=count,
                    shards=shards,
                    resident_sessions=len(resident),
                    p50_us=p50 * 1e6,
                    p99_us=p99 * 1e6,
                    modeled_mpps_per_shard=per_shard_mpps,
                    modeled_mpps_total=per_shard_mpps * shards / skew,
                    load_skew=skew,
                    flow_cache_hit_rate=hit_rate,
                )
            )
    return rows


def classifier_ablation(
    rule_counts: Sequence[int] = (0, 8, 48, 98, 498),
    lookups: int = 300,
) -> List[AblationRow]:
    """Measured per-packet pipeline time, linear list vs PartitionSort."""
    rows: List[AblationRow] = []
    for extra in rule_counts:
        row = AblationRow(rules_per_session=extra + 2)
        for name, classifier_class in (
            ("PDR-LL", LinearClassifier),
            ("PDR-PS", PartitionSortClassifier),
        ):
            upf_u, packet = _session_with_rules(classifier_class, extra)
            begin = time.perf_counter()
            for _ in range(lookups):
                upf_u.process(packet)
            elapsed = time.perf_counter() - begin
            row.lookup_us[name] = elapsed / lookups * 1e6
        rows.append(row)
    return rows
