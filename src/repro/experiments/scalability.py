"""Session-scalability and design-choice ablations.

The paper is candid that "L25GC's design is general, although the
current implementation supports a limited number of user sessions"
(§1, §3.2: the control plane supports two users; the data plane as
many as resources allow).  These ablations quantify where session
count actually bites in our reproduction:

* :func:`session_scale_sweep` — onboarding N UEs (registration + PDU
  session) and measuring per-UE event latency and aggregate state as N
  grows; the control plane should scale near-linearly since sessions
  are independent.
* :func:`classifier_ablation` — the Fig 11 result *in situ*: UPF-U
  forwarding wall-time per packet with the session's PDR set held in a
  linear list vs. PartitionSort, as rules-per-session grows (the
  paper's challenge 3 trajectory from 2 rules to hundreds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Type

from ..classifier.base import Classifier
from ..classifier.linear import LinearClassifier
from ..classifier.partition_sort import PartitionSortClassifier
from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import FiveGCore, SystemConfig
from ..cp.procedures import ProcedureRunner
from ..net.packet import Direction, FiveTuple, Packet
from ..pfcp import ies as pfcp_ies
from ..pfcp.builder import build_session_establishment
from ..sim.engine import Environment
from ..up.rules import PDR
from ..up.session import SessionTable, UPFSession
from ..up.upf_u import UPFUserPlane

__all__ = [
    "ScaleRow",
    "session_scale_sweep",
    "AblationRow",
    "classifier_ablation",
]


@dataclass
class ScaleRow:
    """Onboarding metrics at one session count."""

    sessions: int
    mean_registration_s: float
    mean_session_establishment_s: float
    total_onboarding_s: float
    upf_sessions: int
    control_messages: int


def session_scale_sweep(
    config: SystemConfig,
    session_counts: Sequence[int] = (1, 2, 5, 10, 25, 50),
    costs: CostModel = DEFAULT_COSTS,
) -> List[ScaleRow]:
    """Onboard N UEs sequentially and record per-UE latencies."""
    rows: List[ScaleRow] = []
    for count in session_counts:
        env = Environment()
        core = FiveGCore(env, config, costs=costs)
        runner = ProcedureRunner(core)
        registrations: List[float] = []
        establishments: List[float] = []

        def onboard_all():
            for index in range(count):
                ue = core.add_ue(f"imsi-2089399{index:08d}")
                result = yield from runner.register_ue(ue, gnb_id=1)
                registrations.append(result.duration)
                result = yield from runner.establish_session(ue)
                establishments.append(result.duration)

        env.process(onboard_all())
        env.run()
        rows.append(
            ScaleRow(
                sessions=count,
                mean_registration_s=sum(registrations) / count,
                mean_session_establishment_s=sum(establishments) / count,
                total_onboarding_s=env.now,
                upf_sessions=len(core.sessions),
                control_messages=core.bus.total_messages(),
            )
        )
    return rows


@dataclass
class AblationRow:
    """Forwarding cost at one rules-per-session point."""

    rules_per_session: int
    lookup_us: Dict[str, float] = field(default_factory=dict)

    def speedup(self) -> float:
        return self.lookup_us["PDR-LL"] / self.lookup_us["PDR-PS"]


def _session_with_rules(
    classifier_class: Type[Classifier], extra_rules: int
) -> tuple:
    """A UPF with one session holding 2 + extra_rules PDRs."""
    from ..classifier.classbench import ClassBenchGenerator
    from ..up.upf_c import UPFControlPlane

    env = Environment()
    table = SessionTable()
    upf_u = UPFUserPlane(env, table)
    upf_c = UPFControlPlane(
        table, upf_u=upf_u, address=1, classifier_class=classifier_class
    )
    ue_ip = 0x0A3C0001
    upf_c.handle(
        build_session_establishment(
            seid=1, sequence=1, ue_ip=ue_ip, upf_address=1,
            ul_teid=0x100, gnb_address=2, dl_teid=0x500,
        )
    )
    session = table.by_seid(1)
    # Demote the catch-all DL rule below the filter set: firewall/NAT
    # rules (challenge 3) take precedence over default forwarding, so
    # every lookup must consider them before falling through.
    import dataclasses

    base = session.pdrs[2]
    demoted = PDR(
        pdr_id=base.pdr_id,
        precedence=5000,
        match=dataclasses.replace(base.match, priority=(1 << 16) - 5000),
        far_id=base.far_id,
        source_interface=base.source_interface,
    )
    session.install_pdr(demoted)
    # Grow the PDR set with higher-precedence subflow filters that do
    # not match the probe flow (the scan cost the paper measures).
    generator = ClassBenchGenerator(seed=13)
    for index, rule in enumerate(generator.rules(extra_rules)):
        match = dataclasses.replace(
            rule, priority=(1 << 16) - (100 + index), rule_id=100 + index
        )
        session.install_pdr(
            PDR(
                pdr_id=100 + index,
                precedence=100 + index,
                match=match,
                far_id=2,
                source_interface=pfcp_ies.CORE,
            )
        )
    packet = Packet(
        direction=Direction.DOWNLINK,
        flow=FiveTuple(src_ip=1, dst_ip=ue_ip, src_port=80, dst_port=4000),
    )
    return upf_u, packet


def classifier_ablation(
    rule_counts: Sequence[int] = (0, 8, 48, 98, 498),
    lookups: int = 300,
) -> List[AblationRow]:
    """Measured per-packet pipeline time, linear list vs PartitionSort."""
    rows: List[AblationRow] = []
    for extra in rule_counts:
        row = AblationRow(rules_per_session=extra + 2)
        for name, classifier_class in (
            ("PDR-LL", LinearClassifier),
            ("PDR-PS", PartitionSortClassifier),
        ):
            upf_u, packet = _session_with_rules(classifier_class, extra)
            begin = time.perf_counter()
            for _ in range(lookups):
                upf_u.process(packet)
            elapsed = time.perf_counter() - begin
            row.lookup_us[name] = elapsed / lookups * 1e6
        rows.append(row)
    return rows
