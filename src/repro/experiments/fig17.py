"""Appendix C / Fig 17 — repeated handovers under 10 TCP connections.

A UE on a bus: 10 TCP connections (a few smartphone apps) through a
100 Mbps / 50 ms bottleneck, handing over every few seconds.  Each
free5GC handover stalls the downlink past the 200 ms minimum RTO —
every sender spuriously retransmits (~60 packets per handover) and
halves its rate; L25GC's shorter stall rides below the RTO, so the
connections keep their cwnd and move more data (the paper: 442 MB vs
416 MB over the run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import SystemConfig
from ..sim.engine import MS, Environment
from ..tcpmodel.tcp import PathModel, TCPConnection
from .common import run_ue_events

__all__ = ["RepeatedHandoverResult", "repeated_handovers"]


@dataclass
class RepeatedHandoverResult:
    """One system's Appendix C outcome."""

    system: str
    stall_s: float
    handovers: int
    transferred_bytes: int
    retransmissions: int
    spurious_timeouts: int
    max_rtt_s: float
    rtx_per_handover: float


def _run_one(
    system: str,
    stall: float,
    period: float,
    run_seconds: float,
    connections: int,
    bandwidth_bps: float,
    base_rtt: float,
) -> RepeatedHandoverResult:
    env = Environment()
    path = PathModel(
        bandwidth_bps=bandwidth_bps,
        base_rtt=base_rtt,
        connections=connections,
    )
    handovers = 0
    when = period
    while when < run_seconds:
        path.add_interruption(start=when, duration=stall)
        handovers += 1
        when += period
    per_connection_bytes = int(
        bandwidth_bps / 8 / connections * run_seconds * 2
    )
    senders: List[TCPConnection] = []
    for _ in range(connections):
        sender = TCPConnection(env, path, total_bytes=per_connection_bytes)
        env.process(sender.run())
        senders.append(sender)
    env.run(until=run_seconds)
    total = sum(sender.stats.bytes_acked for sender in senders)
    rtx = sum(sender.stats.retransmissions for sender in senders)
    spurious = sum(sender.stats.spurious_timeouts for sender in senders)
    max_rtt = max(
        max((rtt for _t, rtt in sender.stats.rtt_series), default=0.0)
        for sender in senders
    )
    return RepeatedHandoverResult(
        system=system,
        stall_s=stall,
        handovers=handovers,
        transferred_bytes=total,
        retransmissions=rtx,
        spurious_timeouts=spurious,
        max_rtt_s=max_rtt,
        rtx_per_handover=rtx / handovers if handovers else 0.0,
    )


def repeated_handovers(
    costs: CostModel = DEFAULT_COSTS,
    handover_period: float = 3.0,
    run_seconds: float = 36.0,
    connections: int = 10,
    bandwidth_bps: float = 100e6,
    base_rtt: float = 50 * MS,
) -> Dict[str, RepeatedHandoverResult]:
    """Run Appendix C for both systems.

    Stall durations are the measured handover times of each system
    (derived from the procedures, as everywhere else).
    """
    free_stall = run_ue_events(SystemConfig.free5gc(), costs=costs)[
        "handover"
    ].duration
    l25gc_stall = run_ue_events(SystemConfig.l25gc(), costs=costs)[
        "handover"
    ].duration
    return {
        "free5gc": _run_one(
            "free5gc",
            free_stall,
            handover_period,
            run_seconds,
            connections,
            bandwidth_bps,
            base_rtt,
        ),
        "l25gc": _run_one(
            "l25gc",
            l25gc_stall,
            handover_period,
            run_seconds,
            connections,
            bandwidth_bps,
            base_rtt,
        ),
    }
