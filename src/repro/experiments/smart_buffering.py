"""§5.4.2 "Estimating Smart Buffering benefit" — Eqs 1 and 2.

Compares 3GPP's source-gNB buffering with hairpin routing against
L25GC's direct handover with UPF buffering:

* **Eq 1** (packet drops): N_drop = DL_rate x t_HO - Q_length.
  Case (i): equal 500-packet buffers at the gNB and UPF — both lose
  ~800 packets at 10 Kpps over a 130 ms handover.
  Case (ii): 1500 packets at the UPF vs 500 at the source gNB — the
  UPF loses nothing, 3GPP still loses ~800.
* **Eq 2** (one-way delay): 3GPP forwarding traverses
  UPF -> source gNB -> UPF -> target gNB; the direct path skips the
  hairpin, saving two propagation legs (~20 ms at 10 ms per leg).

Both the closed-form arithmetic and a packet-level simulation are
provided; the simulation must agree with the closed form (a test
asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cp.core5g import SystemConfig
from ..net.packet import Direction, FiveTuple, Packet
from ..ran.gnb import GNodeB
from ..sim.engine import MS, Environment
from ..sim.queues import Store

__all__ = [
    "BufferingCase",
    "analytical_drops",
    "analytical_one_way_delay",
    "simulated_drops",
    "smart_buffering_cases",
]


@dataclass
class BufferingCase:
    """One row of the §5.4.2 analysis."""

    case: str
    scheme: str
    buffer_packets: int
    drops: int
    one_way_delay_s: float


def analytical_drops(
    dl_rate_pps: float, handover_s: float, queue_length: int
) -> int:
    """Eq 1: packets lost during the handover window."""
    demand = dl_rate_pps * handover_s
    return max(0, round(demand - queue_length))


def analytical_one_way_delay(
    handover_s: float,
    prop_upf_gnb_s: float,
    hairpin: bool,
) -> float:
    """Eq 2: UPF-to-UE one-way delay of the first post-HO packet."""
    if hairpin:
        # UPF -> source gNB -> back to UPF -> target gNB.
        return handover_s + 3 * prop_upf_gnb_s
    return handover_s + prop_upf_gnb_s


def simulated_drops(
    dl_rate_pps: float, handover_s: float, queue_length: int
) -> int:
    """Packet-level check of Eq 1: feed a bounded buffer at the DL
    rate for the handover window and count the tail drops."""
    env = Environment()
    store = Store(env, capacity=queue_length)

    def feed():
        interval = 1.0 / dl_rate_pps
        elapsed = 0.0
        while elapsed < handover_s:
            store.put_nowait_drop(Packet(direction=Direction.DOWNLINK))
            yield env.timeout(interval)
            elapsed += interval

    env.process(feed())
    env.run()
    return store.drops


def smart_buffering_cases(
    dl_rate_pps: float = 10_000,
    handover_s: float = 130 * MS,
    prop_s: float = 10 * MS,
) -> Dict[str, list]:
    """The paper's two cases, for both schemes."""
    cases: Dict[str, list] = {"case-i": [], "case-ii": []}
    # Case (i): equal 500-packet buffers.
    for scheme, buffer_packets, hairpin in (
        ("3gpp-hairpin", 500, True),
        ("l25gc-smart", 500, False),
    ):
        cases["case-i"].append(
            BufferingCase(
                case="case-i",
                scheme=scheme,
                buffer_packets=buffer_packets,
                drops=analytical_drops(dl_rate_pps, handover_s, buffer_packets),
                one_way_delay_s=analytical_one_way_delay(
                    handover_s, prop_s, hairpin
                ),
            )
        )
    # Case (ii): 1500 at the UPF, 500 at the source gNB.
    for scheme, buffer_packets, hairpin in (
        ("3gpp-hairpin", 500, True),
        ("l25gc-smart", 1500, False),
    ):
        cases["case-ii"].append(
            BufferingCase(
                case="case-ii",
                scheme=scheme,
                buffer_packets=buffer_packets,
                drops=analytical_drops(dl_rate_pps, handover_s, buffer_packets),
                one_way_delay_s=analytical_one_way_delay(
                    handover_s, prop_s, hairpin
                ),
            )
        )
    return cases
