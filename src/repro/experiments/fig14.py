"""Fig 14 + Table 2 — data-plane latency during a handover event.

Two experiments, each with 10 Kpps downlink per UE session and a
3K-packet UPF buffer:

* **expt (i)** — a single UE session; the UE hands over at t = 1 s.
* **expt (ii)** — four UE sessions sending concurrently; one hands
  over.  The kernel baseline's shared buffering and softirq contention
  raise everyone's base RTT (425 us vs 39 us), stretch the post-HO
  drain (305 ms vs 137 ms), and overflow the shared buffer (43 drops);
  L25GC's session-scoped buffering drops nothing.

Table 2 anchors (free5GC vs L25GC): HO time 227/130 ms (expt i),
231/132 ms (expt ii); RTT after HO 242/132 and 305/137 ms; elevated
packets 2301/1437 and 3092/1779; drops 0/0 and 43/0.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import SystemConfig
from ..traffic.measurement import LatencySeries, percentile
from .common import DataPlaneScenario

__all__ = ["HandoverObservation", "handover_data_plane"]


@dataclass
class HandoverObservation:
    """Table 2's row for one (system, experiment) pair."""

    system: str
    experiment: str
    base_rtt_s: float
    handover_time_s: float
    rtt_after_handover_s: float
    elevated_packets: int
    dropped: int
    series: LatencySeries

    def as_row(self) -> dict:
        return {
            "system": self.system,
            "experiment": self.experiment,
            "base_rtt_us": self.base_rtt_s * 1e6,
            "ho_time_ms": self.handover_time_s * 1e3,
            "rtt_after_ho_ms": self.rtt_after_handover_s * 1e3,
            "elevated_packets": self.elevated_packets,
            "dropped": self.dropped,
        }


def handover_data_plane(
    config: SystemConfig,
    costs: CostModel = DEFAULT_COSTS,
    concurrent_sessions: int = 1,
    rate_pps: float = 10_000,
    handover_at: float = 1.0,
    run_until: float = 2.5,
) -> HandoverObservation:
    """Run one cell of Table 2.

    ``concurrent_sessions=1`` is expt (i); ``4`` reproduces expt (ii).
    Note: per §5.4.2 ("the UPF starts to buffer packets"), *both*
    systems buffer handover traffic at the UPF here; the gNB-buffering
    3GPP alternative is analyzed in
    :mod:`repro.experiments.smart_buffering`.
    """
    from dataclasses import replace

    config = replace(config, smart_handover_buffering=True)
    scenario = DataPlaneScenario(
        config, costs=costs, num_ues=concurrent_sessions
    )
    scenario.setup()
    env = scenario.env
    target = scenario.sessions[0]
    started = env.now

    # Downlink traffic on every session for the whole run.
    for info in scenario.sessions:
        scenario.start_downlink(
            info, rate_pps=rate_pps, duration=run_until
        )

    outcome = {}

    def do_handover():
        yield env.timeout(handover_at)
        result = yield from scenario.runner.handover(
            scenario.ue(target), target_gnb_id=2
        )
        outcome["handover"] = result

    env.process(do_handover())
    env.run()

    if "handover" not in outcome:
        raise RuntimeError("handover did not complete")
    handover = outcome["handover"]
    series = target.series
    base = percentile(series.window(started, started + handover_at), 0.5)
    after = max(series.window(started + handover_at, env.now))
    elevated = sum(1 for rtt in series.rtts if rtt > 3 * base)
    seid = scenario.core.smf.context_for(target.supi, 1).seid
    session = scenario.core.sessions.by_seid(seid)
    return HandoverObservation(
        system=config.name,
        experiment=f"expt-{'i' if concurrent_sessions == 1 else 'ii'}",
        base_rtt_s=base,
        handover_time_s=handover.duration,
        rtt_after_handover_s=after,
        elevated_packets=elevated,
        dropped=session.buffer.dropped,
        series=series,
    )
