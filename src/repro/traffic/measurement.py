"""Measurement tooling: latency series, throughput accounting, stats.

The experiments mine :class:`LatencySeries` for the RTT-over-time plots
(Figs 13-16) and the summary rows of Tables 1-2 ("base RTT", "RTT
after paging", "# packets with higher RTT", "# packets dropped").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..net.packet import Packet

__all__ = ["LatencySeries", "summarize", "Summary", "percentile"]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``values`` (fraction in 0..1).

    Returns ``nan`` for an empty sequence: an empty measurement window
    (a short run, a warmup of zero) is an absent statistic, not a
    crash.  Comparisons against ``nan`` are False, so downstream
    "elevated RTT" style counts degrade to zero.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction!r}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass
class Summary:
    """Latency summary over one run (one row of Table 1/2)."""

    count: int
    mean: float
    p50: float
    p99: float
    maximum: float
    base_rtt: float
    elevated_count: int

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "max": self.maximum,
            "base_rtt": self.base_rtt,
            "elevated": self.elevated_count,
        }


class LatencySeries:
    """Accumulates (send time, one-way latency) samples.

    The paper measures data-plane RTT as the time between a packet
    leaving the generator and its acknowledgement returning.  Only the
    downlink direction suffers event buffering, so the RTT of a sample
    is its one-way latency plus the *steady-state* return-path delay —
    approximated by the minimum one-way latency seen in the run.
    """

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []
        self._min_latency: Optional[float] = None

    def record(self, sent_at: float, one_way: float) -> None:
        self.samples.append((sent_at, one_way))
        if self._min_latency is None or one_way < self._min_latency:
            self._min_latency = one_way

    def record_one_way(self, packet: Packet) -> None:
        """Record a delivered packet's one-way latency."""
        latency = packet.latency
        if latency is None:
            raise ValueError("packet missing timestamps")
        self.record(packet.created_at, latency)

    def record_packets(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.record_one_way(packet)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def return_path(self) -> float:
        """Steady-state return-path delay (min one-way latency)."""
        if self._min_latency is None:
            raise ValueError("empty latency series")
        return self._min_latency

    def _rtt(self, one_way: float) -> float:
        return one_way + self.return_path

    @property
    def rtts(self) -> List[float]:
        return [self._rtt(one_way) for _sent, one_way in self.samples]

    def timeline(self) -> List[Tuple[float, float]]:
        """(send time, RTT) ordered by send time — the Fig 13/14 series."""
        return sorted(
            (sent, self._rtt(one_way)) for sent, one_way in self.samples
        )

    def window(self, start: float, end: float) -> List[float]:
        """RTTs of packets sent in [start, end)."""
        return [
            self._rtt(one_way)
            for sent, one_way in self.samples
            if start <= sent < end
        ]


def summarize(
    series: LatencySeries, elevated_factor: float = 3.0
) -> Summary:
    """Table-1/2-style summary.

    ``base_rtt`` is the median of the quietest decile (the steady
    state); a packet counts as *elevated* when its RTT exceeds
    ``elevated_factor`` times the base — the paper's "# packets that
    experience higher RTT".
    """
    rtts = series.rtts
    if not rtts:
        raise ValueError("empty latency series")
    base = percentile(rtts, 0.10)
    elevated = sum(1 for rtt in rtts if rtt > elevated_factor * base)
    return Summary(
        count=len(rtts),
        mean=sum(rtts) / len(rtts),
        p50=percentile(rtts, 0.50),
        p99=percentile(rtts, 0.99),
        maximum=max(rtts),
        base_rtt=base,
        elevated_count=elevated,
    )
