"""Traffic generation and measurement (the MoonGen/Wireshark stand-ins)."""

from .generator import ConstantRateGenerator
from .measurement import LatencySeries, Summary, percentile, summarize

__all__ = [
    "ConstantRateGenerator",
    "LatencySeries",
    "Summary",
    "percentile",
    "summarize",
]
