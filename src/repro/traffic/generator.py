"""Traffic generation: the MoonGen stand-in.

The paper drives the data plane with MoonGen on the RAN-side and
DN-side servers (§5.1).  :class:`ConstantRateGenerator` emits packets
at a fixed rate into an arbitrary sink (the UPF, a link, a TCP model),
stamping creation time and sequence numbers for the latency tooling.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..net.packet import Direction, FiveTuple, Packet, PacketKind
from ..sim.engine import Environment

__all__ = ["ConstantRateGenerator"]


class ConstantRateGenerator:
    """Emits packets at ``rate_pps`` for ``duration`` seconds.

    Parameters
    ----------
    env:
        Simulation environment.
    sink:
        Callable receiving each emitted packet.
    rate_pps:
        Packets per second.
    flow:
        Five-tuple stamped on every packet.
    size:
        Wire size per packet (bytes).
    direction / kind:
        Packet classification for the 5GC pipeline.
    start / duration:
        Emission window in simulated seconds; ``duration=None`` runs
        until stopped.
    """

    def __init__(
        self,
        env: Environment,
        sink: Callable[[Packet], None],
        rate_pps: float,
        flow: FiveTuple,
        size: int = 128,
        direction: Direction = Direction.DOWNLINK,
        kind: PacketKind = PacketKind.DATA,
        start: float = 0.0,
        duration: Optional[float] = None,
        teid: Optional[int] = None,
    ):
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive: {rate_pps!r}")
        self.env = env
        self.sink = sink
        self.rate_pps = rate_pps
        self.flow = flow
        self.size = size
        self.direction = direction
        self.kind = kind
        self.start = start
        self.duration = duration
        self.teid = teid
        self.emitted = 0
        self._seq = itertools.count()
        self._stopped = False
        self._process = env.process(self._run())

    def stop(self) -> None:
        """Cease emission at the next interval."""
        self._stopped = True

    def _run(self):
        interval = 1.0 / self.rate_pps
        if self.start > 0:
            yield self.env.timeout(self.start)
        elapsed = 0.0
        while not self._stopped:
            if self.duration is not None and elapsed >= self.duration:
                break
            packet = Packet(
                size=self.size,
                flow=self.flow,
                direction=self.direction,
                kind=self.kind,
                teid=self.teid,
                seq=next(self._seq),
                created_at=self.env.now,
            )
            self.sink(packet)
            self.emitted += 1
            yield self.env.timeout(interval)
            elapsed += interval
