"""Seeded randomness helpers for reproducible simulations.

Every stochastic element of the models draws from a :class:`StreamRNG`,
which derives independent named substreams from a single root seed.  Two
runs with the same root seed therefore produce identical traces even if
components are constructed in a different order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["StreamRNG"]


class StreamRNG:
    """A family of independent, named random streams under one seed.

    >>> rng = StreamRNG(42)
    >>> a = rng.stream("arrivals")
    >>> b = rng.stream("failures")
    >>> a is rng.stream("arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) substream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def fork(self, name: str) -> "StreamRNG":
        """Derive a child RNG family, e.g. one per simulated node."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return StreamRNG(int.from_bytes(digest[:8], "big"))
