"""Discrete-event simulation substrate for the L25GC reproduction.

The public surface:

* :class:`~repro.sim.engine.Environment` — clock + event heap.
* :data:`~repro.sim.engine.US` / :data:`~repro.sim.engine.MS` — time units.
* :class:`~repro.sim.queues.Store` and friends — waitable queues.
* :class:`~repro.sim.rng.StreamRNG` — reproducible named random streams.
"""

from .engine import (
    MS,
    US,
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .queues import PriorityStore, QueueFullError, Resource, Store
from .rng import StreamRNG

__all__ = [
    "MS",
    "US",
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "PriorityStore",
    "QueueFullError",
    "Resource",
    "Store",
    "StreamRNG",
]
