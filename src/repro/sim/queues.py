"""Waitable queues and resources for the simulation engine.

:class:`Store` is an unbounded-or-bounded FIFO whose ``get`` returns an
event; a process does ``item = yield store.get()`` and is suspended until
an item is available.  :class:`PriorityStore` pops the smallest item
first.  :class:`Resource` models a counted resource (e.g. CPU cores) with
``request``/``release`` semantics.

These primitives deliberately mirror SimPy's API surface so the models in
:mod:`repro` read like standard DES code.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Store", "PriorityStore", "Resource", "QueueFullError"]


class QueueFullError(Exception):
    """Raised by non-blocking ``put`` on a full bounded store."""


class Store:
    """A waitable FIFO queue of items.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of queued items; ``None`` means unbounded.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive: {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()
        #: Number of items dropped by :meth:`put_nowait_drop`.
        self.drops = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    # -- producers ---------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event fires once it is stored."""
        event = self.env.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self._append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def put_nowait(self, item: Any) -> None:
        """Enqueue immediately; raise :class:`QueueFullError` when full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return
        if self.is_full:
            raise QueueFullError(f"store full (capacity={self.capacity})")
        self._append(item)

    def put_nowait_drop(self, item: Any) -> bool:
        """Enqueue if space allows; drop (and count) otherwise.

        Returns True if the item was accepted.  This is the tail-drop
        behaviour of a router queue or the gNB's limited packet buffer.
        """
        try:
            self.put_nowait(item)
        except QueueFullError:
            self.drops += 1
            return False
        return True

    # -- consumers -----------------------------------------------------------
    def get(self) -> Event:
        """Dequeue an item; the returned event fires with the item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        """Dequeue immediately; raise :class:`SimulationError` if empty."""
        if not self._items:
            raise SimulationError("store empty")
        item = self._popleft()
        self._admit_putter()
        return item

    def clear(self) -> List[Any]:
        """Remove and return all queued items."""
        drained = list(self._items)
        self._items.clear()
        while self._putters and not self.is_full:
            self._admit_putter()
        return drained

    # -- internals ------------------------------------------------------------
    def _append(self, item: Any) -> None:
        self._items.append(item)

    def _popleft(self) -> Any:
        return self._items.popleft()

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._append(item)
            event.succeed()


class PriorityStore(Store):
    """A store that always yields the smallest item first.

    Items must be mutually orderable; use ``(priority, seq, payload)``
    tuples to get stable FIFO ordering within a priority class.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        super().__init__(env, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> List[Any]:
        return sorted(self._heap)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._heap) >= self.capacity

    def _append(self, item: Any) -> None:
        heapq.heappush(self._heap, item)

    def _popleft(self) -> Any:
        return heapq.heappop(self._heap)

    def clear(self) -> List[Any]:
        drained = sorted(self._heap)
        self._heap.clear()
        while self._putters and not self.is_full:
            self._admit_putter()
        return drained

    def get(self) -> Event:
        event = self.env.event()
        if self._heap:
            event.succeed(self._popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        if not self._heap:
            raise SimulationError("store empty")
        item = self._popleft()
        self._admit_putter()
        return item


class Resource:
    """A counted resource: at most ``capacity`` holders at once.

    Usage::

        req = resource.request()
        yield req
        try:
            ... critical section ...
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive: {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a free slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Acquire a slot; the event fires once granted."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release without matching request")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
