"""Discrete-event simulation engine.

A small, dependency-free event simulator in the style of SimPy: an
:class:`Environment` owns a simulated clock and an event heap; *processes*
are Python generators that yield :class:`Event` objects and are resumed
when those events fire.

The engine is deterministic: events scheduled for the same simulated time
fire in FIFO order of scheduling (a monotonically increasing sequence
number breaks ties), so simulation runs are exactly reproducible given the
same seed for any randomness injected by the model.

Time is measured in **seconds** as a float.  The module exposes the
convenience constants :data:`US` and :data:`MS` so models can write
``env.timeout(25 * US)``.

Example
-------
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(1.5)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[1.5]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..analysis import races as _races

#: One microsecond, in simulation seconds.
US = 1e-6
#: One millisecond, in simulation seconds.
MS = 1e-3

__all__ = [
    "US",
    "MS",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for invalid uses of the simulation API."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it becomes *triggered* when
    :meth:`succeed` or :meth:`fail` is called (or, for a
    :class:`Timeout`, when its delay is scheduled at construction).  Once
    the environment pops it from the heap it is *processed* and its
    callbacks run.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks.

        ``delay`` postpones the callbacks by the given simulated time.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes see the exception."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True
        return self

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    ``name`` optionally labels the process (NF run loops use their NF
    name); the race detector treats a named process as an acting role.
    """

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self.name = name
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick-start on the next tick.
        init = Event(env)
        init._ok = True
        init.callbacks.append(self._resume)
        env._schedule(init, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if (
            self._target is not None
            and self._target.callbacks is not None
            and self._resume in self._target.callbacks
        ):
            self._target.callbacks.remove(self._resume)
        self._target = None
        kick = Event(self.env)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick._defused = True
        kick.callbacks.append(self._resume)
        self.env._schedule(kick, 0.0)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Each resume opens one yield-to-yield atomic section; the
        # generation counter identifies it for the race detector.
        self.env.yield_generation += 1
        self.env._active_process = self
        detector = _races._ACTIVE
        if detector is not None:
            detector.on_resume(self)
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process with a failure.
            self.env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:  # model bug: propagate as failure
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded a non-event: {target!r}; yield env.timeout(...)"
            )
        self._target = target
        if target.processed:
            # Already fired: resume on the next scheduling tick.
            kick = Event(self.env)
            kick._ok = target._ok
            kick._value = target._value
            if not target._ok:
                kick._defused = True
                target._defused = True
            kick.callbacks.append(self._resume)
            self.env._schedule(kick, 0.0)
        else:
            if not target._ok:
                target._defused = True
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self._events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every component event has fired."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any component event fires."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation world: clock plus event heap.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        #: Monotonic count of process resumes; each value identifies
        #: one yield-to-yield atomic section (see repro.analysis.races).
        self.yield_generation = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: Optional[str] = None
    ) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling / execution -------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly that
        time even if no event is scheduled there.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})"
            )
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
