"""The comparison systems of the paper's evaluation.

Three configurations of the same 3GPP-compliant core:

* :func:`free5gc` — the kernel-based baseline: HTTP/REST+JSON SBI over
  TCP sockets, PFCP over a UDP socket, the gtp5g kernel-module UPF
  (interrupt-driven, per-packet copies), linear PDR search, source-gNB
  handover buffering with hairpin routing (Appendix B of the paper).
* :func:`onvm_upf` — the hybrid of Fig 8: the UPF runs on the
  shared-memory NFV platform (so N4 and the data plane are fast) but
  the rest of the control plane is vanilla free5GC over REST.
* :func:`l25gc` — the full system: every NF consolidated on the node,
  SBI and N4 over shared-memory descriptor passing, DPDK-style
  poll-mode forwarding, PartitionSort PDR lookup, and smart handover
  buffering at the UPF.
"""

from __future__ import annotations

from ..core.costs import DEFAULT_COSTS, CostModel
from ..cp.core5g import FiveGCore, SystemConfig
from ..sim.engine import Environment

__all__ = ["free5gc", "onvm_upf", "l25gc", "build_core", "SystemConfig"]


def build_core(
    env: Environment,
    config: SystemConfig,
    costs: CostModel = DEFAULT_COSTS,
    num_gnbs: int = 2,
) -> FiveGCore:
    """Construct a core for any configuration."""
    return FiveGCore(env, config, costs=costs, num_gnbs=num_gnbs)


def free5gc(
    env: Environment,
    costs: CostModel = DEFAULT_COSTS,
    num_gnbs: int = 2,
) -> FiveGCore:
    """The vanilla free5GC baseline."""
    return build_core(env, SystemConfig.free5gc(), costs, num_gnbs)


def onvm_upf(
    env: Environment,
    costs: CostModel = DEFAULT_COSTS,
    num_gnbs: int = 2,
) -> FiveGCore:
    """free5GC control plane + ONVM-based UPF (Fig 8's middle bar)."""
    return build_core(env, SystemConfig.onvm_upf(), costs, num_gnbs)


def l25gc(
    env: Environment,
    costs: CostModel = DEFAULT_COSTS,
    num_gnbs: int = 2,
) -> FiveGCore:
    """The full L25GC system."""
    return build_core(env, SystemConfig.l25gc(), costs, num_gnbs)
