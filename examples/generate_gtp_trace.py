#!/usr/bin/env python3
"""Generate a GTP-encapsulated data-plane pcap trace.

Mirrors the paper artifact's trace-generator scripts: a constant-rate
downlink flow towards a UE, wrapped in GTP-U exactly as it would
appear on the N3 wire, written as a standard pcap that opens in
Wireshark or replays with MoonGen/tcpreplay.

    python examples/generate_gtp_trace.py [output.pcap]
"""

import sys

from repro.net import (
    FiveTuple,
    Packet,
    ip_to_int,
    read_pcap,
    write_gtp_trace,
)


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "n3-downlink.pcap"
    ue_ip = ip_to_int("10.60.0.1")
    flow = FiveTuple(
        src_ip=ip_to_int("8.8.8.8"),
        dst_ip=ue_ip,
        src_port=443,
        dst_port=40000,
    )
    packets = [
        Packet(size=128, flow=flow, seq=index, created_at=index / 10_000)
        for index in range(1000)
    ]
    with open(output, "wb") as handle:
        count = write_gtp_trace(
            handle,
            packets,
            teid=0x10001,
            upf_address=ip_to_int("192.168.1.2"),
            gnb_address=ip_to_int("192.168.2.1"),
            rate_pps=10_000,
        )
    with open(output, "rb") as handle:
        frames = read_pcap(handle)
    duration = frames[-1][0] - frames[0][0]
    print(f"wrote {count} GTP-U frames to {output}")
    print(f"frame size    : {len(frames[0][1])} bytes "
          "(Ethernet + outer IP/UDP/GTP + inner IP/UDP + payload)")
    print(f"trace duration: {duration * 1e3:.1f} ms at 10 kpps")
    print("open it with: wireshark", output)


if __name__ == "__main__":
    main()
