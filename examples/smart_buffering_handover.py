#!/usr/bin/env python3
"""Smart buffering during handover (§3.3, §5.4.2).

Streams 10 Kpps of downlink traffic at a UE, triggers an N2 handover
mid-stream, and shows where packets wait — then compares the 3GPP
hairpin alternative analytically (Eqs 1-2).

    python examples/smart_buffering_handover.py
"""

from repro.cp.core5g import SystemConfig
from repro.experiments.fig14 import handover_data_plane
from repro.experiments.smart_buffering import smart_buffering_cases


def live_handover() -> None:
    print("--- live handover with 10 Kpps downlink (Table 2 style) ---")
    for config in (SystemConfig.free5gc(), SystemConfig.l25gc()):
        observation = handover_data_plane(config, concurrent_sessions=1)
        row = observation.as_row()
        print(
            f"{row['system']:<8} base RTT {row['base_rtt_us']:6.0f} us | "
            f"HO {row['ho_time_ms']:6.1f} ms | "
            f"RTT after {row['rtt_after_ho_ms']:6.1f} ms | "
            f"{row['elevated_packets']} pkts delayed | "
            f"{row['dropped']} dropped"
        )


def hairpin_analysis() -> None:
    print("\n--- 3GPP hairpin vs smart buffering (Eqs 1-2) ---")
    for case, rows in smart_buffering_cases().items():
        for row in rows:
            print(
                f"{case:<8} {row.scheme:<14} buffer={row.buffer_packets:>5} "
                f"drops={row.drops:>4} one-way delay="
                f"{row.one_way_delay_s * 1e3:5.0f} ms"
            )
    print(
        "\nWith equal buffers both schemes lose ~800 packets; giving the "
        "UPF a realistic larger buffer eliminates loss entirely, and the "
        "direct path always saves the ~20 ms hairpin."
    )


if __name__ == "__main__":
    live_handover()
    hairpin_analysis()
