#!/usr/bin/env python3
"""Deployment strategy demo (§4): 5GC units behind a UE-aware LB,
RSS spreading, and a canary rollout of a new UPF version.

    python examples/deployment_scaling.py
"""

from repro.core import NFManager, NetworkFunction
from repro.deploy import (
    CanaryController,
    NodeSpec,
    PlacementEngine,
    RSSIndirection,
    UEAwareLoadBalancer,
    UnitHandle,
)
from repro.net import FiveTuple, Packet
from repro.sim import Environment


def load_balancing() -> None:
    print("--- UE-aware load balancing ---")
    lb = UEAwareLoadBalancer()
    for unit_id in range(3):
        lb.add_unit(UnitHandle(unit_id=unit_id, capacity_sessions=100))
    for index in range(30):
        lb.assign(f"imsi-2089300000{index:05d}")
    print(f"session distribution      : {lb.distribution()}")
    # Affinity: the same UE always lands on the same unit.
    first = lb.assign("imsi-208930000000005").unit_id
    again = lb.assign("imsi-208930000000005").unit_id
    print(f"affinity held             : unit {first} == unit {again}")
    # A unit fails; its UEs transparently move (state via replicas).
    lb.mark_failed(first)
    moved = lb.assign("imsi-208930000000005").unit_id
    print(f"after unit {first} failure     : UE re-pinned to unit {moved}")


def rss_spreading() -> None:
    print("\n--- RSS across 4 receive queues ---")
    rss = RSSIndirection(num_queues=4)
    flows = [
        FiveTuple(src_ip=0x0A000000 + index, dst_ip=0x08080808,
                  src_port=40000 + index, dst_port=443)
        for index in range(64)
    ]
    packets = [Packet(flow=flow) for flow in flows for _ in range(4)]
    queues = rss.dispatch(packets)
    print(f"per-queue packet counts   : {[len(queue) for queue in queues]}")


def canary_rollout() -> None:
    print("\n--- canary rollout of upf-u v2 ---")
    env = Environment()
    manager = NFManager(env)
    stable = NetworkFunction(env, "upf-u", service_id=2, instance_id=0)
    canary = NetworkFunction(env, "upf-u-v2", service_id=2, instance_id=1)
    for nf in (stable, canary):
        manager.register(nf)
        nf.status = nf.status.__class__.RUNNING
    controller = CanaryController(manager, service_id=2)
    for share in (0.0, 0.1, 0.5, 1.0):
        controller.set_canary_share(share)
        hits = sum(
            1 for _ in range(1000)
            if manager.lookup(2).instance_id == 1
        )
        print(f"canary share {share:4.0%}         : "
              f"{hits / 10:.1f}% of traffic to v2")


def placement() -> None:
    print("\n--- placement onto 12-core nodes ---")
    from repro.deploy import FiveGCUnit
    env = Environment()
    nodes = [NodeSpec(node_id=index, cores=12) for index in range(2)]
    engine = PlacementEngine(nodes)
    for unit_id in range(4):
        unit = FiveGCUnit(env, unit_id=unit_id)
        node = engine.place(unit)
        print(f"unit {unit_id} -> "
              f"{'node ' + str(node.node_id) if node else 'REJECTED'}")
    print(f"node utilization          : {engine.utilization()}")


if __name__ == "__main__":
    load_balancing()
    rss_spreading()
    canary_rollout()
    placement()
