#!/usr/bin/env python3
"""Compare UE-event completion times: free5GC vs ONVM-UPF vs L25GC.

Reproduces the shape of the paper's Fig 8 on your terminal: the same
3GPP procedures run on all three systems; only the inter-NF transport
(and data path) differs.

    python examples/event_latency_comparison.py
"""

from repro.experiments.fig08 import event_completion_times


def main() -> None:
    rows = event_completion_times()
    header = (
        f"{'event':<16} {'free5GC':>10} {'ONVM-UPF':>10} {'L25GC':>10} "
        f"{'reduction':>10} {'messages':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.event:<16} {row.free5gc_s * 1e3:>8.1f}ms "
            f"{row.onvm_upf_s * 1e3:>8.1f}ms {row.l25gc_s * 1e3:>8.1f}ms "
            f"{row.reduction * 100:>9.1f}% {row.messages:>9}"
        )
    best = max(rows, key=lambda row: row.reduction)
    print(
        f"\nL25GC cuts '{best.event}' by {best.reduction * 100:.0f}% — "
        "the paper reports reductions of up to 51%."
    )


if __name__ == "__main__":
    main()
