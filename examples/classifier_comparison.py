#!/usr/bin/env python3
"""PDR lookup scaling: linear list vs TSS vs PartitionSort (Fig 11).

Generates ClassBench-style PDR sets with 20 PDI IEs, then measures
real lookup latencies of the three classifier implementations as the
rule count grows.  Watch PDR-LL grow linearly, PDR-TSS_Best stay flat,
and PDR-PS stay lowest — and the TSS worst case explode.

    python examples/classifier_comparison.py
"""

from repro.experiments.fig11 import (
    lookup_latency_sweep,
    update_latency,
)


def main() -> None:
    variants = ("PDR-LL", "PDR-TSS_Best", "PDR-TSS_Worst", "PDR-PS")
    rows = lookup_latency_sweep(
        rule_counts=(2, 10, 50, 100, 500, 1000), variants=variants
    )
    header = f"{'rules':>6} " + "".join(f"{name:>16}" for name in variants)
    print("mean lookup latency (us)")
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = "".join(
            f"{row.latency_s[name] * 1e6:>16.2f}" for name in variants
        )
        print(f"{row.rules:>6} {cells}")

    print("\nsingle-rule update latency (us)")
    for update in update_latency():
        print(f"{update.variant:<14} {update.update_s * 1e6:>8.2f}")
    print(
        "\nThe paper picks PartitionSort: best lookup performance, "
        "update cost higher than the list but 'not substantial'."
    )


if __name__ == "__main__":
    main()
